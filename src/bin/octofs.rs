//! `octofs` — a command-line shell over a persistent single-process
//! OctopusFS instance.
//!
//! The instance lives under a root directory: the master's edit log at
//! `<root>/edits.log`, a small config at `<root>/octofs.conf`, and the
//! persistent-tier block stores under `<root>/worker_*/media_*/`. The
//! Memory tier is volatile by design: memory-resident replicas do not
//! survive between invocations and are re-created from persistent copies
//! by the replication monitor on boot.
//!
//! ```text
//! octofs --root DIR init [--workers N] [--block-size BYTES] [--capacity BYTES]
//! octofs --root DIR mkdir /path
//! octofs --root DIR put LOCAL /path [--rv "<1,0,2>"]
//! octofs --root DIR get /path LOCAL
//! octofs --root DIR cat /path
//! octofs --root DIR ls /path
//! octofs --root DIR rm /path [-r]
//! octofs --root DIR mv /src /dst
//! octofs --root DIR setrep /path "<0,1,2>"
//! octofs --root DIR report
//! octofs --root DIR fsck
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use octopusfs::common::units::fmt_bytes;
use octopusfs::master::EditLog;
use octopusfs::{
    ClientLocation, Cluster, ClusterConfig, FsError, ReplicationVector, Result, StorageMode,
};

struct Conf {
    workers: u32,
    block_size: u64,
    capacity: u64,
}

impl Conf {
    fn path(root: &Path) -> PathBuf {
        root.join("octofs.conf")
    }

    fn save(&self, root: &Path) -> Result<()> {
        let body = format!(
            "workers={}\nblock_size={}\ncapacity={}\n",
            self.workers, self.block_size, self.capacity
        );
        std::fs::write(Self::path(root), body)?;
        Ok(())
    }

    fn load(root: &Path) -> Result<Conf> {
        let body = std::fs::read_to_string(Self::path(root)).map_err(|_| {
            FsError::Config(format!(
                "{} is not an octofs root (run `octofs --root {} init` first)",
                root.display(),
                root.display()
            ))
        })?;
        let mut c = Conf { workers: 3, block_size: 1 << 20, capacity: 256 << 20 };
        for line in body.lines() {
            let Some((k, v)) = line.split_once('=') else { continue };
            let v: u64 = v
                .trim()
                .parse()
                .map_err(|e| FsError::Config(format!("bad config line {line:?}: {e}")))?;
            match k.trim() {
                "workers" => c.workers = v as u32,
                "block_size" => c.block_size = v,
                "capacity" => c.capacity = v,
                _ => {}
            }
        }
        Ok(c)
    }

    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig::test_cluster(self.workers, self.capacity, self.block_size)
    }
}

/// Boots the persistent instance: replay the edit log, reopen the on-disk
/// stores, block-report to leave safe mode, and heal volatile replicas.
fn boot(root: &Path) -> Result<Cluster> {
    let conf = Conf::load(root)?;
    let log = EditLog::open(root.join("edits.log"))?;
    let cluster = Cluster::start_with_log(
        conf.cluster_config(),
        StorageMode::OnDisk(root.to_path_buf()),
        log,
    )?;
    cluster.send_block_reports()?;
    cluster.master().leave_safe_mode();
    Ok(cluster)
}

fn parse_rv(s: &str) -> Result<ReplicationVector> {
    if let Ok(v) = s.parse::<ReplicationVector>() {
        return Ok(v);
    }
    // Also accept a bare replication factor for HDFS compatibility.
    s.parse::<u8>()
        .map(ReplicationVector::from_replication_factor)
        .map_err(|_| FsError::InvalidArgument(format!("bad replication vector {s:?}")))
}

fn usage() -> &'static str {
    "usage: octofs --root DIR <init|mkdir|put|get|cat|ls|rm|mv|append|setrep|report|balance|fsck> [args]\n\
     run `octofs help` for details"
}

fn run(args: &[String]) -> Result<()> {
    let mut it = args.iter().peekable();
    let mut root: Option<PathBuf> = None;
    let mut rest: Vec<String> = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        FsError::InvalidArgument("--root needs a directory".into())
                    })?));
            }
            _ => rest.push(a.clone()),
        }
    }
    let Some(cmd) = rest.first().cloned() else {
        return Err(FsError::InvalidArgument(usage().into()));
    };
    if cmd == "help" {
        println!("{}", usage());
        return Ok(());
    }
    let root = root.ok_or_else(|| FsError::InvalidArgument("--root DIR is required".into()))?;
    let args = &rest[1..];

    match cmd.as_str() {
        "init" => {
            std::fs::create_dir_all(&root)?;
            if Conf::path(&root).exists() {
                return Err(FsError::AlreadyExists(format!(
                    "{} is already initialized",
                    root.display()
                )));
            }
            let mut conf = Conf { workers: 3, block_size: 1 << 20, capacity: 256 << 20 };
            let mut i = 0;
            while i < args.len() {
                match args[i].as_str() {
                    "--workers" => {
                        conf.workers = args[i + 1]
                            .parse()
                            .map_err(|_| FsError::InvalidArgument("bad --workers".into()))?;
                        i += 2;
                    }
                    "--block-size" => {
                        conf.block_size = args[i + 1]
                            .parse()
                            .map_err(|_| FsError::InvalidArgument("bad --block-size".into()))?;
                        i += 2;
                    }
                    "--capacity" => {
                        conf.capacity = args[i + 1]
                            .parse()
                            .map_err(|_| FsError::InvalidArgument("bad --capacity".into()))?;
                        i += 2;
                    }
                    a => return Err(FsError::InvalidArgument(format!("unknown flag {a}"))),
                }
            }
            conf.save(&root)?;
            boot(&root)?; // creates the edit log and store directories
            println!(
                "initialized octofs at {} ({} workers, {} blocks)",
                root.display(),
                conf.workers,
                fmt_bytes(conf.block_size)
            );
        }
        "mkdir" => {
            let [path] = args else {
                return Err(FsError::InvalidArgument("mkdir PATH".into()));
            };
            boot(&root)?.client(ClientLocation::OffCluster).mkdir(path)?;
        }
        "put" => {
            if args.len() < 2 {
                return Err(FsError::InvalidArgument("put LOCAL PATH [--rv V]".into()));
            }
            let data = std::fs::read(&args[0])?;
            let mut rv = ReplicationVector::from_replication_factor(2);
            if args.len() >= 4 && args[2] == "--rv" {
                rv = parse_rv(&args[3])?;
            }
            let cluster = boot(&root)?;
            cluster.client(ClientLocation::OffCluster).write_file(&args[1], &data, rv)?;
            println!("wrote {} ({}) with vector {rv}", args[1], fmt_bytes(data.len() as u64));
        }
        "get" => {
            let [path, local] = args else {
                return Err(FsError::InvalidArgument("get PATH LOCAL".into()));
            };
            let data = boot(&root)?.client(ClientLocation::OffCluster).read_file(path)?;
            std::fs::write(local, &data)?;
            println!("copied {path} -> {local} ({})", fmt_bytes(data.len() as u64));
        }
        "cat" => {
            let [path] = args else {
                return Err(FsError::InvalidArgument("cat PATH".into()));
            };
            let data = boot(&root)?.client(ClientLocation::OffCluster).read_file(path)?;
            std::io::stdout().write_all(&data)?;
        }
        "ls" => {
            let path = args.first().map(String::as_str).unwrap_or("/");
            let cluster = boot(&root)?;
            let client = cluster.client(ClientLocation::OffCluster);
            for e in client.list(path)? {
                if e.is_dir {
                    println!("d {:>10}  {}", "-", e.name);
                } else {
                    println!("- {:>10}  {}  {}", fmt_bytes(e.len), e.name, e.rv);
                }
            }
        }
        "rm" => {
            let recursive = args.iter().any(|a| a == "-r");
            let Some(path) = args.iter().find(|a| *a != "-r") else {
                return Err(FsError::InvalidArgument("rm [-r] PATH".into()));
            };
            boot(&root)?.client(ClientLocation::OffCluster).delete(path, recursive)?;
        }
        "mv" => {
            let [src, dst] = args else {
                return Err(FsError::InvalidArgument("mv SRC DST".into()));
            };
            boot(&root)?.client(ClientLocation::OffCluster).rename(src, dst)?;
        }
        "setrep" => {
            let [path, rv] = args else {
                return Err(FsError::InvalidArgument("setrep PATH VECTOR".into()));
            };
            let rv = parse_rv(rv)?;
            let cluster = boot(&root)?;
            let old = cluster.client(ClientLocation::OffCluster).set_replication(path, rv)?;
            // Realize the change before exiting (the process is the
            // replication monitor's only chance to run).
            for _ in 0..4 {
                cluster.run_replication_round()?;
            }
            println!("replication of {path}: {old} -> {rv}");
        }
        "report" => {
            let cluster = boot(&root)?;
            let client = cluster.client(ClientLocation::OffCluster);
            let (files, dirs) = cluster.master().counts();
            println!("{files} files, {dirs} directories");
            for r in client.get_storage_tier_reports() {
                println!(
                    "{:<8} media={:<3} capacity={:>10} remaining={:>10} ({:.1}%)",
                    r.name,
                    r.stats.num_media,
                    fmt_bytes(r.stats.capacity),
                    fmt_bytes(r.stats.remaining),
                    r.stats.remaining_fraction() * 100.0
                );
            }
        }
        "append" => {
            let [local, path] = args else {
                return Err(FsError::InvalidArgument("append LOCAL PATH".into()));
            };
            let data = std::fs::read(local)?;
            let cluster = boot(&root)?;
            let client = cluster.client(ClientLocation::OffCluster);
            let mut w = client.append(path)?;
            w.write(&data)?;
            w.close()?;
            println!("appended {} to {path}", fmt_bytes(data.len() as u64));
        }
        "balance" => {
            let cluster = boot(&root)?;
            let mut moves = 0;
            for _ in 0..16 {
                let n = cluster.run_balancer_round(0.05, 8)?;
                moves += n;
                if n == 0 {
                    break;
                }
            }
            println!("balance: {moves} replica move(s)");
        }
        "fsck" => {
            let cluster = boot(&root)?;
            let corrupt = cluster.run_scrub_round()?;
            let mut repaired = 0;
            for _ in 0..8 {
                let n = cluster.run_replication_round()?;
                repaired += n;
                if n == 0 {
                    break;
                }
            }
            println!("fsck: {corrupt} corrupt replicas dropped, {repaired} repair tasks run");
        }
        other => {
            return Err(FsError::InvalidArgument(format!("unknown command {other:?}\n{}", usage())))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            octopus_common::log_error!(target: "octofs", "msg=\"command failed\" err=\"{e}\"");
            ExitCode::FAILURE
        }
    }
}
