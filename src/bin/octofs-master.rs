//! `octofs-master` — the OctopusFS master daemon.
//!
//! Serves the RPC protocol on a TCP address; workers started with
//! `octofs-worker` register against it, and clients use `octofs-remote`
//! (or [`octopusfs::core::net::RemoteFs`]).
//!
//! ```text
//! octofs-master --listen 127.0.0.1:7000 --workers 3 \
//!               [--block-size BYTES] [--capacity BYTES] [--heartbeat-ms MS] \
//!               [--autotier-ms MS] [--autotier-bps B]
//! ```
//!
//! The `--workers/--block-size/--capacity` trio defines the expected
//! cluster shape (three tiers per worker, as `ClusterConfig::test_cluster`
//! lays out); every `octofs-worker` must be started with the same values
//! so that media identities agree. `--autotier-ms` enables the
//! auto-tiering daemon (DESIGN.md §10): every MS milliseconds a paced
//! migration round classifies files by access heat (EWMA thresholds)
//! and promotes/demotes them across tiers, with background copies
//! capped at `--autotier-bps` bytes/sec (default 64 MB/s; 0 = unpaced).

use std::process::ExitCode;
use std::sync::Arc;

use octopusfs::core::net::{monitor, MasterServer};
use octopusfs::master::Master;
use octopusfs::{ClusterConfig, Result};

fn run(args: &[String]) -> Result<()> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut workers = 3u32;
    let mut block_size = 1u64 << 20;
    let mut capacity = 256u64 << 20;
    let mut heartbeat_ms = 1000u64;
    let mut autotier_ms = 0u64;
    let mut autotier_bps: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                listen = args[i + 1].clone();
                i += 2;
            }
            "--workers" => {
                workers = args[i + 1].parse().map_err(|_| bad("--workers"))?;
                i += 2;
            }
            "--block-size" => {
                block_size = args[i + 1].parse().map_err(|_| bad("--block-size"))?;
                i += 2;
            }
            "--capacity" => {
                capacity = args[i + 1].parse().map_err(|_| bad("--capacity"))?;
                i += 2;
            }
            "--heartbeat-ms" => {
                heartbeat_ms = args[i + 1].parse().map_err(|_| bad("--heartbeat-ms"))?;
                i += 2;
            }
            "--autotier-ms" => {
                autotier_ms = args[i + 1].parse().map_err(|_| bad("--autotier-ms"))?;
                i += 2;
            }
            "--autotier-bps" => {
                autotier_bps = Some(args[i + 1].parse().map_err(|_| bad("--autotier-bps"))?);
                i += 2;
            }
            a => return Err(bad(a)),
        }
    }
    let mut config = ClusterConfig::test_cluster(workers, capacity, block_size);
    config.heartbeat_ms = heartbeat_ms;
    let master = Arc::new(Master::new(config)?);
    let server = MasterServer::spawn_on(Arc::clone(&master), listen.as_str())?;
    // The line below is machine-readable: tests and scripts parse it.
    println!("octofs-master listening on {}", server.addr());

    // Auto-tiering daemon (DESIGN.md §10): opt-in paced migration rounds
    // (EWMA classification → vector edits → bandwidth-capped copies).
    if autotier_ms > 0 {
        let master = Arc::clone(&master);
        let state = Arc::clone(server.state());
        let cfg = octopusfs::master::AutoTierConfig {
            max_copy_bps: autotier_bps
                .unwrap_or(octopusfs::master::AutoTierConfig::default().max_copy_bps),
            ..octopusfs::master::AutoTierConfig::default()
        };
        std::thread::Builder::new()
            .name("octofs-autotier".into())
            .spawn(move || {
                let classifier = octopusfs::policies::EwmaThresholdClassifier::default();
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(autotier_ms));
                    let addrs = state.resolved_addrs();
                    if let Err(e) = monitor::run_migration_round(&master, &addrs, &classifier, &cfg)
                    {
                        octopus_common::log_warn!(
                            target: "octofs-master",
                            "msg=\"migration round failed\" err=\"{e}\""
                        );
                    }
                }
            })
            .expect("spawn autotier thread");
    }

    // Replication monitor (§5): periodically heal under/over-replication
    // by RPC-ing the workers.
    let interval = std::time::Duration::from_millis(heartbeat_ms * 4);
    let state = Arc::clone(server.state());
    loop {
        std::thread::sleep(interval);
        let addrs = state.resolved_addrs();
        let _ = monitor::run_replication_round(&master, &addrs);
    }
}

fn bad(flag: &str) -> octopusfs::FsError {
    octopusfs::FsError::InvalidArgument(format!(
        "bad or unknown flag {flag}; usage: octofs-master --listen ADDR --workers N \
         [--block-size B] [--capacity B] [--heartbeat-ms MS] [--autotier-ms MS] \
         [--autotier-bps B]"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            octopus_common::log_error!(target: "octofs-master", "msg=\"startup failed\" err=\"{e}\"");
            ExitCode::FAILURE
        }
    }
}
