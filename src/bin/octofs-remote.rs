//! `octofs-remote` — a file-system shell against a running
//! `octofs-master`/`octofs-worker` deployment.
//!
//! ```text
//! octofs-remote --master ADDR <mkdir|put|get|cat|ls|rm|mv|setrep|report|metrics> [args]
//! ```

use std::io::Write as _;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

use octopusfs::common::units::fmt_bytes;
use octopusfs::core::net::RemoteFs;
use octopusfs::{ClientLocation, FsError, ReplicationVector, Result};

fn run(args: &[String]) -> Result<()> {
    let mut master = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--master" {
            master = Some(args[i + 1].clone());
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    let addr = master
        .ok_or_else(|| FsError::InvalidArgument("--master ADDR is required".into()))?
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| FsError::InvalidArgument("unresolvable master address".into()))?;
    let fs = RemoteFs::connect(addr, ClientLocation::OffCluster)?;

    let Some(cmd) = rest.first().cloned() else {
        return Err(FsError::InvalidArgument(
            "usage: octofs-remote --master ADDR <mkdir|put|get|cat|ls|rm|mv|setrep|report|metrics>"
                .into(),
        ));
    };
    let args = &rest[1..];
    match cmd.as_str() {
        "mkdir" => fs.mkdir(args.first().ok_or_else(|| usage("mkdir PATH"))?)?,
        "put" => {
            if args.len() < 2 {
                return Err(usage("put LOCAL PATH [--rv V]"));
            }
            let data = std::fs::read(&args[0])?;
            let rv = if args.len() >= 4 && args[2] == "--rv" {
                args[3]
                    .parse::<ReplicationVector>()
                    .or_else(|_| {
                        args[3].parse::<u8>().map(ReplicationVector::from_replication_factor)
                    })
                    .map_err(|_| usage("bad --rv"))?
            } else {
                ReplicationVector::from_replication_factor(2)
            };
            fs.write_file(&args[1], &data, rv)?;
            println!("wrote {} ({})", args[1], fmt_bytes(data.len() as u64));
        }
        "get" => {
            if args.len() != 2 {
                return Err(usage("get PATH LOCAL"));
            }
            std::fs::write(&args[1], fs.read_file(&args[0])?)?;
        }
        "cat" => {
            let data = fs.read_file(args.first().ok_or_else(|| usage("cat PATH"))?)?;
            std::io::stdout().write_all(&data)?;
        }
        "ls" => {
            for e in fs.list(args.first().map(String::as_str).unwrap_or("/"))? {
                if e.is_dir {
                    println!("d {:>10}  {}", "-", e.name);
                } else {
                    println!("- {:>10}  {}  {}", fmt_bytes(e.len), e.name, e.rv);
                }
            }
        }
        "rm" => {
            let recursive = args.iter().any(|a| a == "-r");
            let path = args.iter().find(|a| *a != "-r").ok_or_else(|| usage("rm [-r] PATH"))?;
            fs.delete(path, recursive)?;
        }
        "mv" => {
            if args.len() != 2 {
                return Err(usage("mv SRC DST"));
            }
            fs.rename(&args[0], &args[1])?;
        }
        "setrep" => {
            if args.len() != 2 {
                return Err(usage("setrep PATH VECTOR"));
            }
            let rv = args[1]
                .parse::<ReplicationVector>()
                .or_else(|_| args[1].parse::<u8>().map(ReplicationVector::from_replication_factor))
                .map_err(|_| usage("bad vector"))?;
            let old = fs.set_replication(&args[0], rv)?;
            println!("replication of {}: {old} -> {rv}", args[0]);
        }
        "metrics" => {
            print!("{}", fs.cluster_metrics_snapshot()?.render_text());
        }
        "report" => {
            for r in fs.get_storage_tier_reports()? {
                println!(
                    "{:<8} media={:<3} remaining={} ({:.1}%)",
                    r.name,
                    r.stats.num_media,
                    fmt_bytes(r.stats.remaining),
                    r.stats.remaining_fraction() * 100.0
                );
            }
        }
        other => return Err(usage(&format!("unknown command {other}"))),
    }
    Ok(())
}

fn usage(msg: &str) -> FsError {
    FsError::InvalidArgument(msg.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("octofs-remote: {e}");
            ExitCode::FAILURE
        }
    }
}
