//! `octofs-remote` — a file-system shell against a running
//! `octofs-master`/`octofs-worker` deployment.
//!
//! ```text
//! octofs-remote --master ADDR <mkdir|put|get|cat|ls|rm|mv|setrep|report|
//!                              status|heat|explain-placement|migrations|metrics|perf|trace> [args]
//! ```
//!
//! `trace read PATH` / `trace write PATH [BYTES]` runs the operation with
//! distributed tracing, prints the assembled critical path, and dumps the
//! full span tree to `results/traces/trace-<id>.jsonl`.
//!
//! `status` prints the live cluster summary (per-tier capacity, per-worker
//! lines, hottest files, per-op metadata latency); `perf [N]` ranks the
//! top-N metadata operations by p99 latency and tabulates master lock
//! wait/hold statistics; `heat PATH` prints one file's access-heat EWMA;
//! `explain-placement BLOCK_ID` replays the audited MOOP decisions for a
//! block, candidate scores included; `migrations [N]` lists the most
//! recent auto-tiering promote/demote decisions.

use std::io::Write as _;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

use octopusfs::common::metrics::{HistogramSample, MetricsSnapshot};
use octopusfs::common::units::fmt_bytes;
use octopusfs::core::net::RemoteFs;
use octopusfs::{ClientLocation, FsError, ReplicationVector, Result};

/// The histogram sample carrying `name{op="<op>"}`, if recorded.
fn hist<'s>(snap: &'s MetricsSnapshot, name: &str, op: &str) -> Option<&'s HistogramSample> {
    snap.histograms.iter().find(|h| h.name == name && h.labels.op.as_deref() == Some(op))
}

/// One per-op metadata latency row, joined across the `master_meta_*`
/// series by `op` label.
struct MetaRow {
    count: u64,
    errors: u64,
    p50: u64,
    p99: u64,
    mean: f64,
    wait_p99: u64,
    log_p99: u64,
}

/// Builds the [`MetaRow`] for one op label; `None` for ops never invoked.
fn meta_op_row(snap: &MetricsSnapshot, op: &str) -> Option<MetaRow> {
    let total = hist(snap, "master_meta_op_us", op)?;
    if total.count == 0 {
        return None;
    }
    let errors = snap.counter_where("master_meta_op_errors_total", |l| l.op.as_deref() == Some(op));
    let wait_p99 = hist(snap, "master_meta_op_lock_wait_us", op).map_or(0, |h| h.quantile_us(0.99));
    let log_p99 = hist(snap, "master_meta_op_log_us", op).map_or(0, |h| h.quantile_us(0.99));
    Some(MetaRow {
        count: total.count,
        errors,
        p50: total.quantile_us(0.50),
        p99: total.quantile_us(0.99),
        mean: total.mean_us(),
        wait_p99,
        log_p99,
    })
}

/// Every op name that has a recorded `master_meta_op_us` histogram.
fn meta_op_names(snap: &MetricsSnapshot) -> Vec<String> {
    snap.histograms
        .iter()
        .filter(|h| h.name == "master_meta_op_us" && h.count > 0)
        .filter_map(|h| h.labels.op.clone())
        .collect()
}

fn run(args: &[String]) -> Result<()> {
    let mut master = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--master" {
            master = Some(args[i + 1].clone());
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    let addr = master
        .ok_or_else(|| FsError::InvalidArgument("--master ADDR is required".into()))?
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| FsError::InvalidArgument("unresolvable master address".into()))?;
    let fs = RemoteFs::connect(addr, ClientLocation::OffCluster)?;

    let Some(cmd) = rest.first().cloned() else {
        return Err(FsError::InvalidArgument(
            "usage: octofs-remote --master ADDR \
             <mkdir|put|get|cat|ls|rm|mv|setrep|report|status|heat|explain-placement|\
             migrations|metrics|perf|trace>"
                .into(),
        ));
    };
    let args = &rest[1..];
    match cmd.as_str() {
        "mkdir" => fs.mkdir(args.first().ok_or_else(|| usage("mkdir PATH"))?)?,
        "put" => {
            if args.len() < 2 {
                return Err(usage("put LOCAL PATH [--rv V]"));
            }
            let data = std::fs::read(&args[0])?;
            let rv = if args.len() >= 4 && args[2] == "--rv" {
                args[3]
                    .parse::<ReplicationVector>()
                    .or_else(|_| {
                        args[3].parse::<u8>().map(ReplicationVector::from_replication_factor)
                    })
                    .map_err(|_| usage("bad --rv"))?
            } else {
                ReplicationVector::from_replication_factor(2)
            };
            fs.write_file(&args[1], &data, rv)?;
            println!("wrote {} ({})", args[1], fmt_bytes(data.len() as u64));
        }
        "get" => {
            if args.len() != 2 {
                return Err(usage("get PATH LOCAL"));
            }
            std::fs::write(&args[1], fs.read_file(&args[0])?)?;
        }
        "cat" => {
            let data = fs.read_file(args.first().ok_or_else(|| usage("cat PATH"))?)?;
            std::io::stdout().write_all(&data)?;
        }
        "ls" => {
            for e in fs.list(args.first().map(String::as_str).unwrap_or("/"))? {
                if e.is_dir {
                    println!("d {:>10}  {}", "-", e.name);
                } else {
                    println!("- {:>10}  {}  {}", fmt_bytes(e.len), e.name, e.rv);
                }
            }
        }
        "rm" => {
            let recursive = args.iter().any(|a| a == "-r");
            let path = args.iter().find(|a| *a != "-r").ok_or_else(|| usage("rm [-r] PATH"))?;
            fs.delete(path, recursive)?;
        }
        "mv" => {
            if args.len() != 2 {
                return Err(usage("mv SRC DST"));
            }
            fs.rename(&args[0], &args[1])?;
        }
        "setrep" => {
            if args.len() != 2 {
                return Err(usage("setrep PATH VECTOR"));
            }
            let rv = args[1]
                .parse::<ReplicationVector>()
                .or_else(|_| args[1].parse::<u8>().map(ReplicationVector::from_replication_factor))
                .map_err(|_| usage("bad vector"))?;
            let old = fs.set_replication(&args[0], rv)?;
            println!("replication of {}: {old} -> {rv}", args[0]);
        }
        "metrics" => {
            print!("{}", fs.cluster_metrics_snapshot()?.render_text());
        }
        "perf" => {
            let n: usize = match args.first() {
                Some(s) => s.parse().map_err(|_| usage("perf [N]"))?,
                None => 10,
            };
            let snap = fs.master_metrics_snapshot()?;
            let mut rows: Vec<(String, MetaRow)> = meta_op_names(&snap)
                .into_iter()
                .filter_map(|op| meta_op_row(&snap, &op).map(|r| (op, r)))
                .collect();
            if rows.is_empty() {
                println!("no metadata operations recorded yet");
                return Ok(());
            }
            // Slowest tail first: the contention view, not the volume view.
            rows.sort_by(|a, b| b.1.p99.cmp(&a.1.p99).then_with(|| a.0.cmp(&b.0)));
            println!(
                "{:<22} {:>9} {:>7} {:>8} {:>8} {:>9} {:>9} {:>8}",
                "op", "count", "errors", "p50_us", "p99_us", "mean_us", "wait_p99", "log_p99"
            );
            for (op, r) in rows.iter().take(n) {
                println!(
                    "{op:<22} {:>9} {:>7} {:>8} {:>8} {:>9.1} {:>9} {:>8}",
                    r.count, r.errors, r.p50, r.p99, r.mean, r.wait_p99, r.log_p99
                );
            }
            let mut locks: Vec<(String, String)> = snap
                .counters
                .iter()
                .filter(|c| c.name == "lock_acquire_total")
                .filter_map(|c| Some((c.labels.op.clone()?, c.labels.mode.clone()?)))
                .collect();
            locks.sort();
            if !locks.is_empty() {
                println!();
                println!(
                    "{:<16} {:>4} {:>10} {:>10} {:>11} {:>11} {:>11} {:>11}",
                    "lock",
                    "mode",
                    "acquires",
                    "contended",
                    "wait_p99",
                    "wait_us",
                    "hold_p99",
                    "hold_us"
                );
            }
            for (lock, mode) in locks {
                let by = |name: &str| {
                    snap.counter_where(name, |l| {
                        l.op.as_deref() == Some(&lock) && l.mode.as_deref() == Some(&mode)
                    })
                };
                let sample = |name: &str| {
                    snap.histograms.iter().find(|h| {
                        h.name == name
                            && h.labels.op.as_deref() == Some(&lock)
                            && h.labels.mode.as_deref() == Some(&mode)
                    })
                };
                let wait = sample("lock_wait_us");
                let hold = sample("lock_hold_us");
                println!(
                    "{lock:<16} {mode:>4} {:>10} {:>10} {:>11} {:>11} {:>11} {:>11}",
                    by("lock_acquire_total"),
                    by("lock_contended_total"),
                    wait.map_or(0, |h| h.quantile_us(0.99)),
                    wait.map_or(0, |h| h.sum),
                    hold.map_or(0, |h| h.quantile_us(0.99)),
                    hold.map_or(0, |h| h.sum),
                );
            }
        }
        "trace" => {
            if args.len() < 2 {
                return Err(usage("trace <read PATH | write PATH [BYTES]>"));
            }
            let op = args[0].as_str();
            match op {
                "read" => {
                    let data = fs.read_file(&args[1])?;
                    println!("read {} ({})", args[1], fmt_bytes(data.len() as u64));
                }
                "write" => {
                    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1 << 20);
                    let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                    fs.write_file(&args[1], &data, ReplicationVector::from_replication_factor(2))?;
                    println!("wrote {} ({})", args[1], fmt_bytes(n as u64));
                }
                other => return Err(usage(&format!("trace: unknown op {other}"))),
            }
            let snap = fs.cluster_trace_snapshot()?;
            let want = format!("client.{op}_file");
            let trace = snap
                .traces()
                .into_iter()
                .find(|t| t.spans.iter().any(|s| s.name == want))
                .ok_or_else(|| FsError::NotFound("no assembled trace for operation".into()))?;
            print!("{}", trace.critical_path().render());
            std::fs::create_dir_all("results/traces")?;
            let out = format!("results/traces/trace-{}.jsonl", trace.trace_id);
            let dump = octopusfs::common::TraceSnapshot { spans: trace.spans.clone() };
            std::fs::write(&out, dump.to_jsonl())?;
            println!("{} spans ({} nodes) -> {out}", trace.spans.len(), trace.nodes().len());
        }
        "report" => {
            for r in fs.get_storage_tier_reports()? {
                println!(
                    "{:<8} media={:<3} remaining={} ({:.1}%)",
                    r.name,
                    r.stats.num_media,
                    fmt_bytes(r.stats.remaining),
                    r.stats.remaining_fraction() * 100.0
                );
            }
        }
        "status" => {
            let s = fs.cluster_status()?;
            println!(
                "cluster: {} files, {} blocks ({} in flight), scheduled={}{}",
                s.files,
                s.blocks,
                s.in_flight_blocks,
                fmt_bytes(s.scheduled_bytes),
                if s.safe_mode { ", SAFE MODE" } else { "" }
            );
            println!(
                "decisions: {} recorded, {} retained in audit ring",
                s.decisions_recorded, s.decisions_retained
            );
            for t in &s.tiers {
                let used = t.stats.capacity.saturating_sub(t.stats.remaining);
                let pct = if t.stats.capacity > 0 {
                    used as f64 / t.stats.capacity as f64 * 100.0
                } else {
                    0.0
                };
                println!(
                    "tier {:<8} media={:<3} capacity={} used={} ({pct:.1}%)",
                    t.name,
                    t.stats.num_media,
                    fmt_bytes(t.stats.capacity),
                    fmt_bytes(used),
                );
            }
            for w in &s.workers {
                let used: u64 =
                    w.media.iter().map(|m| m.capacity.saturating_sub(m.remaining)).sum();
                let cap: u64 = w.media.iter().map(|m| m.capacity).sum();
                println!(
                    "worker {:<4} rack={} {} conn={} used={}/{} hb={}ms",
                    w.worker.0,
                    w.rack.0,
                    if w.live { "live" } else { "DEAD" },
                    w.nr_conn,
                    fmt_bytes(used),
                    fmt_bytes(cap),
                    s.now_ms.saturating_sub(w.last_heartbeat_ms),
                );
            }
            for h in &s.hot {
                println!(
                    "hot {:<30} score={:.3} reads_ewma={:.2} writes_ewma={:.2}",
                    h.path, h.heat.score, h.heat.reads_ewma, h.heat.writes_ewma
                );
            }
            let snap = fs.master_metrics_snapshot()?;
            let mut ops = meta_op_names(&snap);
            ops.sort();
            for op in ops {
                if let Some(r) = meta_op_row(&snap, &op) {
                    println!(
                        "meta {:<22} count={} errors={} p50={}us p99={}us",
                        op, r.count, r.errors, r.p50, r.p99
                    );
                }
            }
        }
        "heat" => {
            let path = args.first().ok_or_else(|| usage("heat PATH"))?;
            let h = fs.heat(path)?;
            println!(
                "{path}: score={:.3} reads_ewma={:.2} writes_ewma={:.2} \
                 cur_reads={} cur_writes={}",
                h.score, h.reads_ewma, h.writes_ewma, h.cur_reads, h.cur_writes
            );
        }
        "explain-placement" => {
            let id: u64 = args
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| usage("explain-placement BLOCK_ID"))?;
            let events = fs.explain_placement(octopusfs::common::BlockId(id))?;
            if events.is_empty() {
                println!("no retained decisions for block {id}");
            }
            for e in events {
                let chosen: Vec<String> = e
                    .chosen
                    .iter()
                    .map(|l| format!("w{}:m{}:t{}", l.worker.0, l.media.0, l.tier.0))
                    .collect();
                println!(
                    "#{} t={}ms {} policy={} chosen=[{}]",
                    e.seq,
                    e.when_ms,
                    e.kind.label(),
                    e.policy,
                    chosen.join(", ")
                );
                for r in &e.rounds {
                    let pin = match r.tier_pin {
                        Some(t) => format!("tier {}", t.0),
                        None => "unpinned".to_string(),
                    };
                    println!("  replica {} ({pin}):", r.replica_index);
                    for c in &r.candidates {
                        println!(
                            "    {}w{}:m{}:t{} total={:.6} db={:.4} lb={:.4} ft={:.4} tm={:.4}",
                            if c.chosen { "* " } else { "  " },
                            c.worker.0,
                            c.media.0,
                            c.tier.0,
                            c.total,
                            c.db,
                            c.lb,
                            c.ft,
                            c.tm,
                        );
                    }
                }
            }
        }
        "migrations" => {
            let n: u32 = match args.first() {
                Some(s) => s.parse().map_err(|_| usage("migrations [N]"))?,
                None => 20,
            };
            let events = fs.migrations(n)?;
            if events.is_empty() {
                println!("no retained migration decisions");
            }
            for e in events {
                println!(
                    "#{} t={}ms file={} block={} {}",
                    e.seq, e.when_ms, e.file, e.block, e.policy
                );
            }
        }
        other => return Err(usage(&format!("unknown command {other}"))),
    }
    Ok(())
}

fn usage(msg: &str) -> FsError {
    FsError::InvalidArgument(msg.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            octopus_common::log_error!(target: "octofs-remote", "msg=\"command failed\" err=\"{e}\"");
            ExitCode::FAILURE
        }
    }
}
