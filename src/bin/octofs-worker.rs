//! `octofs-worker` — an OctopusFS worker daemon: one per node, serving
//! block data and heartbeating to the master (paper §2.2).
//!
//! ```text
//! octofs-worker --master 127.0.0.1:7000 --id 0 --workers 3 \
//!               [--listen 127.0.0.1:0] [--dir PATH] \
//!               [--block-size BYTES] [--capacity BYTES] [--heartbeat-ms MS]
//! ```
//!
//! `--workers/--block-size/--capacity` must match the master's flags.
//! With `--dir`, persistent tiers store blocks under that directory and a
//! restarted worker re-reports them.

use std::collections::HashMap;
use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use octopusfs::core::net::proto::{MasterRequest, MasterResponse};
use octopusfs::core::net::worker_server::{call_master, WorkerServer};
use octopusfs::core::worker::Worker;
use octopusfs::core::{build_single_worker, StorageMode};
use octopusfs::{ClusterConfig, FsError, Result, WorkerId};

/// Heartbeats between full block reports.
const BEATS_PER_REPORT: u64 = 8;

/// Sends a full block report and applies the master's invalidation reply
/// — replicas the master no longer tracks, e.g. a delete this worker
/// missed while offline (§5).
fn report_blocks(master_addr: std::net::SocketAddr, worker: &Worker) -> Result<()> {
    if let MasterResponse::Invalidate(stale) =
        call_master(master_addr, &MasterRequest::BlockReport(worker.id(), worker.block_report()))?
    {
        for b in stale {
            worker.invalidate_block(b);
        }
    }
    Ok(())
}

fn run(args: &[String]) -> Result<()> {
    let mut master = None;
    let mut id = None;
    let mut workers = 3u32;
    let mut listen = "127.0.0.1:0".to_string();
    let mut dir = None;
    let mut block_size = 1u64 << 20;
    let mut capacity = 256u64 << 20;
    let mut heartbeat_ms = 1000u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--master" => {
                master = Some(args[i + 1].clone());
                i += 2;
            }
            "--id" => {
                id = Some(args[i + 1].parse::<u32>().map_err(|_| bad("--id"))?);
                i += 2;
            }
            "--workers" => {
                workers = args[i + 1].parse().map_err(|_| bad("--workers"))?;
                i += 2;
            }
            "--listen" => {
                listen = args[i + 1].clone();
                i += 2;
            }
            "--dir" => {
                dir = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--block-size" => {
                block_size = args[i + 1].parse().map_err(|_| bad("--block-size"))?;
                i += 2;
            }
            "--capacity" => {
                capacity = args[i + 1].parse().map_err(|_| bad("--capacity"))?;
                i += 2;
            }
            "--heartbeat-ms" => {
                heartbeat_ms = args[i + 1].parse().map_err(|_| bad("--heartbeat-ms"))?;
                i += 2;
            }
            a => return Err(bad(a)),
        }
    }
    let master_addr = master
        .ok_or_else(|| bad("--master is required"))?
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| FsError::InvalidArgument("unresolvable master address".into()))?;
    let id = WorkerId(id.ok_or_else(|| bad("--id is required"))?);

    let config = ClusterConfig::test_cluster(workers, capacity, block_size);
    let mode = match dir {
        Some(d) => StorageMode::OnDisk(d),
        None => StorageMode::InMemory,
    };
    let worker = build_single_worker(&config, id, &mode)?;

    // Peer map, refreshed from the master on every heartbeat.
    let peers = Arc::new(RwLock::new(HashMap::new()));
    let server =
        WorkerServer::spawn_on(Arc::clone(&worker), master_addr, Arc::clone(&peers), &*listen)?;
    println!("octofs-worker {} serving on {}", id, server.addr());

    // Register, report blocks, then heartbeat forever.
    call_master(
        master_addr,
        &MasterRequest::RegisterWorker(
            worker.id(),
            worker.rack(),
            worker.net_bps(),
            0,
            server.addr().to_string(),
        ),
    )?;
    report_blocks(master_addr, &worker)?;

    let epoch = Instant::now();
    let mut beats = 0u64;
    loop {
        let now_ms = epoch.elapsed().as_millis() as u64;
        let (stats, conns) = worker.heartbeat_stats();
        let touches = worker.drain_heat_epoch();
        worker.sample_series(now_ms);
        let _ = call_master(
            master_addr,
            &MasterRequest::Heartbeat(worker.id(), stats, conns, now_ms, touches),
        );
        beats += 1;
        if beats.is_multiple_of(BEATS_PER_REPORT) {
            let _ = report_blocks(master_addr, &worker);
        }
        if let Ok(MasterResponse::Addresses(list)) =
            call_master(master_addr, &MasterRequest::WorkerAddresses)
        {
            let mut map = peers.write();
            for (w, a) in list {
                if let Ok(mut it) = a.as_str().to_socket_addrs() {
                    if let Some(sa) = it.next() {
                        map.insert(w, sa);
                    }
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(heartbeat_ms));
    }
}

fn bad(flag: &str) -> FsError {
    FsError::InvalidArgument(format!(
        "bad or unknown flag {flag}; usage: octofs-worker --master ADDR --id N --workers N \
         [--listen ADDR] [--dir PATH] [--block-size B] [--capacity B] [--heartbeat-ms MS]"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            octopus_common::log_error!(target: "octofs-worker", "msg=\"startup failed\" err=\"{e}\"");
            ExitCode::FAILURE
        }
    }
}
