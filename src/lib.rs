//! # OctopusFS
//!
//! A distributed file system with tiered storage management — a
//! from-scratch Rust reproduction of the SIGMOD 2017 paper by Kakoulli and
//! Herodotou.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`Cluster`] / [`Client`]: a real in-process cluster storing actual
//!   bytes, with the paper's Table 1 API extensions (replication vectors,
//!   tier-aware block locations, storage tier reports);
//! - [`SimCluster`]: the same control plane driven by a flow-level
//!   discrete-event simulator for performance experiments;
//! - [`policies`]: the MOOP placement policy (paper §3), retrieval
//!   ordering (§4), and replica removal (§5), plus every baseline the
//!   evaluation compares against;
//! - [`compute`]: task-level Hadoop/Spark/Pegasus execution simulation for
//!   the end-to-end experiments (§7.5–7.6).
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the system inventory and the paper-reproduction
//! index.

pub use octopus_common as common;
pub use octopus_compute as compute;
pub use octopus_core as core;
pub use octopus_master as master;
pub use octopus_policies as policies;
pub use octopus_simnet as simnet;
pub use octopus_storage as storage;

pub use octopus_common::{
    ClientLocation, ClusterConfig, FsError, ReplicationVector, Result, StorageTier,
    StorageTierReport, TierId, WorkerId,
};
pub use octopus_core::{Client, Cluster, FileWriter, SimCluster, StorageMode};
pub use octopus_master::{Master, TierQuota};
