//! Property-based tests (proptest) on the core invariants: the
//! replication-vector codec, replication-state accounting, MOOP placement
//! constraints, namespace quota bookkeeping, and simulator conservation.

use proptest::prelude::*;

use octopusfs::common::config::PolicyConfig;
use octopusfs::common::{ClientLocation, Location, MediaId, TierId, WorkerId};
use octopusfs::master::blockmap::replication_state;
use octopusfs::policies::{ClusterSnapshot, GreedyPolicy, PlacementPolicy, PlacementRequest};
use octopusfs::simnet::{EventKind, SimNet};
use octopusfs::{ClusterConfig, ReplicationVector};

proptest! {
    /// Any 64-bit pattern decodes into a vector that re-encodes to itself,
    /// and the display form parses back to the same vector.
    #[test]
    fn repvector_codec_round_trips(bits in any::<u64>()) {
        let v = ReplicationVector::from_bits(bits);
        prop_assert_eq!(ReplicationVector::from_bits(v.to_bits()), v);
        let shown = v.to_string();
        let parsed: ReplicationVector = shown.parse().unwrap();
        prop_assert_eq!(parsed, v);
        // Total is the sum of all slots.
        let slot_sum: u32 = (0..7u8).map(|t| v.tier(TierId(t)) as u32).sum::<u32>()
            + v.unspecified() as u32;
        prop_assert_eq!(v.total(), slot_sum);
    }

    /// diff(a→b) additions/removals reconstruct b from a.
    #[test]
    fn repvector_diff_is_consistent(
        a in proptest::collection::vec(0u8..4, 3),
        b in proptest::collection::vec(0u8..4, 3),
        ua in 0u8..4,
        ub in 0u8..4,
    ) {
        let va = ReplicationVector::from_counts(&a, ua);
        let vb = ReplicationVector::from_counts(&b, ub);
        let d = va.diff(vb);
        let mut rebuilt = va;
        for (t, c) in d.additions() {
            rebuilt = rebuilt.with_tier(t, rebuilt.tier(t) + c);
        }
        for (t, c) in d.removals() {
            rebuilt = rebuilt.with_tier(t, rebuilt.tier(t) - c);
        }
        rebuilt = rebuilt.with_unspecified(vb.unspecified());
        prop_assert_eq!(rebuilt, vb);
        prop_assert_eq!(
            d.net_total(),
            vb.total() as i32 - va.total() as i32
        );
    }

    /// Replication-state accounting: total deficit minus total surplus
    /// equals requested minus present.
    #[test]
    fn replication_state_balances(
        rv_counts in proptest::collection::vec(0u8..4, 3),
        u in 0u8..4,
        locs in proptest::collection::vec((0u32..9, 0u8..3), 0..8),
    ) {
        let rv = ReplicationVector::from_counts(&rv_counts, u);
        let locations: Vec<Location> = locs
            .iter()
            .enumerate()
            .map(|(i, &(w, t))| Location {
                worker: WorkerId(w),
                media: MediaId(i as u32),
                tier: TierId(t),
            })
            .collect();
        let st = replication_state(rv, &locations);
        let over: i64 = st.over.iter().map(|&(_, c)| c as i64).sum();
        let under: i64 = st.total_under() as i64;
        prop_assert_eq!(
            under - over,
            rv.total() as i64 - locations.len() as i64,
            "under {} / over {} vs rv {} locs {}", under, over, rv.total(), locations.len()
        );
        if st.is_satisfied() {
            prop_assert_eq!(rv.total() as usize, locations.len());
        }
    }

    /// MOOP placement invariants: unique media, capacity respected, tier
    /// pins honored, never more media than requested.
    #[test]
    fn moop_placement_invariants(
        workers in 3u32..12,
        racks in 1u16..4,
        r in 1usize..6,
        pin_tier in proptest::option::of(0u8..3),
        mem_enabled in any::<bool>(),
    ) {
        let snap = ClusterSnapshot::synthetic(workers, racks, 2);
        let cfg = PolicyConfig {
            memory_placement_enabled: mem_enabled,
            ..PolicyConfig::default()
        };
        let policy = GreedyPolicy::moop(cfg);
        let mut req =
            PlacementRequest::unspecified(r, 128 << 20, ClientLocation::OffCluster);
        if let Some(t) = pin_tier {
            req.tier_pins[0] = Some(TierId(t));
        }
        let placed = policy.place(&snap, &req).unwrap();
        prop_assert!(placed.len() <= r);
        // Uniqueness.
        let mut dedup = placed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), placed.len());
        for (i, m) in placed.iter().enumerate() {
            let stats = snap.media_stats(*m).unwrap();
            prop_assert!(stats.remaining >= 128 << 20);
            if i == 0 {
                if let Some(t) = pin_tier {
                    prop_assert_eq!(stats.tier, TierId(t));
                }
            }
            if !mem_enabled && req.tier_pins[i].is_none() {
                prop_assert_ne!(stats.tier, TierId(0), "volatile tier without opt-in");
            }
        }
    }

    /// Simulator conservation: every flow completes, completion times are
    /// non-decreasing, and each flow takes at least bytes/total-capacity.
    #[test]
    fn simnet_flows_all_complete(
        flows in proptest::collection::vec((1u64..100_000, 0usize..4, 0usize..4), 1..30),
    ) {
        let mut net = SimNet::new();
        let res: Vec<_> =
            (0..4).map(|i| net.add_resource(&format!("r{i}"), 1e6)).collect();
        let mut sizes = std::collections::HashMap::new();
        for &(bytes, a, b) in &flows {
            let id = net.start_flow(bytes as f64, vec![res[a], res[b]]);
            sizes.insert(id, bytes);
        }
        let mut done = 0;
        let mut last = 0.0f64;
        while let Some(e) = net.next_event() {
            let t = e.time.as_secs_f64();
            prop_assert!(t >= last - 1e-12);
            last = t;
            if let EventKind::FlowDone(f) = e.kind {
                done += 1;
                // A flow through a 1 MB/s resource needs at least
                // bytes/1e6 seconds.
                prop_assert!(t + 1e-6 >= sizes[&f] as f64 / 1e6);
            }
        }
        prop_assert_eq!(done, flows.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Namespace quota accounting stays consistent under random
    /// create/delete/set_replication sequences: directory usage equals the
    /// sum over surviving files of len × pinned replicas.
    #[test]
    fn namespace_quota_accounting_consistent(
        ops in proptest::collection::vec((0u8..3, 0usize..8, 0u8..3, 1u64..5), 1..40),
    ) {
        use octopusfs::master::Namespace;
        let mut ns = Namespace::new();
        ns.mkdir("/d", true).unwrap();
        let mut live: std::collections::HashMap<usize, (ReplicationVector, u64)> =
            std::collections::HashMap::new();
        let mut next_block = 1u64;
        for (op, slot, tier, len_units) in ops {
            let path = format!("/d/f{slot}");
            let len = len_units * 100;
            match op {
                0 => {
                    // create (if absent) with 1 replica pinned to `tier`.
                    live.entry(slot).or_insert_with(|| {
                        let rv = ReplicationVector::EMPTY.with_tier(TierId(tier), 1);
                        let f = ns.create_file(&path, rv, 1000).unwrap();
                        ns.add_block(f, octopusfs::common::BlockId(next_block), len)
                            .unwrap();
                        next_block += 1;
                        (rv, len)
                    });
                }
                1 => {
                    if live.remove(&slot).is_some() {
                        ns.delete(&path, false).unwrap();
                    }
                }
                _ => {
                    if let Some((_, len)) = live.get(&slot).copied() {
                        let rv = ReplicationVector::EMPTY.with_tier(TierId(tier), 2);
                        ns.set_replication(&path, rv).unwrap();
                        live.insert(slot, (rv, len));
                    }
                }
            }
        }
        let (_, usage) = ns.quota_usage("/d").unwrap();
        let mut expected = [0u64; 7];
        for (rv, len) in live.values() {
            for (t, c) in rv.iter_tiers() {
                expected[t.0 as usize] += len * c as u64;
            }
        }
        prop_assert_eq!(&usage[..], &expected[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The windowed data path round-trips bit-exactly for arbitrary
    /// (length, block size, window) triples on a real TCP cluster, and
    /// injected mid-write connection drops (pipeline recovery via
    /// re-placement) leave the blockmap clean: unique block ids, offsets
    /// covering the file contiguously, every block with at least one
    /// committed replica, and nothing dangling after a block-report round.
    #[test]
    fn windowed_data_path_round_trips_and_keeps_blockmap_clean(
        len_kb in 0u64..1200,
        bs_64kb in 1u64..5,
        window in 1u32..6,
        drops in 0usize..3,
        seed in any::<u64>(),
    ) {
        use octopusfs::common::{ClientLocation, ClusterConfig, RpcConfig};
        use octopusfs::core::net::{faults, FaultAction};
        use octopusfs::core::NetCluster;

        let block_size = bs_64kb * 64 * 1024;
        let mut config = ClusterConfig::test_cluster(4, 64 << 20, block_size);
        config.heartbeat_ms = 20;
        config.io_window = window;
        let cluster = NetCluster::start(config).unwrap();
        let client = cluster
            .client(ClientLocation::OffCluster)
            .with_rpc_config(RpcConfig::fast_test());
        prop_assert_eq!(client.io_window(), window.max(1));

        let octopusfs::common::BlockData::Real(bytes) =
            octopusfs::common::BlockData::generate_real((len_kb * 1024) as usize, seed)
        else { unreachable!() };
        let data = bytes.to_vec();

        // Drop some data-server responses mid-write: the client must
        // recover each affected pipeline and still commit every block.
        let victim = cluster.worker_addr(cluster.workers()[1].id()).unwrap();
        for _ in 0..drops {
            faults::inject(victim, FaultAction::DropConnection);
        }
        let rv = ReplicationVector::from_replication_factor(2);
        client.write_file("/p", &data, rv).unwrap();
        faults::clear(victim);

        prop_assert_eq!(client.read_file("/p").unwrap(), data.clone());

        let blocks = client.get_file_block_locations("/p", 0, u64::MAX).unwrap();
        let expected = data.len().div_ceil(block_size as usize);
        prop_assert_eq!(blocks.len(), expected);
        let mut ids = std::collections::HashSet::new();
        let mut next_offset = 0u64;
        for lb in &blocks {
            prop_assert!(ids.insert(lb.block.id), "duplicate block id {}", lb.block.id);
            prop_assert_eq!(lb.offset, next_offset, "offsets must be contiguous");
            prop_assert!(!lb.locations.is_empty(), "dangling block {}", lb.block.id);
            next_offset += lb.block.len;
        }
        prop_assert_eq!(next_offset, data.len() as u64);

        // Reconcile replicas abandoned by recovery, then re-verify: the
        // purge must not touch any live block.
        cluster.run_block_report_round().unwrap();
        prop_assert_eq!(client.read_file("/p").unwrap(), data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Multiplexed transport under concurrency and faults: 32+ callers
    /// share a couple of connections to one server while responses are
    /// randomly delayed and connections randomly dropped. Every caller
    /// must either receive exactly its own payload back or a clean
    /// transport error — never someone else's response.
    #[test]
    fn multiplexed_callers_get_their_own_responses_under_faults(
        seed in any::<u64>(),
        drops in 0usize..4,
        delays in 0usize..4,
    ) {
        use octopusfs::common::{FsError, RpcConfig};
        use octopusfs::core::net::frame::read_mux_frame;
        use octopusfs::core::net::rpc::RpcClient;
        use octopusfs::core::net::{faults, FaultAction};
        use octopusfs::core::net::proto::FramePayload;
        use std::sync::Arc;
        use std::time::Duration;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Echo server that routes every response through the fault layer,
        // so injected drops/delays hit real in-flight multiplexed calls.
        // Detached: the accept loop lives until process exit.
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut s) = conn else { break };
                std::thread::spawn(move || {
                    while let Ok(Some((id, frame))) = read_mux_frame(&mut s) {
                        let payload = FramePayload::small(frame);
                        match faults::write_response(addr, &mut s, id, &payload) {
                            Ok(true) => {}
                            _ => break,
                        }
                    }
                });
            }
        });

        for _ in 0..drops {
            faults::inject(addr, FaultAction::DropConnection);
        }
        for i in 0..delays {
            let ms = 5 + (seed.wrapping_add(i as u64) % 40);
            faults::inject(addr, FaultAction::Delay(Duration::from_millis(ms)));
        }

        let client = Arc::new(RpcClient::new(RpcConfig {
            conns_per_peer: 2,
            read_timeout_ms: 2_000,
            max_retries: 3,
            ..RpcConfig::fast_test()
        }));
        let mut callers = Vec::new();
        for i in 0..36u64 {
            let client = Arc::clone(&client);
            callers.push(std::thread::spawn(move || {
                let payload =
                    format!("caller-{i}-seed-{seed}").into_bytes();
                (payload.clone(), client.call_raw(addr, &payload, true))
            }));
        }
        let mut ok = 0usize;
        for c in callers {
            let (sent, got) = c.join().unwrap();
            match got {
                Ok(echoed) => {
                    prop_assert_eq!(&echoed, &sent, "response routed to the wrong caller");
                    ok += 1;
                }
                // A dropped connection may fail the calls multiplexed on
                // it faster than the retry budget recovers; that must
                // surface as a clean transport error, never a mix-up.
                Err(FsError::Unreachable(_) | FsError::Timeout(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
            }
        }
        faults::clear(addr);
        client.evict(addr);
        // Delays never kill connections, so at least the non-dropped
        // majority must have succeeded.
        prop_assert!(ok >= 36 - (drops + 1) * 8, "only {ok}/36 calls succeeded");
    }
}

proptest! {
    /// Pipeline flows never exceed the capacity of any traversed resource,
    /// and the completion time is at least bytes / min-capacity.
    #[test]
    fn simnet_pipeline_bounded_by_slowest_stage(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..5),
        bytes in 1.0f64..1e6,
    ) {
        let mut net = SimNet::new();
        let res: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_resource(&format!("r{i}"), c))
            .collect();
        let f = net.start_flow(bytes, res.clone());
        let min_cap = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((net.flow_rate(f) - min_cap).abs() < 1e-6);
        let e = net.next_event().unwrap();
        let expected = bytes / min_cap;
        prop_assert!((e.time.as_secs_f64() - expected).abs() < 1e-6 + expected * 1e-9);
    }

    /// The MOOP policy is deterministic given identical snapshots and
    /// fresh policies (seeded tie-breaking), and insensitive to request
    /// clones.
    #[test]
    fn moop_placement_is_deterministic(
        workers in 3u32..10,
        r in 1usize..4,
    ) {
        let snap = ClusterSnapshot::synthetic(workers, 2, 2);
        let req = PlacementRequest::unspecified(r, 1 << 20, ClientLocation::OffCluster);
        let a = GreedyPolicy::moop(PolicyConfig::default()).place(&snap, &req).unwrap();
        let b = GreedyPolicy::moop(PolicyConfig::default()).place(&snap, &req.clone()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Wire codec: every MediaStats vector round-trips bit-exactly.
    #[test]
    fn wire_media_stats_round_trip(
        stats in proptest::collection::vec(
            (0u32..100, 0u32..10, 0u16..4, 0u8..3, 0u64..1 << 40, 0u32..50), 0..20)
    ) {
        use octopusfs::common::wire::{decode, encode};
        use octopusfs::common::MediaStats;
        let v: Vec<MediaStats> = stats
            .into_iter()
            .map(|(m, w, rk, t, cap, conn)| MediaStats {
                media: MediaId(m),
                worker: WorkerId(w),
                rack: octopusfs::common::RackId(rk),
                tier: TierId(t),
                capacity: cap,
                remaining: cap / 2,
                nr_conn: conn,
                write_thru: 1.5e8,
                read_thru: 2.5e8,
            })
            .collect();
        let enc = encode(&v);
        let dec: Vec<MediaStats> = decode(&enc).unwrap();
        prop_assert_eq!(dec, v);
    }
}

// ---------------------------------------------------------------------------
// Group-commit crash replay (ROADMAP item 1: the sharded master's edit log).
//
// Concurrent clients hammer a file-backed master; every mutation is acked
// only after its group-commit batch fsyncs. The property: truncating the
// on-disk log at *any* byte (decode_stream drops the torn record tail, so
// every cut lands on a record boundary — a batch-prefix state) yields an
// op sequence that replays cleanly into a fresh master. Staged order is
// the linearization order, so every durable prefix is a state reachable
// by some serial execution: no partial multi-op transactions, no op that
// depends on an unlogged predecessor. The full log must additionally
// contain every acked op: thread-private creates/deletes are tracked
// exactly and checked against the replayed image.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn group_commit_crash_replay_is_serially_reachable(
        seed in 0u64..1_000,
        threads in 2usize..5,
        shards in 1usize..9,
    ) {
        use octopusfs::master::editlog::decode_stream;
        use octopusfs::master::{EditLog, Master};

        let dir = std::env::temp_dir().join(format!(
            "octofs_prop_gc_{}_{seed}_{threads}_{shards}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("edits.log");

        let mut config = ClusterConfig::test_cluster(3, 10 << 20, 1 << 20);
        config.master_shards = shards;
        let master = Master::with_log(config, EditLog::open(&log_path).unwrap()).unwrap();
        master.mkdir("/shared").unwrap();
        for t in 0..threads {
            master.mkdir(&format!("/t{t}")).unwrap();
        }

        // Each thread: private creates/deletes (conflict-free, every ack
        // tracked) interleaved with racy ops on /shared (acks ignored —
        // they only stress batching and cross-shard interleavings).
        let rv = ReplicationVector::from_replication_factor(1);
        let expected: Vec<Vec<String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let master = &master;
                    s.spawn(move || {
                        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) ^ t as u64;
                        let mut next = move || {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            state >> 33
                        };
                        let mut alive = Vec::new();
                        for i in 0..24 {
                            let private = format!("/t{t}/f{i}");
                            master.create_file(&private, rv, None).unwrap();
                            master.complete_file(&private).unwrap();
                            if next() % 3 == 0 {
                                master.delete(&private, false).unwrap();
                            } else {
                                alive.push(private);
                            }
                            let shared = format!("/shared/f{}", next() % 6);
                            match next() % 3 {
                                0 => {
                                    let _ = master.create_file(&shared, rv, None);
                                }
                                1 => {
                                    let _ = master.delete(&shared, false);
                                }
                                _ => {
                                    let _ = master
                                        .rename(&shared, &format!("/shared/g{}", next() % 6));
                                }
                            }
                        }
                        alive
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        drop(master); // "crash": only the on-disk bytes survive

        let bytes = std::fs::read(&log_path).unwrap();
        prop_assert!(!bytes.is_empty());

        // Any byte-level truncation replays cleanly (16 cuts + the end).
        let step = (bytes.len() / 16).max(1);
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(step).collect();
        cuts.push(bytes.len());
        for cut in cuts {
            let ops = decode_stream(&bytes[..cut]).unwrap();
            let mut log = EditLog::in_memory();
            for op in ops {
                log.append(op).unwrap();
            }
            let mut config = ClusterConfig::test_cluster(3, 10 << 20, 1 << 20);
            config.master_shards = shards;
            let replayed = Master::with_log(config, log);
            prop_assert!(
                replayed.is_ok(),
                "durable prefix (cut={cut}) not serially reachable: {:?}",
                replayed.err()
            );
        }

        // The full log holds every acked private op exactly.
        let mut config = ClusterConfig::test_cluster(3, 10 << 20, 1 << 20);
        config.master_shards = shards;
        let full = Master::with_log(config, EditLog::open(&log_path).unwrap()).unwrap();
        for (t, alive) in expected.iter().enumerate() {
            let listed: Vec<String> = full
                .list(&format!("/t{t}"))
                .unwrap()
                .into_iter()
                .map(|e| format!("/t{t}/{}", e.name))
                .collect();
            let mut want = alive.clone();
            want.sort();
            let mut got = listed;
            got.sort();
            prop_assert_eq!(got, want, "acked ops missing after replay (thread {t})");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
