//! Full multi-process deployment test: one `octofs-master` daemon, three
//! `octofs-worker` daemons (separate OS processes), driven through
//! `octofs-remote` — the closest this repository gets to the paper's real
//! cluster deployment.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a daemon and extracts the "listening/serving on ADDR" line.
fn spawn_with_addr(bin: &str, args: &[String]) -> (Daemon, String) {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn daemon");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon banner");
    let addr = line.rsplit(' ').next().expect("address in banner").trim().to_string();
    // Keep draining stdout in the background so the daemon never blocks.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                break;
            }
            sink.clear();
        }
    });
    (Daemon(child), addr)
}

fn remote(master: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_octofs-remote"))
        .arg("--master")
        .arg(master)
        .args(args)
        .output()
        .expect("run octofs-remote");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn multiprocess_deployment_end_to_end() {
    let shape = ["--workers", "3", "--block-size", "65536", "--capacity", "67108864"];
    let shape: Vec<String> = shape.iter().map(|s| s.to_string()).collect();

    // Master process.
    let mut margs = vec!["--listen".to_string(), "127.0.0.1:0".to_string()];
    margs.extend(shape.clone());
    margs.extend(["--heartbeat-ms".to_string(), "50".to_string()]);
    let (_master, master_addr) = spawn_with_addr(env!("CARGO_BIN_EXE_octofs-master"), &margs);

    // Three worker processes.
    let mut daemons = Vec::new();
    for id in 0..3 {
        let mut wargs = vec![
            "--master".to_string(),
            master_addr.clone(),
            "--id".to_string(),
            id.to_string(),
            "--heartbeat-ms".to_string(),
            "50".to_string(),
        ];
        wargs.extend(shape.clone());
        let (d, _) = spawn_with_addr(env!("CARGO_BIN_EXE_octofs-worker"), &wargs);
        daemons.push(d);
    }

    // Wait until all three workers have registered (peer maps need a
    // heartbeat round to propagate).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (ok, out, _) = remote(&master_addr, &["report"]);
        if ok && out.contains("media=3") {
            break;
        }
        assert!(Instant::now() < deadline, "workers never registered");
        std::thread::sleep(Duration::from_millis(50));
    }
    // One extra heartbeat round so every worker has the full peer map
    // (pipeline forwarding needs it).
    std::thread::sleep(Duration::from_millis(150));

    // Drive a full lifecycle through separate octofs-remote invocations.
    let tmp = std::env::temp_dir().join(format!(
        "octofs_daemon_{}_{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    std::fs::create_dir_all(&tmp).unwrap();
    let local = tmp.join("in.bin");
    let data: Vec<u8> = (0..300_000u32).map(|i| (i % 113) as u8).collect();
    std::fs::write(&local, &data).unwrap();

    let (ok, _, err) = remote(&master_addr, &["mkdir", "/data"]);
    assert!(ok, "{err}");
    let (ok, _, err) =
        remote(&master_addr, &["put", local.to_str().unwrap(), "/data/f", "--rv", "<0,1,2>"]);
    assert!(ok, "{err}");

    let (ok, out, err) = remote(&master_addr, &["ls", "/data"]);
    assert!(ok, "{err}");
    assert!(out.contains('f'), "{out}");

    let (ok, out, err) = remote(&master_addr, &["cat", "/data/f"]);
    assert!(ok, "{err}");
    assert_eq!(out.as_bytes(), &data[..], "content survives three processes and TCP");

    let fetched = tmp.join("out.bin");
    let (ok, _, err) = remote(&master_addr, &["get", "/data/f", fetched.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert_eq!(std::fs::read(&fetched).unwrap(), data);

    let (ok, out, err) = remote(&master_addr, &["setrep", "/data/f", "<0,2,1>"]);
    assert!(ok, "{err}");
    assert!(out.contains("->"), "{out}");

    let (ok, _, err) = remote(&master_addr, &["rm", "/data/f"]);
    assert!(ok, "{err}");
    let (ok, _, _) = remote(&master_addr, &["cat", "/data/f"]);
    assert!(!ok, "deleted file must not be readable");

    std::fs::remove_dir_all(tmp).ok();
    drop(daemons);
}

#[test]
fn daemon_deployment_self_heals_after_worker_crash() {
    let shape = ["--workers", "4", "--block-size", "65536", "--capacity", "67108864"];
    let shape: Vec<String> = shape.iter().map(|s| s.to_string()).collect();

    let mut margs = vec!["--listen".to_string(), "127.0.0.1:0".to_string()];
    margs.extend(shape.clone());
    margs.extend(["--heartbeat-ms".to_string(), "40".to_string()]);
    let (_master, master_addr) = spawn_with_addr(env!("CARGO_BIN_EXE_octofs-master"), &margs);

    let mut daemons = Vec::new();
    for id in 0..4 {
        let mut wargs = vec![
            "--master".to_string(),
            master_addr.clone(),
            "--id".to_string(),
            id.to_string(),
            "--heartbeat-ms".to_string(),
            "40".to_string(),
        ];
        wargs.extend(shape.clone());
        let (d, _) = spawn_with_addr(env!("CARGO_BIN_EXE_octofs-worker"), &wargs);
        daemons.push(d);
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (ok, out, _) = remote(&master_addr, &["report"]);
        if ok && out.contains("media=4") {
            break;
        }
        assert!(Instant::now() < deadline, "workers never registered");
        std::thread::sleep(Duration::from_millis(50));
    }
    std::thread::sleep(Duration::from_millis(150));

    let tmp = std::env::temp_dir().join(format!(
        "octofs_heal_{}_{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    std::fs::create_dir_all(&tmp).unwrap();
    let local = tmp.join("in.bin");
    let data: Vec<u8> = (0..150_000u32).map(|i| (i % 101) as u8).collect();
    std::fs::write(&local, &data).unwrap();
    let (ok, _, err) =
        remote(&master_addr, &["put", local.to_str().unwrap(), "/hafile", "--rv", "2"]);
    assert!(ok, "{err}");

    // Crash one worker process outright.
    let victim = daemons.remove(0);
    drop(victim); // kills the child

    // The master declares it dead after ~10 missed heartbeats (40 ms each)
    // and the daemon's monitor thread re-replicates. Poll until the file
    // is fully replicated on the survivors and still byte-identical.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (ok, out, _) = remote(&master_addr, &["cat", "/hafile"]);
        if ok && out.as_bytes() == &data[..] {
            break;
        }
        assert!(Instant::now() < deadline, "file unreadable after worker crash (ok={ok})");
        std::thread::sleep(Duration::from_millis(100));
    }
    std::fs::remove_dir_all(tmp).ok();
}

#[test]
fn worker_daemon_restart_recovers_on_disk_blocks() {
    // A worker daemon with --dir persists its block files; after a crash
    // and restart, its block report re-registers the replicas.
    let tmp = std::env::temp_dir().join(format!(
        "octofs_persist_{}_{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    std::fs::create_dir_all(&tmp).unwrap();

    let shape = ["--workers", "2", "--block-size", "65536", "--capacity", "67108864"];
    let shape: Vec<String> = shape.iter().map(|s| s.to_string()).collect();
    let mut margs = vec!["--listen".to_string(), "127.0.0.1:0".to_string()];
    margs.extend(shape.clone());
    margs.extend(["--heartbeat-ms".to_string(), "40".to_string()]);
    let (_master, master_addr) = spawn_with_addr(env!("CARGO_BIN_EXE_octofs-master"), &margs);

    let spawn_worker = |id: u32| {
        let mut wargs = vec![
            "--master".to_string(),
            master_addr.clone(),
            "--id".to_string(),
            id.to_string(),
            "--heartbeat-ms".to_string(),
            "40".to_string(),
            "--dir".to_string(),
            tmp.join(format!("w{id}")).to_string_lossy().into_owned(),
        ];
        wargs.extend(shape.clone());
        spawn_with_addr(env!("CARGO_BIN_EXE_octofs-worker"), &wargs)
    };
    let (w0, _) = spawn_worker(0);
    let (_w1, _) = spawn_worker(1);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (ok, out, _) = remote(&master_addr, &["report"]);
        if ok && out.contains("media=2") {
            break;
        }
        assert!(Instant::now() < deadline, "workers never registered");
        std::thread::sleep(Duration::from_millis(50));
    }
    std::thread::sleep(Duration::from_millis(150));

    // Write to persistent tiers only (memory is volatile by design).
    let local = tmp.join("in.bin");
    let data: Vec<u8> = (0..120_000u32).map(|i| (i % 89) as u8).collect();
    std::fs::write(&local, &data).unwrap();
    let (ok, _, err) =
        remote(&master_addr, &["put", local.to_str().unwrap(), "/p", "--rv", "<0,1,1>"]);
    assert!(ok, "{err}");

    // Crash worker 0, restart it with the same --dir and --id.
    drop(w0);
    std::thread::sleep(Duration::from_millis(200));
    let (_w0b, _) = spawn_worker(0);

    // After re-registration + block report, the file is fully readable
    // again with both replicas present.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (ok, out, _) = remote(&master_addr, &["cat", "/p"]);
        if ok && out.as_bytes() == &data[..] {
            break;
        }
        assert!(Instant::now() < deadline, "restarted worker never served its blocks");
        std::thread::sleep(Duration::from_millis(100));
    }
    std::fs::remove_dir_all(tmp).ok();
}
