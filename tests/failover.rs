//! Master fault tolerance end to end (paper §2.1): edit-log replay, backup
//! master mirroring, checkpoint + takeover, and block-report repopulation
//! after a failover.

use octopusfs::master::{BackupMaster, EditLog, Master};
use octopusfs::{ClientLocation, Cluster, ClusterConfig, ReplicationVector};

fn config() -> ClusterConfig {
    ClusterConfig::test_cluster(4, 64 << 20, 1 << 20)
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopusfs::common::BlockData::Real(b) =
        octopusfs::common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

#[test]
fn backup_takeover_preserves_namespace_and_data() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(3 << 20, 5);
    client.mkdir("/prod").unwrap();
    client.write_file("/prod/db", &data, ReplicationVector::msh(0, 1, 2)).unwrap();

    // The backup tails the primary's edit log.
    let mut backup = BackupMaster::new();
    backup.sync_from(cluster.master()).unwrap();
    let image = backup.create_checkpoint();

    // "Fail" the primary: build a new master from the backup's checkpoint.
    let recovered = Master::restore(cluster.master().config().clone(), &image).unwrap();
    let st = recovered.status("/prod/db").unwrap();
    assert_eq!(st.len, data.len() as u64);
    assert_eq!(st.rv, ReplicationVector::msh(0, 1, 2));

    // Locations come back via block reports from the (still running)
    // workers.
    for w in cluster.workers() {
        recovered.register_worker(w.id(), w.rack(), w.net_bps(), 0);
        let (stats, conns) = w.heartbeat_stats();
        recovered.heartbeat(w.id(), stats, conns, 0).unwrap();
        recovered.block_report(w.id(), &w.block_report()).unwrap();
    }
    let blocks = recovered
        .get_file_block_locations("/prod/db", 0, u64::MAX, ClientLocation::OffCluster)
        .unwrap();
    assert_eq!(blocks.len(), 3);
    for b in &blocks {
        assert_eq!(b.locations.len(), 3, "all replicas re-registered");
    }
}

#[test]
fn file_backed_edit_log_survives_restart() {
    let dir = std::env::temp_dir().join(format!(
        "octopus_failover_{}_{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("edits.log");

    {
        let master = Master::with_log(config(), EditLog::open(&log_path).unwrap()).unwrap();
        master.mkdir("/a/b").unwrap();
        master.create_file("/a/b/f", ReplicationVector::from_replication_factor(2), None).unwrap();
        master.complete_file("/a/b/f").unwrap();
        master.rename("/a/b/f", "/a/g").unwrap();
    }
    // Restart: the log is replayed from disk.
    let master2 = Master::with_log(config(), EditLog::open(&log_path).unwrap()).unwrap();
    assert!(master2.status("/a/g").unwrap().complete);
    assert!(master2.status("/a/b/f").is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpoint_plus_log_tail_recovery() {
    // The paper's recovery model: start from the latest checkpoint, then
    // replay the edit-log tail.
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/cp").unwrap();

    let mut backup = BackupMaster::new();
    backup.sync_from(cluster.master()).unwrap();
    let checkpoint = backup.create_checkpoint();
    let tail_from = cluster.master().edit_count();

    // More activity after the checkpoint.
    client
        .write_file("/cp/late", &payload(1 << 20, 9), ReplicationVector::from_replication_factor(2))
        .unwrap();

    // Recovery = checkpoint ops + the log tail, replayed together.
    let mut log = EditLog::in_memory();
    for op in octopusfs::master::editlog::decode_stream(&checkpoint).unwrap() {
        log.append(op).unwrap();
    }
    for op in cluster.master().edits_since(tail_from) {
        log.append(op).unwrap();
    }
    let recovered = Master::with_log(cluster.master().config().clone(), log).unwrap();
    assert_eq!(
        recovered.status("/cp/late").unwrap().len,
        1 << 20,
        "tail replay restored the post-checkpoint file"
    );
    assert!(recovered.status("/cp").unwrap().is_dir);
}
