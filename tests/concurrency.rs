//! Concurrency stress tests: many threads driving one in-process cluster.
//! The master serializes metadata behind its namespace lock (as the HDFS
//! NameNode does); workers serve data-path operations concurrently.

use crossbeam::thread;

use octopusfs::{ClientLocation, Cluster, ClusterConfig, ReplicationVector, WorkerId};

const MB: u64 = 1 << 20;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopusfs::common::BlockData::Real(b) =
        octopusfs::common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

#[test]
fn parallel_writers_on_distinct_files() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(6, 128 * MB, MB)).unwrap();
    thread::scope(|s| {
        for t in 0..8u64 {
            let client = cluster.client(ClientLocation::OnWorker(WorkerId((t % 6) as u32)));
            s.spawn(move |_| {
                for i in 0..4 {
                    let path = format!("/w{t}/f{i}");
                    client.mkdir(&format!("/w{t}")).unwrap();
                    let data = payload((MB / 2) as usize, t * 100 + i);
                    client
                        .write_file(&path, &data, ReplicationVector::from_replication_factor(2))
                        .unwrap();
                    assert_eq!(client.read_file(&path).unwrap(), data);
                }
            });
        }
    })
    .unwrap();
    let (files, _) = cluster.master().counts();
    assert_eq!(files, 32);
}

#[test]
fn parallel_readers_on_one_file() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(6, 128 * MB, MB)).unwrap();
    let writer = cluster.client(ClientLocation::OffCluster);
    let data = payload(3 * MB as usize, 7);
    writer.write_file("/shared", &data, ReplicationVector::from_replication_factor(3)).unwrap();

    thread::scope(|s| {
        for t in 0..12u32 {
            let client = cluster.client(ClientLocation::OnWorker(WorkerId(t % 6)));
            let expect = data.clone();
            s.spawn(move |_| {
                for _ in 0..3 {
                    assert_eq!(client.read_file("/shared").unwrap(), expect);
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn exactly_one_creator_wins_a_contended_path() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(4, 64 * MB, MB)).unwrap();
    let successes = std::sync::atomic::AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..8 {
            let client = cluster.client(ClientLocation::OffCluster);
            let successes = &successes;
            s.spawn(move |_| {
                if client
                    .write_file(
                        "/contended",
                        &payload(1024, 1),
                        ReplicationVector::from_replication_factor(2),
                    )
                    .is_ok()
                {
                    successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(successes.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(
        cluster.client(ClientLocation::OffCluster).read_file("/contended").unwrap().len(),
        1024
    );
}

#[test]
fn reads_race_with_replication_repair() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(6, 128 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(2 * MB as usize, 9);
    client.write_file("/race", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let victim = client.get_file_block_locations("/race", 0, u64::MAX).unwrap()[0].locations[0];
    cluster.kill_worker(victim.worker);

    thread::scope(|s| {
        // Readers hammer while the monitor repairs.
        for t in 0..6u32 {
            let c = cluster.client(ClientLocation::OnWorker(WorkerId(t % 6)));
            let expect = data.clone();
            s.spawn(move |_| {
                for _ in 0..5 {
                    assert_eq!(c.read_file("/race").unwrap(), expect);
                }
            });
        }
        s.spawn(|_| {
            for _ in 0..3 {
                cluster.run_replication_round().unwrap();
            }
        });
    })
    .unwrap();

    let blocks = client.get_file_block_locations("/race", 0, u64::MAX).unwrap();
    for b in &blocks {
        assert_eq!(b.locations.len(), 3, "repair completed under read load");
    }
}

#[test]
fn concurrent_namespace_churn_stays_consistent() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(4, 128 * MB, MB)).unwrap();
    thread::scope(|s| {
        for t in 0..6u64 {
            let client = cluster.client(ClientLocation::OffCluster);
            s.spawn(move |_| {
                let dir = format!("/churn{t}");
                client.mkdir(&dir).unwrap();
                for i in 0..10 {
                    let path = format!("{dir}/f{i}");
                    client
                        .write_file(
                            &path,
                            &payload(4096, i),
                            ReplicationVector::from_replication_factor(1),
                        )
                        .unwrap();
                    if i % 2 == 0 {
                        client.rename(&path, &format!("{dir}/g{i}")).unwrap();
                    }
                    if i % 3 == 0 {
                        client
                            .delete(
                                &format!(
                                    "{dir}/{}",
                                    if i % 2 == 0 { format!("g{i}") } else { format!("f{i}") }
                                ),
                                false,
                            )
                            .unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    // The namespace is consistent: every listed file reads fully.
    let client = cluster.client(ClientLocation::OffCluster);
    for t in 0..6 {
        for e in client.list(&format!("/churn{t}")).unwrap() {
            let data = client.read_file(&format!("/churn{t}/{}", e.name)).unwrap();
            assert_eq!(data.len() as u64, e.len);
        }
    }
}
