//! Integration tests of the `octofs` CLI: a persistent single-process
//! OctopusFS instance driven across separate invocations.

use std::path::PathBuf;
use std::process::Command;

struct Cli {
    root: PathBuf,
}

impl Cli {
    fn new(tag: &str) -> Cli {
        let root = std::env::temp_dir().join(format!(
            "octofs_cli_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        Cli { root }
    }

    fn run(&self, args: &[&str]) -> (bool, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_octofs"))
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("spawn octofs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }

    fn ok(&self, args: &[&str]) -> String {
        let (success, stdout, stderr) = self.run(args);
        assert!(success, "octofs {args:?} failed: {stderr}");
        stdout
    }
}

impl Drop for Cli {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn full_lifecycle_across_invocations() {
    let cli = Cli::new("lifecycle");
    cli.ok(&["init", "--workers", "4", "--block-size", "65536"]);

    // Stage a local file.
    let local = cli.root.join("input.bin");
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 127) as u8).collect();
    std::fs::write(&local, &data).unwrap();

    cli.ok(&["mkdir", "/data"]);
    cli.ok(&["put", local.to_str().unwrap(), "/data/file", "--rv", "<0,1,1>"]);

    // Separate invocation: list and read back.
    let ls = cli.ok(&["ls", "/data"]);
    assert!(ls.contains("file"), "{ls}");
    let cat = cli.ok(&["cat", "/data/file"]);
    assert_eq!(cat.as_bytes(), &data[..]);

    // Download.
    let out = cli.root.join("out.bin");
    cli.ok(&["get", "/data/file", out.to_str().unwrap()]);
    assert_eq!(std::fs::read(&out).unwrap(), data);

    // Rename and re-read in yet another invocation.
    cli.ok(&["mv", "/data/file", "/data/renamed"]);
    let cat = cli.ok(&["cat", "/data/renamed"]);
    assert_eq!(cat.len(), data.len());

    // Change the replication vector (realized before exit).
    let out = cli.ok(&["setrep", "/data/renamed", "<0,2,0>"]);
    assert!(out.contains("->"), "{out}");

    // Report shows tiers and counts.
    let report = cli.ok(&["report"]);
    assert!(report.contains("files"), "{report}");
    assert!(report.contains("SSD"), "{report}");

    // fsck is clean.
    let fsck = cli.ok(&["fsck"]);
    assert!(fsck.contains("0 corrupt"), "{fsck}");

    // Delete.
    cli.ok(&["rm", "/data/renamed"]);
    let (success, _, stderr) = cli.run(&["cat", "/data/renamed"]);
    assert!(!success);
    assert!(stderr.contains("not found"), "{stderr}");
}

#[test]
fn init_is_guarded() {
    let cli = Cli::new("guard");
    // Commands before init fail with guidance.
    let (success, _, stderr) = cli.run(&["ls", "/"]);
    assert!(!success);
    assert!(stderr.contains("init"), "{stderr}");

    cli.ok(&["init"]);
    let (success, _, stderr) = cli.run(&["init"]);
    assert!(!success, "double init must fail: {stderr}");
}

#[test]
fn bare_replication_factor_accepted() {
    let cli = Cli::new("repfactor");
    cli.ok(&["init", "--workers", "3"]);
    let local = cli.root.join("f.bin");
    std::fs::write(&local, vec![7u8; 1000]).unwrap();
    cli.ok(&["put", local.to_str().unwrap(), "/f", "--rv", "3"]);
    let ls = cli.ok(&["ls", "/"]);
    assert!(ls.contains(";3>"), "vector with U=3 expected: {ls}");
}

#[test]
fn memory_pinned_replicas_recreated_after_restart() {
    // A file pinned ⟨1,0,1⟩ loses its memory replica when the process
    // exits (volatile tier); the next invocation's fsck restores it from
    // the persistent copy.
    let cli = Cli::new("volatile");
    cli.ok(&["init", "--workers", "4", "--block-size", "65536"]);
    let local = cli.root.join("hot.bin");
    std::fs::write(&local, vec![5u8; 100_000]).unwrap();
    cli.ok(&["put", local.to_str().unwrap(), "/hot", "--rv", "<1,0,1>"]);

    // New invocation: the data is still fully readable (HDD copy), and
    // fsck schedules the memory replica's re-creation.
    let cat = cli.ok(&["cat", "/hot"]);
    assert_eq!(cat.len(), 100_000);
    let fsck = cli.ok(&["fsck"]);
    assert!(fsck.contains("repair tasks run"), "{fsck}");
}

#[test]
fn balance_command_runs() {
    let cli = Cli::new("balance");
    cli.ok(&["init", "--workers", "4", "--block-size", "65536"]);
    let local = cli.root.join("f.bin");
    std::fs::write(&local, vec![3u8; 200_000]).unwrap();
    for i in 0..4 {
        cli.ok(&["put", local.to_str().unwrap(), &format!("/f{i}"), "--rv", "1"]);
    }
    let out = cli.ok(&["balance"]);
    assert!(out.contains("replica move(s)"), "{out}");
    // Data still intact afterwards.
    let cat = cli.ok(&["cat", "/f0"]);
    assert_eq!(cat.len(), 200_000);
}

#[test]
fn append_command_extends_file() {
    let cli = Cli::new("append");
    cli.ok(&["init", "--workers", "3", "--block-size", "65536"]);
    let a = cli.root.join("a.bin");
    let b = cli.root.join("b.bin");
    std::fs::write(&a, vec![b'A'; 10_000]).unwrap();
    std::fs::write(&b, vec![b'B'; 5_000]).unwrap();
    cli.ok(&["put", a.to_str().unwrap(), "/log", "--rv", "2"]);
    cli.ok(&["append", b.to_str().unwrap(), "/log"]);
    let cat = cli.ok(&["cat", "/log"]);
    assert_eq!(cat.len(), 15_000);
    assert!(cat.starts_with("AAAA"));
    assert!(cat.ends_with("BBBB"));
}
