//! Metrics smoke test: boots a networked cluster, performs one write and
//! one read, and dumps the merged cluster-wide metrics snapshot in its
//! text exposition format. CI runs this and asserts the expected series
//! are present (see `scripts/ci.sh`).
//!
//! Run with: `cargo run --release --example metrics_smoke`

use octopusfs::core::net::NetCluster;
use octopusfs::{ClientLocation, ClusterConfig, ReplicationVector};

fn main() -> octopusfs::Result<()> {
    let mut config = ClusterConfig::test_cluster(4, 64 << 20, 1 << 20);
    config.heartbeat_ms = 50;
    let cluster = NetCluster::start(config)?;
    let client = cluster.client(ClientLocation::OffCluster);

    let data: Vec<u8> = (0..2_000_000u32).map(|i| (i % 241) as u8).collect();
    client.write_file("/smoke", &data, ReplicationVector::from_replication_factor(2))?;
    assert_eq!(client.read_file("/smoke")?, data);

    // The merged snapshot: master registry + every worker's registry (over
    // the Metrics RPC) + the process-shared RPC client's series.
    let snap = cluster.metrics_snapshot()?;
    print!("{}", snap.render_text());

    // Sanity for interactive runs; CI greps the rendered text instead.
    assert!(snap.counter("master_requests_total") > 0);
    assert!(snap.counter("worker_write_bytes_total") >= data.len() as u64);
    assert!(snap.counter("rpc_client_requests_total") > 0);
    Ok(())
}
