//! Networked deployment tour: boots a real TCP cluster (master RPC
//! server, per-worker data servers, and heartbeat threads) in one
//! process, writes through the worker-to-worker pipeline, corrupts a
//! replica, and watches the scrubber and replication monitor heal it
//! over RPC.
//!
//! Run with: `cargo run --release --example net_tour`

use octopusfs::core::net::NetCluster;
use octopusfs::storage::MemoryStore;
use octopusfs::{ClientLocation, ClusterConfig, ReplicationVector};

fn main() -> octopusfs::Result<()> {
    let mut config = ClusterConfig::test_cluster(4, 64 << 20, 1 << 20);
    config.heartbeat_ms = 50;
    // Pace transfers at (a quarter of) each tier's device rates: loopback
    // media are RAM, and the parallel data path demo at the end needs
    // device-bound transfers to have anything to overlap (DESIGN.md §8).
    config.emulate_media_bps = true;
    for w in &mut config.workers {
        for m in &mut w.media {
            m.write_bps /= 4.0;
            m.read_bps /= 4.0;
        }
    }
    let cluster = NetCluster::start(config)?;
    println!("master RPC at {}", cluster.master_addr());
    for w in cluster.workers() {
        println!("worker {} data server at {:?}", w.id(), cluster.worker_addr(w.id()));
    }

    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/tour")?;
    let data: Vec<u8> = (0..2_500_000u32).map(|i| (i % 251) as u8).collect();
    client.write_file("/tour/file", &data, ReplicationVector::from_replication_factor(3))?;
    println!("\nwrote {} bytes through the TCP pipeline", data.len());

    let blocks = client.get_file_block_locations("/tour/file", 0, u64::MAX)?;
    for lb in &blocks {
        let workers: Vec<String> = lb.locations.iter().map(|l| l.worker.to_string()).collect();
        println!("  block {} replicas on {}", lb.block.id, workers.join(", "));
    }

    // Inject silent corruption into the best replica.
    let victim = blocks[0].locations[0];
    let worker = cluster.workers().iter().find(|w| w.id() == victim.worker).unwrap();
    worker
        .medium(victim.media)?
        .store
        .as_any()
        .downcast_ref::<MemoryStore>()
        .unwrap()
        .corrupt(blocks[0].block.id)?;
    println!("\ncorrupted one replica of block {} on {}", blocks[0].block.id, victim.worker);

    // The fleet-wide scrub finds it; the replication monitor re-creates it
    // by pulling from a healthy peer over TCP.
    let found = cluster.run_scrub_round()?.corrupt_total();
    println!("scrub found {found} corrupt replica(s)");
    let tasks = cluster.run_replication_round()?.attempted;
    println!("replication monitor ran {tasks} repair task(s)");

    let healed = client.get_file_block_locations("/tour/file", 0, u64::MAX)?;
    println!("block {} now has {} replicas", healed[0].block.id, healed[0].locations.len());
    assert_eq!(client.read_file("/tour/file")?, data);
    println!("\nread back verified ✓ (checksums intact end to end)");

    // The parallel data path (DESIGN.md §8): the client keeps `io_window`
    // blocks in flight at once — compare the serial client against the
    // default window on a device-bound multi-block transfer.
    let big: Vec<u8> = (0..8 << 20).map(|i: u32| (i % 241) as u8).collect();
    let mut totals = Vec::new();
    for window in [1u32, 4] {
        let c = cluster.client(ClientLocation::OffCluster).with_io_window(window);
        let path = format!("/tour/win{window}");
        let t = std::time::Instant::now();
        c.write_file(&path, &big, ReplicationVector::from_replication_factor(3))?;
        assert_eq!(c.read_file(&path)?, big);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("window {window}: 8-block write+read in {ms:.0} ms");
        totals.push(ms);
    }
    println!("window 4 speedup over serial: {:.2}x", totals[0] / totals[1]);
    Ok(())
}
