//! Multi-level cache management (paper §6, "Multi-level cache management"):
//! an application promotes its hot working set into the Memory tier, pins
//! it there while serving interactive queries, then demotes it — all
//! through the public `setReplication` API, with per-tenant memory quotas
//! keeping the tier fair.
//!
//! Run with: `cargo run --release --example tier_cache`

use octopusfs::core::{CacheAction, CacheManager};
use octopusfs::{
    ClientLocation, Cluster, ClusterConfig, FsError, ReplicationVector, StorageTier, TierQuota,
};

fn main() -> octopusfs::Result<()> {
    let config = ClusterConfig::test_cluster(6, 64 << 20, 1 << 20);
    let cluster = Cluster::start(config)?;
    let client = cluster.client(ClientLocation::OffCluster);

    // Two tenants, each with a 4 MB memory-tier quota.
    for tenant in ["/tenants/alice", "/tenants/bob"] {
        client.mkdir(tenant)?;
        client.set_quota(tenant, TierQuota::limit_tier(StorageTier::Memory.id().0, 4 << 20))?;
    }

    // Alice lands three 2 MB tables on disk.
    let table: Vec<u8> = (0..2_000_000u32).map(|i| (i % 239) as u8).collect();
    for t in ["t1", "t2", "t3"] {
        client.write_file(
            &format!("/tenants/alice/{t}"),
            &table,
            ReplicationVector::msh(0, 0, 2),
        )?;
    }
    println!("ingested 3 tables on the HDD tier");

    // Interactive phase: promote the hot table into memory (cache fill).
    client.set_replication("/tenants/alice/t1", ReplicationVector::msh(1, 0, 2))?;
    cluster.run_replication_round()?;
    let tiers_of = |path: &str| -> octopusfs::Result<Vec<String>> {
        Ok(client
            .get_file_block_locations(path, 0, u64::MAX)?
            .iter()
            .flat_map(|lb| lb.locations.iter().map(|l| l.tier.to_string()))
            .collect())
    };
    println!("t1 replicas now on tiers: {:?}", tiers_of("/tenants/alice/t1")?);

    // Promoting a second 2 MB table would exceed Alice's 4 MB memory
    // quota (t1 already pins 2 MB): the system refuses, protecting Bob.
    let err = client.set_replication("/tenants/alice/t2", ReplicationVector::msh(2, 0, 1));
    match err {
        Err(FsError::QuotaExceeded(msg)) => {
            println!("promotion of t2 with 2 memory replicas rejected: {msg}")
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // One memory replica (2 MB) still fits exactly.
    client.set_replication("/tenants/alice/t2", ReplicationVector::msh(1, 0, 1))?;
    cluster.run_replication_round()?;
    println!("t2 promoted with one memory replica");

    // Query phase: memory-resident reads.
    let hot = client.read_file("/tenants/alice/t1")?;
    assert_eq!(hot, table);
    println!("served hot read of t1 from the cache tiers");

    // Eviction: demote t1 back to disk-only, freeing memory quota.
    client.set_replication("/tenants/alice/t1", ReplicationVector::msh(0, 0, 2))?;
    cluster.run_replication_round()?;
    let (_, usage) = cluster.master().quota_usage("/tenants/alice")?;
    println!(
        "t1 evicted; alice's memory-tier usage is now {} bytes",
        usage[StorageTier::Memory.id().0 as usize]
    );

    // --- Or let the CacheManager automate all of the above (§6) -----------
    // Bob ingests tables and just *reads*; the manager watches accesses,
    // promotes the hot set into memory, and LRU-evicts under pressure.
    println!(
        "
automated cache management for bob:"
    );
    client.set_replication("/tenants/alice/t2", ReplicationVector::msh(0, 0, 1))?;
    cluster.run_replication_round()?; // free alice's memory for clarity
    for t in ["hot", "warm", "cold"] {
        client.write_file(&format!("/tenants/bob/{t}"), &table, ReplicationVector::msh(0, 0, 2))?;
    }
    // Budget fits two tables; promote on the 2nd access (scan-resistant).
    let mut cache = CacheManager::new(client.clone(), 4 << 20, 2);
    for _ in 0..2 {
        cache.on_access("/tenants/bob/hot")?;
        cache.on_access("/tenants/bob/warm")?;
    }
    cache.on_access("/tenants/bob/cold")?; // single scan: not promoted
    println!("  cached after the access pattern: {:?}", cache.cached());
    // A burst on `cold` promotes it and evicts the LRU entry.
    let actions = [cache.on_access("/tenants/bob/cold")?].concat();
    for a in &actions {
        match a {
            CacheAction::Promoted(p) => println!("  promoted {p}"),
            CacheAction::Evicted(p) => println!("  evicted  {p} (LRU)"),
        }
    }
    cluster.run_replication_round()?;
    cluster.run_replication_round()?;
    Ok(())
}
