//! Quickstart: boot an in-process OctopusFS cluster, write a file with an
//! explicit replication vector, inspect where its replicas landed, move it
//! between tiers, and read it back.
//!
//! Run with: `cargo run --release --example quickstart`

use octopusfs::{ClientLocation, Cluster, ClusterConfig, ReplicationVector};

fn main() -> octopusfs::Result<()> {
    // A small cluster: 6 workers across 2 racks, one Memory/SSD/HDD medium
    // each, 64 MB per medium, 1 MB blocks.
    let config = ClusterConfig::test_cluster(6, 64 << 20, 1 << 20);
    let cluster = Cluster::start(config)?;
    let client = cluster.client(ClientLocation::OffCluster);

    // --- Namespace basics -------------------------------------------------
    client.mkdir("/demo")?;

    // --- Controllability: explicit replication vectors (paper §2.3) -------
    // ⟨M,S,H⟩ = ⟨1,0,2⟩: one replica in memory, two on HDDs.
    let rv = ReplicationVector::msh(1, 0, 2);
    let data: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
    client.write_file("/demo/dataset", &data, rv)?;

    println!("wrote /demo/dataset ({} bytes) with vector {rv}", data.len());
    for lb in client.get_file_block_locations("/demo/dataset", 0, u64::MAX)? {
        let tiers: Vec<String> =
            lb.locations.iter().map(|l| format!("{}@{}", l.tier, l.worker)).collect();
        println!("  block {} -> {}", lb.block.id, tiers.join(", "));
    }

    // --- Tier reports (Table 1: getStorageTierReports) ---------------------
    println!("\nstorage tiers:");
    for r in client.get_storage_tier_reports() {
        println!(
            "  {:<6} media={} remaining={:.1}% avg_read={:.0} MB/s",
            r.name,
            r.stats.num_media,
            r.stats.remaining_fraction() * 100.0,
            r.stats.avg_read_thru / (1 << 20) as f64,
        );
    }

    // --- Move between tiers via setReplication (paper §2.3) ----------------
    // ⟨1,0,2⟩ → ⟨0,1,2⟩: drop the memory replica, add an SSD one.
    client.set_replication("/demo/dataset", ReplicationVector::msh(0, 1, 2))?;
    // The change is asynchronous (§5): the replication monitor realizes it.
    cluster.run_replication_round()?;
    cluster.run_replication_round()?;

    println!("\nafter setReplication ⟨0,1,2⟩:");
    for lb in client.get_file_block_locations("/demo/dataset", 0, u64::MAX)? {
        let tiers: Vec<String> = lb.locations.iter().map(|l| l.tier.to_string()).collect();
        println!("  block {} -> tiers {}", lb.block.id, tiers.join(", "));
    }

    // --- Read back (retrieval-policy ordered, checksum verified) -----------
    let read = client.read_file("/demo/dataset")?;
    assert_eq!(read, data);
    println!("\nread back {} bytes, checksums verified ✓", read.len());
    Ok(())
}
