//! Heat-telemetry smoke test: boots a networked cluster, writes two files,
//! re-reads one of them, and asserts that (a) the re-read file's EWMA heat
//! exceeds its untouched sibling's, and (b) the audited placement decision
//! for its first block matches the block map. CI runs this and greps for
//! the `HEAT-SMOKE` verdict lines (see `scripts/ci.sh`).
//!
//! Run with: `cargo run --release --example heat_smoke`

use std::time::{Duration, Instant};

use octopusfs::common::DecisionKind;
use octopusfs::core::net::NetCluster;
use octopusfs::{ClientLocation, ClusterConfig, ReplicationVector};

fn main() -> octopusfs::Result<()> {
    let mut config = ClusterConfig::test_cluster(4, 64 << 20, 1 << 20);
    config.heartbeat_ms = 50;
    let cluster = NetCluster::start(config)?;
    let client = cluster.client(ClientLocation::OffCluster);

    let data: Vec<u8> = (0..1_500_000u32).map(|i| (i % 241) as u8).collect();
    let rv = ReplicationVector::from_replication_factor(2);
    client.write_file("/hot", &data, rv)?;
    client.write_file("/cold", &data, rv)?;
    for _ in 0..10 {
        assert_eq!(client.read_file("/hot")?, data);
    }

    // Touch counts reach the master on worker heartbeats; poll until the
    // re-read file pulls ahead of the untouched one.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (hot, cold) = loop {
        let hot = client.heat("/hot")?;
        let cold = client.heat("/cold")?;
        if hot.score > cold.score || Instant::now() >= deadline {
            break (hot, cold);
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    println!("HEAT-SMOKE hot score={:.4} reads={}", hot.score, hot.cur_reads);
    println!("HEAT-SMOKE cold score={:.4} reads={}", cold.score, cold.cur_reads);
    assert!(
        hot.score > cold.score,
        "re-read file must be hotter: hot={} cold={}",
        hot.score,
        cold.score
    );

    // The audited placement of /hot's first block names exactly the media
    // the block map holds the block on.
    let blocks = client.get_file_block_locations("/hot", 0, u64::MAX)?;
    let first = &blocks[0];
    let events = client.explain_placement(first.block.id)?;
    let placement = events
        .iter()
        .find(|e| e.kind == DecisionKind::Placement)
        .expect("first block has an audited placement decision");
    for loc in &first.locations {
        assert!(
            placement.chosen.iter().any(|c| c.media == loc.media),
            "block-map location {loc:?} missing from audited decision {placement:?}"
        );
    }
    // Each audited round's winner is marked among its candidate scores.
    for round in &placement.rounds {
        if let Some(w) = round.chosen_media {
            assert!(
                round.candidates.iter().any(|c| c.chosen && c.media == w),
                "round winner {w:?} not marked in candidates"
            );
        }
    }
    println!(
        "HEAT-SMOKE placement block={} rounds={} chosen={} ok=true",
        first.block.id,
        placement.rounds.len(),
        placement.chosen.len()
    );
    Ok(())
}
