//! Tracing smoke test: boots a networked cluster, performs a traced write
//! and read, assembles the distributed trace from every node's collector,
//! and dumps the span tree as JSONL. CI runs this and greps the dump for a
//! stitched client→master→worker tree (see `scripts/ci.sh`).
//!
//! Run with: `cargo run --release --example trace_smoke`

use octopusfs::common::TraceSnapshot;
use octopusfs::core::net::NetCluster;
use octopusfs::{ClientLocation, ClusterConfig, ReplicationVector};

fn main() -> octopusfs::Result<()> {
    let mut config = ClusterConfig::test_cluster(4, 64 << 20, 1 << 20);
    config.heartbeat_ms = 50;
    let cluster = NetCluster::start(config)?;
    let client = cluster.client(ClientLocation::OffCluster);

    let data: Vec<u8> = (0..2_000_000u32).map(|i| (i % 241) as u8).collect();
    client.write_file("/smoke", &data, ReplicationVector::from_replication_factor(2))?;
    assert_eq!(client.read_file("/smoke")?, data);

    // Merge the client's collector with the master's and every worker's
    // (over the Trace RPC), then pick the read's assembled trace.
    let snap = client.cluster_trace_snapshot()?;
    let read = snap
        .traces()
        .into_iter()
        .find(|t| t.spans.iter().any(|s| s.name == "client.read_file"))
        .expect("assembled read trace");

    // The tree is stitched across roles: the client root, the master's
    // metadata spans, and worker data-server spans share one trace id.
    assert!(read.spans.iter().any(|s| s.node == "client"), "missing client spans");
    assert!(read.spans.iter().any(|s| s.node == "master"), "missing master spans");
    assert!(read.spans.iter().any(|s| s.node.starts_with("worker-")), "missing worker spans");
    let cp = read.critical_path();
    assert!(cp.total_us > 0);
    eprintln!("{}", cp.render());

    std::fs::create_dir_all("results/traces")?;
    let out = "results/traces/smoke.jsonl";
    std::fs::write(out, TraceSnapshot { spans: snap.spans.clone() }.to_jsonl())?;
    println!("dumped {} spans ({} traces) to {out}", snap.spans.len(), snap.traces().len());
    Ok(())
}
