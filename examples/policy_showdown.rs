//! Placement-policy showdown on the simulated paper cluster: writes the
//! same DFSIO workload under the MOOP policy and the HDFS baseline and
//! prints where the data went and how fast it got there — a miniature of
//! the paper's §7.2 experiment.
//!
//! Run with: `cargo run --release --example policy_showdown`

use octopusfs::common::config::PlacementPolicyKind;
use octopusfs::common::GB;
use octopusfs::{ClientLocation, ClusterConfig, ReplicationVector, SimCluster, WorkerId};

fn run_policy(kind: PlacementPolicyKind) -> octopusfs::Result<()> {
    let mut config = ClusterConfig::paper_cluster();
    config.policy.placement = kind;
    config.policy.memory_placement_enabled = true;
    let mut sim = SimCluster::new(config)?;

    // 27 writers, 8 GB total, U = 3.
    sim.master().mkdir("/dfsio")?;
    let per_task = 8 * GB / 27;
    for i in 0..27u32 {
        sim.submit_write(
            &format!("/dfsio/part-{i}"),
            per_task,
            ReplicationVector::from_replication_factor(3),
            ClientLocation::OnWorker(WorkerId(i % 9)),
        )?;
    }
    let reports = sim.run_to_completion();
    let mean_mbps: f64 =
        reports.iter().map(|r| r.throughput_mbps()).sum::<f64>() / reports.len() as f64;

    println!("policy: {}", sim.master().placement_policy_name());
    println!("  mean per-task write throughput: {mean_mbps:.1} MB/s");
    println!("  wall (virtual) time: {:.1}s", sim.now().as_secs_f64());
    for r in sim.master().get_storage_tier_reports() {
        let used = r.stats.capacity - r.stats.remaining;
        println!(
            "  {:<6} holds {:>6.2} GB ({:.1}% of the tier)",
            r.name,
            used as f64 / GB as f64,
            (1.0 - r.stats.remaining_fraction()) * 100.0
        );
    }
    println!();
    Ok(())
}

fn main() -> octopusfs::Result<()> {
    println!("DFSIO write, 8 GB, d=27, replication 3 — simulated paper cluster\n");
    for kind in [
        PlacementPolicyKind::Moop,
        PlacementPolicyKind::RuleBased,
        PlacementPolicyKind::HdfsHddOnly,
        PlacementPolicyKind::HdfsTierBlind,
    ] {
        run_policy(kind)?;
    }
    println!("note: MOOP spreads load across all three tiers and finishes fastest;");
    println!("the HDFS baselines leave the memory tier idle entirely.");
    Ok(())
}
