//! An iterative analytics pipeline with tier hints (paper §6, "Workload
//! scheduling" + §7.6): a Pegasus-style graph workload runs over the
//! simulated cluster with and without the two controllability
//! optimizations — prefetching the reused dataset into memory, and
//! pinning one copy of short-lived intermediate data in memory.
//!
//! Run with: `cargo run --release --example analytics_pipeline`

use octopusfs::compute::{pegasus_workloads, run_pegasus, PegasusMode};

fn main() {
    let workload =
        pegasus_workloads().into_iter().find(|w| w.name == "HADI").expect("HADI is defined");
    println!(
        "Pegasus {} — {:.1} GB graph, {} iterations, ~{:.0} GB intermediate/iter\n",
        workload.name,
        workload.graph_gb,
        workload.iterations,
        workload.interm_bytes() as f64 / (1u64 << 30) as f64,
    );

    let base = run_pegasus(&workload, PegasusMode::Hdfs).unwrap();
    println!("{:<22} {:>8.1}s  (baseline)", "HDFS", base);
    for mode in [
        PegasusMode::Octopus,
        PegasusMode::OctopusPrefetch,
        PegasusMode::OctopusInterm,
        PegasusMode::OctopusBoth,
    ] {
        let t = run_pegasus(&workload, mode).unwrap();
        println!(
            "{:<22} {:>8.1}s  ({:.0}% faster than HDFS)",
            mode.label(),
            t,
            (1.0 - t / base) * 100.0
        );
    }
    println!("\nthe intermediate-data hint dominates for HADI: ~18 GB of short-lived");
    println!("data per iteration lands in (and is consumed from) the memory tier.");
}
