#!/usr/bin/env bash
# The full CI gate, runnable locally: build, tests, formatting, lints.
# Everything must pass before a change merges.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI green."
