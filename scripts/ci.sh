#!/usr/bin/env bash
# The full CI gate, runnable locally: build, tests, formatting, lints.
# Everything must pass before a change merges.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> metrics smoke test"
# Boot a networked cluster, do one write/read, and check the merged
# metrics snapshot exposes the expected series from every layer.
smoke_out=$(cargo run --release --quiet --example metrics_smoke)
for series in master_requests_total master_live_workers \
    worker_requests_total worker_write_bytes_total worker_read_bytes_total \
    rpc_client_requests_total rpc_client_request_us_bucket \
    client_write_bytes_total client_read_bytes_total; do
    if ! grep -q "^${series}" <<<"$smoke_out"; then
        echo "metrics smoke: missing series ${series}" >&2
        exit 1
    fi
done
echo "metrics smoke: all expected series present"

echo "==> trace smoke test"
# Boot a networked cluster, run a traced write/read, and check the JSONL
# dump stitches one client→master→worker span tree under a single trace id.
cargo run --release --quiet --example trace_smoke >/dev/null
dump=results/traces/smoke.jsonl
if [ ! -s "$dump" ]; then
    echo "trace smoke: missing or empty ${dump}" >&2
    exit 1
fi
read_trace=$(grep '"name":"client.read_file"' "$dump" | head -1 |
    sed 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/')
if [ -z "$read_trace" ]; then
    echo "trace smoke: no client.read_file root span in ${dump}" >&2
    exit 1
fi
for node in '"node":"client"' '"node":"master"' '"node":"worker-'; do
    if ! grep "\"trace_id\":\"${read_trace}\"" "$dump" | grep -q "$node"; then
        echo "trace smoke: trace ${read_trace} has no span with ${node}" >&2
        exit 1
    fi
done
echo "trace smoke: stitched client→master→worker tree under trace ${read_trace}"

echo "==> parallel I/O stress smoke"
# The windowed-data-path concurrency suite, then the quick window sweep on
# a real TCP cluster. The GATE line asserts window=4 beats the serial
# client; results/parallel_io.json is the machine-readable artifact CI
# uploads and diffs across runs.
cargo test --release -q -p octopus-core --test parallel_io
pio_out=$(cargo run --release --quiet -p octopus-bench --bin exp_parallel_io -- --quick)
if ! grep -q "^GATE parallel_io .* pass=true" <<<"$pio_out"; then
    echo "parallel I/O smoke: window sweep gate failed" >&2
    grep "^GATE" <<<"$pio_out" >&2 || true
    exit 1
fi
if [ ! -s results/parallel_io.json ]; then
    echo "parallel I/O smoke: missing results/parallel_io.json" >&2
    exit 1
fi
grep "^GATE" <<<"$pio_out"

echo "==> aggregate I/O scaling smoke"
# The multiplexed-transport suite (interleaved responses, in-flight caps,
# idle reaping, pipeline tail-kill), then the quick client sweep on a real
# TCP cluster. The GATE line asserts 64 concurrent clients achieve at
# least 3x the single-client aggregate; results/aggregate_io.json is the
# machine-readable artifact CI uploads and diffs across runs.
cargo test --release -q -p octopus-core --test multiplex
agg_out=$(cargo run --release --quiet -p octopus-bench --bin exp_aggregate_io -- --quick)
if ! grep -q "^GATE aggregate_io .* pass=true" <<<"$agg_out"; then
    echo "aggregate I/O smoke: client sweep gate failed" >&2
    grep "^GATE" <<<"$agg_out" >&2 || true
    exit 1
fi
if [ ! -s results/aggregate_io.json ]; then
    echo "aggregate I/O smoke: missing results/aggregate_io.json" >&2
    exit 1
fi
grep "^GATE" <<<"$agg_out"

echo "==> heat telemetry smoke"
# The heat/audit/series suite on a real TCP cluster, then the example
# (worker touch rings → heartbeat piggyback → master EWMA, plus the
# audited placement of a block cross-checked against the block map),
# then the quick hot/cold separation sweep. The GATE line asserts the
# re-read file scores above its untouched sibling in ≥95% of epochs;
# results/heat.json is the machine-readable artifact CI uploads.
cargo test --release -q -p octopus-core --test telemetry
heat_out=$(cargo run --release --quiet --example heat_smoke)
for line in "^HEAT-SMOKE hot " "^HEAT-SMOKE cold " "^HEAT-SMOKE placement .* ok=true"; do
    if ! grep -q "$line" <<<"$heat_out"; then
        echo "heat smoke: missing line matching ${line}" >&2
        exit 1
    fi
done
heat_sweep=$(cargo run --release --quiet -p octopus-bench --bin exp_heat -- --quick)
if ! grep -q "^GATE heat .* pass=true" <<<"$heat_sweep"; then
    echo "heat smoke: hot/cold separation gate failed" >&2
    grep "^GATE" <<<"$heat_sweep" >&2 || true
    exit 1
fi
if [ ! -s results/heat.json ]; then
    echo "heat smoke: missing results/heat.json" >&2
    exit 1
fi
grep "^GATE" <<<"$heat_sweep"

echo "==> auto-tiering smoke"
# The migration robustness suite on a real TCP cluster (promote/demote
# rounds, setrep downgrade convergence, bandwidth-cap pacing, worker
# death on both sides of a copy, fault-injected abort/retry, foreground
# p99 under a live autotier daemon), then the quick shifting-working-set
# sweep. The GATE line asserts auto-tiering beats static placement
# ≥1.3x end-to-end with every working-set file promoted;
# results/autotier.json is the machine-readable artifact CI uploads
# and diffs across runs.
cargo test --release -q -p octopus-core --test autotier
autotier_out=$(cargo run --release --quiet -p octopus-bench --bin exp_autotier -- --quick)
if ! grep -q "^GATE autotier .* pass=true" <<<"$autotier_out"; then
    echo "auto-tiering smoke: shifting-working-set gate failed" >&2
    grep "^GATE" <<<"$autotier_out" >&2 || true
    exit 1
fi
if [ ! -s results/autotier.json ]; then
    echo "auto-tiering smoke: missing results/autotier.json" >&2
    exit 1
fi
grep "^GATE" <<<"$autotier_out"

echo "==> metadata path smoke"
# The sharded-master torture suites first: seeded multi-threaded
# create/rename/delete/stat/list/set_replication mixes with full
# invariant audits (replay equivalence, namespace↔blockmap bijection,
# contiguous offsets, no unreachable inodes), the cross-shard rename
# deadlock canary, the rename-vs-delete races, the RPC-level
# shard-crossing e2e, and the group-commit crash-replay property
# (byte-level log truncations replay into serially-reachable states).
cargo test --release -q -p octopus-master --test shard_stress
cargo test --release -q -p octopus-core --test shard_e2e
cargo test --release -q --test properties group_commit_crash_replay
# Then the lockstat unit suite (contended/uncontended wait accounting)
# and the quick 100k-file metadata microbenchmark against an in-process
# master, including the 1/4/8 shard sweep. The GATE line asserts a
# minimum aggregate ops/sec and that ≥90% of measured op time is
# attributed to the named segments (lock wait, work under lock,
# edit-log append); results/metadata.json is the machine-readable
# artifact CI uploads and diffs across runs.
cargo test --release -q -p octopus-common lockstat
meta_out=$(cargo run --release --quiet -p octopus-bench --bin exp_metadata -- --quick)
if ! grep -q "^GATE metadata .* pass=true" <<<"$meta_out"; then
    echo "metadata smoke: throughput/attribution gate failed" >&2
    grep "^GATE" <<<"$meta_out" >&2 || true
    exit 1
fi
if [ ! -s results/metadata.json ]; then
    echo "metadata smoke: missing results/metadata.json" >&2
    exit 1
fi
grep "^GATE" <<<"$meta_out"

echo "==> operator status smoke"
# Boot the real daemons (one master, two workers) and check that
# `octofs-remote status` renders the live cluster: every tier line must
# report a non-zero capacity once the workers have heartbeated in.
status_dir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$status_dir"' EXIT
./target/release/octofs-master --listen 127.0.0.1:0 --workers 2 \
    --heartbeat-ms 100 >"$status_dir/master.log" 2>&1 &
for _ in $(seq 50); do
    master_addr=$(sed -n 's/^octofs-master listening on //p' "$status_dir/master.log")
    [ -n "$master_addr" ] && break
    sleep 0.1
done
if [ -z "${master_addr:-}" ]; then
    echo "status smoke: master did not report a listen address" >&2
    cat "$status_dir/master.log" >&2
    exit 1
fi
for w in 0 1; do
    ./target/release/octofs-worker --master "$master_addr" --id "$w" \
        --workers 2 --heartbeat-ms 100 >"$status_dir/worker$w.log" 2>&1 &
done
# Tier reports materialize as worker heartbeats register media, so poll
# until at least one non-zero-capacity tier line and a live worker show.
status_out=""
for _ in $(seq 50); do
    status_out=$(./target/release/octofs-remote --master "$master_addr" status || true)
    if grep -q "^tier " <<<"$status_out" &&
        ! grep "^tier " <<<"$status_out" | grep -q "capacity=0 B" &&
        grep -q "^worker .* live " <<<"$status_out"; then
        break
    fi
    sleep 0.2
done
if ! grep -q "^tier " <<<"$status_out"; then
    echo "status smoke: no tier lines in octofs-remote status output" >&2
    printf '%s\n' "$status_out" >&2
    exit 1
fi
if grep "^tier " <<<"$status_out" | grep -q "capacity=0 B"; then
    echo "status smoke: a tier reports zero capacity" >&2
    printf '%s\n' "$status_out" >&2
    exit 1
fi
echo "status smoke: $(grep -c "^tier " <<<"$status_out") tiers with non-zero capacity"

# The contention observatory against the same live daemons: after one
# metadata op, `status` must render per-op latency lines and `perf` must
# rank ops and tabulate master lock wait/hold statistics.
./target/release/octofs-remote --master "$master_addr" mkdir /ci-perf
status_out=$(./target/release/octofs-remote --master "$master_addr" status)
if ! grep -q "^meta mkdir .*p99=" <<<"$status_out"; then
    echo "status smoke: no per-op metadata line for mkdir" >&2
    printf '%s\n' "$status_out" >&2
    exit 1
fi
perf_out=$(./target/release/octofs-remote --master "$master_addr" perf)
if ! grep -q "^mkdir " <<<"$perf_out"; then
    echo "perf smoke: mkdir missing from the op ranking" >&2
    printf '%s\n' "$perf_out" >&2
    exit 1
fi
if ! grep -q "^master.shard0 " <<<"$perf_out"; then
    echo "perf smoke: master.shard0 missing from the lock table" >&2
    printf '%s\n' "$perf_out" >&2
    exit 1
fi
echo "perf smoke: per-op ranking and lock table rendered"

echo "CI green."
