//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` over
//! `std::sync`, with parking_lot's panic-free (poison-ignoring) guard
//! acquisition semantics.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn rwlock_try_variants() {
        let rw = RwLock::new(0u32);
        {
            let _r = rw.read();
            assert!(rw.try_read().is_some());
            assert!(rw.try_write().is_none());
        }
        {
            let mut w = rw.try_write().expect("uncontended try_write");
            *w += 1;
        }
        assert_eq!(*rw.read(), 1);
    }
}
