//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope` with crossbeam's closure signature (the spawned
//! closure receives the scope, enabling nested spawns).

pub mod thread {
    //! Scoped thread spawning.

    /// A scope handle passed to spawned closures.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam, a panicking child propagates the panic
    /// here (std semantics) instead of surfacing as `Err` — equivalent
    /// for tests that `.unwrap()` the result.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_join_and_share() {
        let n = AtomicU32::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|scope| {
                    n.fetch_add(1, Ordering::SeqCst);
                    scope.spawn(|_| {
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }
}
