//! Offline stand-in for `rand` 0.9: a xoshiro256**-based `StdRng` behind
//! the `RngCore`/`Rng`/`SeedableRng` traits, plus the slice helpers
//! (`choose`, `shuffle`) used by the placement and retrieval policies.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable from the uniform "standard" distribution.
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in a half-open integer range.
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard RNG: xoshiro256** seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state would be a fixed point; splitmix64 never yields
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    //! Named RNG types.
    pub use super::StdRng;
}

pub mod seq {
    //! Random selection from and reordering of slices.
    use super::RngCore;

    /// Uniform selection of one element.
    pub trait IndexedRandom<T> {
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [1, 2, 3, 4];
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let mut w = [1, 2, 3, 4, 5, 6, 7, 8];
        let orig = w;
        w.shuffle(&mut rng);
        let mut sorted = w;
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn random_types() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.random();
        let b: bool = rng.random();
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
        let _ = b;
        let r = rng.random_range(5..10);
        assert!((5..10).contains(&r));
    }
}
