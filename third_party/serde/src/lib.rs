//! Offline stand-in for `serde`: marker traits with blanket impls. The
//! workspace derives `Serialize`/`Deserialize` to document intent but
//! never actually serializes (there is no format crate in the tree), so
//! marker semantics are sufficient.

/// Marker for serializable types. Blanket-implemented for everything.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for everything.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring serde's owned-deserialization helper trait.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
