//! Offline stand-in for `serde_derive`: the `Serialize`/`Deserialize`
//! derives expand to nothing because the stand-in `serde` traits are
//! blanket-implemented for every type.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (the trait has a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (the trait has a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
