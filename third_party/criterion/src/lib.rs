//! Offline stand-in for `criterion`: a timer-only benchmark harness with
//! the `Criterion`/`BenchmarkGroup`/`Bencher` surface the workspace's
//! benches use. No statistics, no plots — median-of-samples reporting.

use std::time::{Duration, Instant};

/// Re-export mirroring criterion's `black_box`.
pub use std::hint::black_box;

/// Declared throughput of a benchmark, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f` over several samples, recording per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for samples of roughly 5 ms each.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.iters_per_sample = iters as u64;
        for _ in 0..self.samples.capacity() {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        if per_iter.is_empty() {
            return 0.0;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.median_ns();
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if ns > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / (ns * 1e-9) / (1 << 20) as f64)
        }
        Some(Throughput::Elements(e)) if ns > 0.0 => {
            format!("  {:>10.1} Melem/s", e as f64 / (ns * 1e-9) / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {ns:>12.1} ns/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::with_capacity(10), iters_per_sample: 1 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::with_capacity(10), iters_per_sample: 1 };
        f(&mut b);
        report(&id.to_string(), &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
