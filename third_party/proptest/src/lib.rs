//! Offline stand-in for `proptest`: a deterministic mini property-testing
//! harness covering the surface this workspace uses — `proptest!`,
//! `prop_assert*`, `prop_oneof!`, `any`, integer/float range strategies,
//! `prop_map`, tuple strategies, `collection::vec`, `option::of`, and a
//! `[class]{m,n}` subset of the string-regex strategy. No shrinking: a
//! failing case reports its case number; seeds are derived from the test
//! name, so failures reproduce exactly on re-run.

use std::fmt;

/// Deterministic RNG driving all value generation (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fixed by the test's name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recoverable test-case failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Harness configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `&str` strategies: the `[class]{m,n}` subset of proptest's regex
/// support (plus plain literals, generated verbatim).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[chars]{m,n}` into (alphabet, m, n); `a-z`-style spans expand,
/// `-` at either end of the class is literal.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi || class.is_empty() {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if class[i] == '-' || i + 2 >= class.len() || class[i + 1] != '-' {
            alphabet.push(class[i]);
            i += 1;
        } else {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        }
    }
    Some((alphabet, lo, hi))
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Accepted element counts for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with a length drawn from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Weighted toward Some, like upstream.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` or a `value`-generated `Some`, biased 3:1 toward `Some`.
    pub fn of<S: Strategy>(value: S) -> OptionStrategy<S> {
        OptionStrategy(value)
    }
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Uniform choice among the listed strategies (all with one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 3u8..7, pair in (0u32..4, 10i64..12)) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(pair.0 < 4 && (10..12).contains(&pair.1));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0u8..4, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn string_class(s in "[a-c0-1_.-]{2,6}") {
            prop_assert!((2..=6).contains(&s.len()));
            prop_assert!(s.chars().all(|c| "abc01_.-".contains(c)));
        }

        #[test]
        fn oneof_and_option(
            x in prop_oneof![0u8..1, 10u8..11],
            o in crate::option::of(5u8..6),
        ) {
            prop_assert!(x == 0 || x == 10);
            prop_assert!(o.is_none() || o == Some(5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn configured_case_count(bits in any::<u64>()) {
            let mapped = (0u64..2).prop_map(move |b| b + (bits & 1)).boxed();
            let mut rng = TestRng::for_test("inner");
            prop_assert!(Strategy::generate(&mapped, &mut rng) <= 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
