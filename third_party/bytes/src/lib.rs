//! Offline stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer backed by `Arc<[u8]>`. Only the API surface used by this
//! workspace is provided.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Wraps static data (copied here; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Returns a new `Bytes` over the given subrange.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes(Arc::from(&self.0[range]))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_vec(), b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.slice(1..3).to_vec(), b"el");
    }
}
