//! Offline stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer backed by `Arc<[u8]>`. Only the API surface used by this
//! workspace is provided.
//!
//! Like the real crate, [`Bytes::slice`] is zero-copy: the sub-range view
//! shares the parent's allocation (an `Arc` clone plus two offsets), so
//! a block payload sliced out of a received RPC frame never copies the
//! block bytes.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. A `Bytes` is a view
/// `[start, end)` into a shared allocation; clones and sub-slices share
/// the allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Wraps static data (copied here; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new `Bytes` over the given subrange **without copying**:
    /// the view shares this buffer's allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of bounds of Bytes of length {}",
            range.start,
            range.end,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

// Equality/ordering/hash compare contents, not allocation identity: two
// views over different allocations with the same bytes are equal.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_vec(), b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.slice(1..3).to_vec(), b"el");
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![7u8; 1024]);
        let s = b.slice(100..900);
        assert_eq!(s.len(), 800);
        assert!(std::ptr::eq(s.as_slice().as_ptr(), &b.as_slice()[100]));
        // Nested slices keep sharing.
        let s2 = s.slice(0..10);
        assert!(std::ptr::eq(s2.as_slice().as_ptr(), &b.as_slice()[100]));
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::copy_from_slice(b"abcd").slice(1..3);
        let b = Bytes::copy_from_slice(b"xbcx").slice(1..3);
        assert_eq!(a, b);
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
