//! Statistics reported by workers and aggregated at the master.
//!
//! Workers maintain, per storage medium, the remaining/total capacity, the
//! number of active I/O connections, and the sustained write/read throughput
//! measured by the startup probe; they report these to the master in
//! heartbeats (paper §3.2). The master averages throughputs per tier and
//! exposes [`StorageTierReport`]s through the client API (§2.3, Table 1).

use serde::{Deserialize, Serialize};

use crate::ids::{MediaId, WorkerId};
use crate::tier::TierId;
use crate::topology::RackId;

/// Per-medium statistics: the policy inputs of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaStats {
    /// The medium.
    pub media: MediaId,
    /// The worker hosting it (`Worker[m]`).
    pub worker: WorkerId,
    /// The rack of that worker.
    pub rack: RackId,
    /// The tier it belongs to (`Tier[m]`).
    pub tier: TierId,
    /// Total capacity in bytes (`Cap[m]`).
    pub capacity: u64,
    /// Remaining capacity in bytes (`Rem[m]`).
    pub remaining: u64,
    /// Active I/O connections to the medium (`NrConn[m]`).
    pub nr_conn: u32,
    /// Sustained write throughput in bytes/s (`WThru[m]`).
    pub write_thru: f64,
    /// Sustained read throughput in bytes/s (`RThru[m]`).
    pub read_thru: f64,
}

impl MediaStats {
    /// Remaining-capacity fraction in `[0, 1]` (`Rem[m] / Cap[m]`).
    pub fn remaining_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.remaining as f64 / self.capacity as f64
        }
    }

    /// Whether a block of `block_size` bytes fits (the feasibility
    /// constraint `Rem[m] - blockSize >= 0` of §3.2).
    pub fn fits(&self, block_size: u64) -> bool {
        self.remaining >= block_size
    }
}

/// Per-worker statistics used by the retrieval policy (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// The worker.
    pub worker: WorkerId,
    /// Its rack.
    pub rack: RackId,
    /// Average network transfer rate from this worker in bytes/s
    /// (`NetThru[W]`).
    pub net_thru: f64,
    /// Active network connections to the worker (`NrConn[W]`).
    pub nr_conn: u32,
    /// Whether the worker is currently live (heartbeats arriving).
    pub live: bool,
}

/// Aggregated per-tier statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierStats {
    /// The tier.
    pub tier: TierId,
    /// Number of media in the tier across the cluster.
    pub num_media: u32,
    /// Sum of capacities (bytes).
    pub capacity: u64,
    /// Sum of remaining capacities (bytes).
    pub remaining: u64,
    /// Mean write throughput across the tier's media (bytes/s).
    pub avg_write_thru: f64,
    /// Mean read throughput across the tier's media (bytes/s).
    pub avg_read_thru: f64,
}

impl TierStats {
    /// Aggregates media statistics into a tier summary. Returns `None` when
    /// no media belong to the tier.
    pub fn aggregate(tier: TierId, media: &[MediaStats]) -> Option<TierStats> {
        let in_tier: Vec<&MediaStats> = media.iter().filter(|m| m.tier == tier).collect();
        if in_tier.is_empty() {
            return None;
        }
        let n = in_tier.len() as f64;
        Some(TierStats {
            tier,
            num_media: in_tier.len() as u32,
            capacity: in_tier.iter().map(|m| m.capacity).sum(),
            remaining: in_tier.iter().map(|m| m.remaining).sum(),
            avg_write_thru: in_tier.iter().map(|m| m.write_thru).sum::<f64>() / n,
            avg_read_thru: in_tier.iter().map(|m| m.read_thru).sum::<f64>() / n,
        })
    }

    /// Remaining-capacity fraction for the whole tier.
    pub fn remaining_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.remaining as f64 / self.capacity as f64
        }
    }
}

/// The `getStorageTierReports` API payload (paper Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageTierReport {
    /// Tier name ("Memory", "SSD", ...).
    pub name: String,
    /// Aggregated statistics.
    pub stats: TierStats,
    /// Whether the tier's media are volatile.
    pub volatile: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn media(id: u32, tier: u8, cap: u64, rem: u64) -> MediaStats {
        MediaStats {
            media: MediaId(id),
            worker: WorkerId(id),
            rack: RackId(0),
            tier: TierId(tier),
            capacity: cap,
            remaining: rem,
            nr_conn: 0,
            write_thru: 100.0,
            read_thru: 200.0,
        }
    }

    #[test]
    fn remaining_fraction() {
        let m = media(0, 0, 100, 25);
        assert!((m.remaining_fraction() - 0.25).abs() < 1e-12);
        let z = media(0, 0, 0, 0);
        assert_eq!(z.remaining_fraction(), 0.0);
    }

    #[test]
    fn fits_checks_block_size() {
        let m = media(0, 0, 100, 64);
        assert!(m.fits(64));
        assert!(!m.fits(65));
    }

    #[test]
    fn tier_aggregation() {
        let media = vec![media(0, 1, 100, 50), media(1, 1, 300, 100), media(2, 2, 10, 10)];
        let t = TierStats::aggregate(TierId(1), &media).unwrap();
        assert_eq!(t.num_media, 2);
        assert_eq!(t.capacity, 400);
        assert_eq!(t.remaining, 150);
        assert!((t.remaining_fraction() - 0.375).abs() < 1e-12);
        assert!(TierStats::aggregate(TierId(5), &media).is_none());
    }
}
