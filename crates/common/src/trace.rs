//! Distributed request tracing: deterministic ids, lock-light per-process
//! span collection, wire-level context propagation, and critical-path
//! analysis.
//!
//! The metrics layer (`crate::metrics`) answers *aggregate* questions —
//! how many requests, how slow on average. It cannot answer "why was
//! *this* read slow?", because that requires following one request across
//! client → master → worker → media. This module is that substrate:
//!
//! - [`TraceId`]/[`SpanId`]: 64-bit ids from a process-seeded splitmix64
//!   walk (no RNG dependency, no coordination).
//! - [`TraceCollector`]: a per-process (per-component, in the in-process
//!   test clusters) ring buffer of finished [`SpanRecord`]s, in the same
//!   spirit as `MetricsRegistry` — no external deps, bounded memory, a
//!   mutex taken only when a span *finishes*, never per-annotation on a
//!   lock-free fast path.
//! - [`SpanGuard`]: an RAII span. Creating one pushes its context onto a
//!   thread-local stack (so nested spans link automatically and the
//!   structured logger can stamp `trace=` fields); dropping it records
//!   the finished span into its collector.
//! - **Wire envelope**: RPC request payloads are wrapped in a small
//!   versioned envelope ([`wrap_envelope`]/[`unwrap_envelope`]) carrying
//!   `{trace_id, parent_span_id, flags}`. Old-format frames (no envelope)
//!   still decode — the magic byte `0xE7` is not a valid request tag —
//!   so mixed-version deployments interoperate.
//! - [`Trace`] assembly and [`CriticalPath`]: spans merged from every
//!   node's collector are grouped by trace id and the root request's
//!   wall time is attributed to an exact partition of segments (child
//!   spans clipped to the parent interval; uncovered time becomes the
//!   parent's `(self)` segment — retry backoff gaps show up here).
//!
//! # Span naming scheme
//!
//! `<component>.<operation>`: `client.write_file`, `client.read_block`,
//! `rpc.ReadBlock` (one per transport attempt, annotated `attempt=N`),
//! `master.AddBlock`, `worker.WriteBlock`, `monitor.copy`,
//! `cache.promote`. Annotations are free-form `key=value` pairs (tier,
//! block id, bytes, retry number, replica index).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::wire::{Wire, WireReader};
use crate::{FsError, Result};

/// Identifies one end-to-end request across every node it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Wire for TraceId {
    fn put(&self, buf: &mut Vec<u8>) {
        self.0.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(TraceId(Wire::get(r)?))
    }
}

impl Wire for SpanId {
    fn put(&self, buf: &mut Vec<u8>) {
        self.0.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(SpanId(Wire::get(r)?))
    }
}

/// The trace is sampled (spans are recorded). Reserved bits are ignored
/// by v1 decoders.
pub const FLAG_SAMPLED: u8 = 1;

/// The context that crosses process boundaries: which trace a request
/// belongs to and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request's trace.
    pub trace_id: TraceId,
    /// The span at the caller that caused this request.
    pub parent_span: SpanId,
    /// Bit flags ([`FLAG_SAMPLED`]).
    pub flags: u8,
}

impl Wire for TraceContext {
    fn put(&self, buf: &mut Vec<u8>) {
        self.trace_id.put(buf);
        self.parent_span.put(buf);
        self.flags.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(TraceContext {
            trace_id: Wire::get(r)?,
            parent_span: Wire::get(r)?,
            flags: Wire::get(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Envelope: versioned trace-context prefix on RPC request payloads.
// ---------------------------------------------------------------------------

/// First byte of an enveloped payload. Chosen outside the range of valid
/// request tags (small integers) and result status bytes (0/1), so a
/// receiver can distinguish enveloped from bare payloads.
pub const ENVELOPE_MAGIC: u8 = 0xE7;

/// Current envelope version.
pub const ENVELOPE_V1: u8 = 1;

/// Wraps a request payload in a v1 trace envelope.
pub fn wrap_envelope(ctx: &TraceContext, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + 17 + payload.len());
    buf.push(ENVELOPE_MAGIC);
    buf.push(ENVELOPE_V1);
    ctx.put(&mut buf);
    buf.extend_from_slice(payload);
    buf
}

/// Splits a received payload into its optional trace context and the
/// bare request bytes. Payloads from older senders (no envelope) pass
/// through unchanged with `None`; an envelope with an unknown version is
/// an error (its layout is unknowable).
pub fn unwrap_envelope(frame: &[u8]) -> Result<(Option<TraceContext>, &[u8])> {
    if frame.first() != Some(&ENVELOPE_MAGIC) {
        return Ok((None, frame));
    }
    if frame.len() < 2 {
        return Err(FsError::Io("truncated trace envelope".into()));
    }
    let version = frame[1];
    if version != ENVELOPE_V1 {
        return Err(FsError::Io(format!("unsupported trace envelope version {version}")));
    }
    let mut r = WireReader::new(&frame[2..]);
    let ctx = TraceContext::get(&mut r)?;
    let consumed = 2 + 17;
    Ok((Some(ctx), &frame[consumed..]))
}

// ---------------------------------------------------------------------------
// Id generation: a process-seeded splitmix64 walk. Deterministic given the
// seed, collision-free within a process, no RNG dependency.
// ---------------------------------------------------------------------------

static ID_STATE: LazyLock<AtomicU64> = LazyLock::new(|| {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    let seed = (std::process::id() as u64) << 32 ^ nanos as u64 ^ 0x9E37_79B9_7F4A_7C15;
    AtomicU64::new(seed)
});

fn fresh_id() -> u64 {
    let mut z = ID_STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.max(1) // 0 is reserved for "no parent"
}

/// Wall-clock microseconds since the Unix epoch (spans from different
/// processes on one machine order correctly; durations use `Instant`).
fn wall_now_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Span records and the collector.
// ---------------------------------------------------------------------------

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// Parent span id; `SpanId(0)` means root.
    pub parent_span: SpanId,
    /// Span name (`<component>.<operation>`).
    pub name: String,
    /// Identity of the recording node (`client`, `master`, `worker-3`).
    pub node: String,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form `key=value` annotations (tier, block, bytes, attempt).
    pub annotations: Vec<(String, String)>,
}

impl SpanRecord {
    /// Exclusive end timestamp.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// The value of one annotation key, if present.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// One JSON object describing this span (hand-rolled; no serde dep).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"trace_id\":\"{}\",\"span_id\":\"{}\",\"parent_span\":\"{}\",\"name\":\"{}\",\
             \"node\":\"{}\",\"start_us\":{},\"dur_us\":{}",
            self.trace_id,
            self.span_id,
            self.parent_span,
            json_escape(&self.name),
            json_escape(&self.node),
            self.start_us,
            self.dur_us,
        );
        out.push_str(",\"annotations\":{");
        for (i, (k, v)) in self.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

macro_rules! wire_struct {
    ($t:ty, $($field:ident),+) => {
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                $( self.$field.put(buf); )+
            }
            fn get(r: &mut WireReader<'_>) -> Result<Self> {
                Ok(Self { $( $field: Wire::get(r)?, )+ })
            }
        }
    };
}

wire_struct!(SpanRecord, trace_id, span_id, parent_span, name, node, start_us, dur_us, annotations);

/// Default ring-buffer capacity of a [`TraceCollector`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

struct CollectorInner {
    node: String,
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

/// A bounded buffer of finished spans for one component. Cheap to clone
/// (`Arc`); the internal mutex is taken only when a span finishes or a
/// snapshot is taken, never on annotation or context reads.
#[derive(Clone)]
pub struct TraceCollector(Arc<CollectorInner>);

impl TraceCollector {
    /// A collector identified as `node` with the default capacity.
    pub fn new(node: impl Into<String>) -> Self {
        Self::with_capacity(node, DEFAULT_TRACE_CAPACITY)
    }

    /// A collector with an explicit ring capacity (≥1).
    pub fn with_capacity(node: impl Into<String>, capacity: usize) -> Self {
        TraceCollector(Arc::new(CollectorInner {
            node: node.into(),
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }))
    }

    /// The node identity stamped on recorded spans.
    pub fn node(&self) -> &str {
        &self.0.node
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.0.spans.lock().unwrap().len()
    }

    /// Whether no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted by the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Starts a new root span (fresh trace id) recording into this
    /// collector.
    pub fn root(&self, name: impl Into<String>) -> SpanGuard {
        let trace_id = TraceId(fresh_id());
        self.start(name.into(), trace_id, SpanId(0))
    }

    /// Starts a span continuing a propagated remote context (server side
    /// of an RPC).
    pub fn child_of(&self, name: impl Into<String>, ctx: TraceContext) -> SpanGuard {
        self.start(name.into(), ctx.trace_id, ctx.parent_span)
    }

    /// Starts a child of the thread's current span when one is active,
    /// or a fresh root otherwise. Records into this collector either way.
    pub fn root_or_child(&self, name: impl Into<String>) -> SpanGuard {
        match current_context() {
            Some(ctx) => self.child_of(name, ctx),
            None => self.root(name),
        }
    }

    fn start(&self, name: String, trace_id: TraceId, parent: SpanId) -> SpanGuard {
        let span_id = SpanId(fresh_id());
        STACK.with(|s| {
            s.borrow_mut().push(ActiveSpan { trace_id, span_id, collector: self.clone() })
        });
        SpanGuard {
            rec: Some(SpanRecord {
                trace_id,
                span_id,
                parent_span: parent,
                name,
                node: self.0.node.clone(),
                start_us: wall_now_us(),
                dur_us: 0,
                annotations: Vec::new(),
            }),
            started: Instant::now(),
        }
    }

    fn record(&self, rec: SpanRecord) {
        let mut spans = self.0.spans.lock().unwrap();
        if spans.len() >= self.0.capacity {
            spans.pop_front();
            self.0.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(rec);
    }

    /// A copy of every buffered span.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot { spans: self.0.spans.lock().unwrap().iter().cloned().collect() }
    }

    /// Removes and returns every buffered span.
    pub fn drain(&self) -> TraceSnapshot {
        TraceSnapshot { spans: self.0.spans.lock().unwrap().drain(..).collect() }
    }

    /// Drops all buffered spans.
    pub fn clear(&self) {
        self.0.spans.lock().unwrap().clear();
    }
}

struct ActiveSpan {
    trace_id: TraceId,
    span_id: SpanId,
    collector: TraceCollector,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// The context a new outbound request should carry: the thread's current
/// trace and innermost active span.
pub fn current_context() -> Option<TraceContext> {
    STACK.with(|s| {
        s.borrow().last().map(|a| TraceContext {
            trace_id: a.trace_id,
            parent_span: a.span_id,
            flags: FLAG_SAMPLED,
        })
    })
}

/// The thread's current trace id (for log stamping).
pub fn current_trace_id() -> Option<TraceId> {
    STACK.with(|s| s.borrow().last().map(|a| a.trace_id))
}

/// Starts a child of the thread's current span, recording into the same
/// collector that owns the current span. Returns `None` when no trace is
/// active — callers on untraced paths (heartbeats, background chatter)
/// pay one thread-local read and nothing else.
pub fn child(name: impl Into<String>) -> Option<SpanGuard> {
    let (ctx, collector) = STACK.with(|s| {
        s.borrow().last().map(|a| {
            (
                TraceContext { trace_id: a.trace_id, parent_span: a.span_id, flags: FLAG_SAMPLED },
                a.collector.clone(),
            )
        })
    })?;
    Some(collector.child_of(name, ctx))
}

/// An active span; finishes (records into its collector and pops the
/// thread-local stack) on drop.
pub struct SpanGuard {
    rec: Option<SpanRecord>,
    started: Instant,
}

impl SpanGuard {
    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.rec.as_ref().map(|r| r.span_id).unwrap_or_default()
    }

    /// This span's trace id.
    pub fn trace_id(&self) -> TraceId {
        self.rec.as_ref().map(|r| r.trace_id).unwrap_or_default()
    }

    /// The context a request caused by this span should carry.
    pub fn context(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id(), parent_span: self.id(), flags: FLAG_SAMPLED }
    }

    /// Attaches a `key=value` annotation.
    pub fn annotate(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        if let Some(r) = self.rec.as_mut() {
            r.annotations.push((key.into(), value.to_string()));
        }
    }

    /// Finishes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut rec) = self.rec.take() else { return };
        rec.dur_us = self.started.elapsed().as_micros() as u64;
        let span_id = rec.span_id;
        let collector = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Usually the top of the stack; tolerate out-of-order drops.
            let idx = stack.iter().rposition(|a| a.span_id == span_id);
            idx.map(|i| stack.remove(i).collector)
        });
        if let Some(c) = collector {
            c.record(rec);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots, assembly, critical path.
// ---------------------------------------------------------------------------

/// A wire-encodable batch of spans from one or more collectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The spans, in collection order.
    pub spans: Vec<SpanRecord>,
}

wire_struct!(TraceSnapshot, spans);

impl TraceSnapshot {
    /// Appends another snapshot's spans (duplicate span ids are dropped,
    /// so merging overlapping scrapes is safe).
    pub fn merge(&mut self, other: TraceSnapshot) {
        let seen: HashSet<SpanId> = self.spans.iter().map(|s| s.span_id).collect();
        self.spans.extend(other.spans.into_iter().filter(|s| !seen.contains(&s.span_id)));
    }

    /// Groups the spans into assembled traces, most recent first.
    pub fn traces(&self) -> Vec<Trace> {
        let mut by_trace: BTreeMap<TraceId, Vec<SpanRecord>> = BTreeMap::new();
        for s in &self.spans {
            by_trace.entry(s.trace_id).or_default().push(s.clone());
        }
        let mut out: Vec<Trace> = by_trace
            .into_iter()
            .map(|(trace_id, mut spans)| {
                spans.sort_by_key(|s| (s.start_us, s.span_id));
                Trace { trace_id, spans }
            })
            .collect();
        out.sort_by_key(|t| std::cmp::Reverse(t.spans.first().map(|s| s.start_us).unwrap_or(0)));
        out
    }

    /// The assembled trace with the given id, if its spans are present.
    pub fn trace(&self, id: TraceId) -> Option<Trace> {
        self.traces().into_iter().find(|t| t.trace_id == id)
    }

    /// One JSON object per span, newline-separated (the JSONL dump format
    /// under `results/traces/`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }
}

/// One assembled end-to-end request: every collected span sharing a trace
/// id, sorted by start time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The trace id.
    pub trace_id: TraceId,
    /// Spans sorted by `(start_us, span_id)`.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The root span: no parent within the trace, earliest start on ties.
    /// Spans whose parent was never collected (e.g. evicted from a ring)
    /// count as roots, so partial traces still assemble.
    pub fn root(&self) -> &SpanRecord {
        let ids: HashSet<SpanId> = self.spans.iter().map(|s| s.span_id).collect();
        self.spans
            .iter()
            .find(|s| s.parent_span == SpanId(0) || !ids.contains(&s.parent_span))
            .unwrap_or(&self.spans[0])
    }

    /// End-to-end duration: the root span's duration.
    pub fn duration_us(&self) -> u64 {
        self.root().dur_us
    }

    /// The set of node identities that contributed spans.
    pub fn nodes(&self) -> BTreeSet<String> {
        self.spans.iter().map(|s| s.node.clone()).collect()
    }

    /// Direct children of `parent`, start-ordered.
    pub fn children_of(&self, parent: SpanId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent_span == parent).collect()
    }

    /// Attributes the root's wall time to an exact partition of segments
    /// (see [`CriticalPath`]).
    pub fn critical_path(&self) -> CriticalPath {
        let root = self.root();
        let mut segments = Vec::new();
        let mut visited = HashSet::new();
        self.attribute(root, root.start_us, root.end_us(), &mut segments, &mut visited);
        CriticalPath { trace_id: self.trace_id, total_us: root.dur_us, segments }
    }

    fn attribute(
        &self,
        span: &SpanRecord,
        lo: u64,
        hi: u64,
        segments: &mut Vec<Segment>,
        visited: &mut HashSet<SpanId>,
    ) {
        if lo >= hi || !visited.insert(span.span_id) {
            return;
        }
        let mut cursor = lo;
        let mut attributed_child = false;
        for child in self.children_of(span.span_id) {
            let cs = child.start_us.clamp(cursor, hi);
            let ce = child.end_us().clamp(cursor, hi);
            if ce <= cursor {
                continue; // entirely before the cursor (overlapped siblings)
            }
            if cs > cursor {
                segments.push(Segment::self_time(span, cursor, cs - cursor));
            }
            self.attribute(child, cs, ce, segments, visited);
            cursor = ce;
            attributed_child = true;
        }
        if cursor < hi {
            if attributed_child {
                segments.push(Segment::self_time(span, cursor, hi - cursor));
            } else {
                // A leaf: the whole interval is the span's own work.
                segments.push(Segment {
                    name: span.name.clone(),
                    node: span.node.clone(),
                    start_us: cursor,
                    dur_us: hi - cursor,
                });
            }
        }
    }
}

/// One slice of a request's wall time, attributed to the innermost span
/// covering it (or a parent's `(self)` time for uncovered stretches —
/// retry backoff and scheduling gaps land there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The covering span's name (suffixed ` (self)` for uncovered time).
    pub name: String,
    /// Node that owned the time.
    pub node: String,
    /// Wall-clock start, µs since epoch.
    pub start_us: u64,
    /// Length in µs.
    pub dur_us: u64,
}

impl Segment {
    fn self_time(span: &SpanRecord, start_us: u64, dur_us: u64) -> Segment {
        Segment { name: format!("{} (self)", span.name), node: span.node.clone(), start_us, dur_us }
    }
}

/// A request's wall time split into an exact partition of [`Segment`]s:
/// `segments.iter().map(|s| s.dur_us).sum() == total_us` by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The trace this path describes.
    pub trace_id: TraceId,
    /// The root span's duration.
    pub total_us: u64,
    /// Time-ordered segments partitioning the root interval.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Sum of all segment durations (equals [`CriticalPath::total_us`]).
    pub fn attributed_us(&self) -> u64 {
        self.segments.iter().map(|s| s.dur_us).sum()
    }

    /// A human-readable report: one line per segment with its share of
    /// the total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {}: {} µs across {} segments",
            self.trace_id,
            self.total_us,
            self.segments.len()
        );
        let base = self.segments.first().map(|s| s.start_us).unwrap_or(0);
        for s in &self.segments {
            let pct = if self.total_us > 0 {
                s.dur_us as f64 * 100.0 / self.total_us as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  +{:>8} µs  {:>8} µs  {:>5.1}%  [{}] {}",
                s.start_us - base,
                s.dur_us,
                pct,
                s.node,
                s.name
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};

    fn rec(
        trace: u64,
        span: u64,
        parent: u64,
        name: &str,
        node: &str,
        start: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(trace),
            span_id: SpanId(span),
            parent_span: SpanId(parent),
            name: name.into(),
            node: node.into(),
            start_us: start,
            dur_us: dur,
            annotations: Vec::new(),
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn envelope_round_trips_and_old_frames_pass_through() {
        let ctx =
            TraceContext { trace_id: TraceId(7), parent_span: SpanId(9), flags: FLAG_SAMPLED };
        let payload = vec![3u8, 1, 4, 1, 5];
        let wrapped = wrap_envelope(&ctx, &payload);
        let (got_ctx, body) = unwrap_envelope(&wrapped).unwrap();
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(body, &payload[..]);

        // A bare old-format payload (first byte is a small request tag).
        let bare = vec![2u8, 0, 0];
        let (none, body) = unwrap_envelope(&bare).unwrap();
        assert_eq!(none, None);
        assert_eq!(body, &bare[..]);

        // Unknown future version: an explicit error, not silent garbage.
        let mut v2 = wrapped.clone();
        v2[1] = 2;
        assert!(unwrap_envelope(&v2).is_err());
        // Truncated envelope: error.
        assert!(unwrap_envelope(&wrapped[..10]).is_err());
    }

    #[test]
    fn spans_nest_and_record_into_their_collector() {
        let col = TraceCollector::new("t");
        {
            let mut root = col.root("client.op");
            root.annotate("bytes", 42);
            let ctx = current_context().expect("root active");
            assert_eq!(ctx.trace_id, root.trace_id());
            assert_eq!(ctx.parent_span, root.id());
            {
                let child = child("inner").expect("child under root");
                assert_eq!(child.trace_id(), root.trace_id());
                let inner_ctx = current_context().unwrap();
                assert_eq!(inner_ctx.parent_span, child.id());
            }
            assert_eq!(current_context().unwrap().parent_span, root.id());
        }
        assert_eq!(current_context(), None);
        let snap = col.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let root = snap.spans.iter().find(|s| s.parent_span == SpanId(0)).unwrap();
        let inner = snap.spans.iter().find(|s| s.parent_span != SpanId(0)).unwrap();
        assert_eq!(inner.parent_span, root.span_id);
        assert_eq!(root.annotation("bytes"), Some("42"));
        assert_eq!(root.node, "t");
    }

    #[test]
    fn child_without_active_trace_is_free() {
        assert!(child("orphan").is_none());
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn server_spans_continue_remote_context() {
        let client = TraceCollector::new("client");
        let server = TraceCollector::new("server");
        let ctx = {
            let root = client.root("client.op");
            root.context()
        };
        {
            let _s = server.child_of("server.op", ctx);
        }
        let s = &server.snapshot().spans[0];
        assert_eq!(s.trace_id, ctx.trace_id);
        assert_eq!(s.parent_span, ctx.parent_span);
        assert_eq!(s.node, "server");
    }

    #[test]
    fn ring_evicts_oldest() {
        let col = TraceCollector::with_capacity("t", 2);
        for i in 0..4 {
            let mut s = col.root("x");
            s.annotate("i", i);
        }
        assert_eq!(col.len(), 2);
        assert_eq!(col.dropped(), 2);
        let snap = col.snapshot();
        assert_eq!(snap.spans[0].annotation("i"), Some("2"));
        assert_eq!(snap.spans[1].annotation("i"), Some("3"));
    }

    #[test]
    fn snapshot_round_trips_over_wire_and_merge_dedups() {
        let col = TraceCollector::new("a");
        {
            let mut s = col.root("op");
            s.annotate("k", "v");
        }
        let snap = col.snapshot();
        let back: TraceSnapshot = decode(&encode(&snap)).unwrap();
        assert_eq!(back, snap);

        let mut merged = snap.clone();
        merged.merge(snap.clone()); // identical spans: deduped
        assert_eq!(merged.spans.len(), 1);
    }

    #[test]
    fn critical_path_partitions_root_exactly() {
        // root [0,100): child A [10,40), child B [40,70) with grandchild
        // [45,65); gaps 0-10, 70-100 are root self time.
        let spans = vec![
            rec(1, 10, 0, "root", "client", 0, 100),
            rec(1, 11, 10, "a", "master", 10, 30),
            rec(1, 12, 10, "b", "worker-0", 40, 30),
            rec(1, 13, 12, "b.inner", "worker-0", 45, 20),
        ];
        let snap = TraceSnapshot { spans };
        let traces = snap.traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.root().span_id, SpanId(10));
        assert_eq!(t.duration_us(), 100);
        let cp = t.critical_path();
        assert_eq!(cp.attributed_us(), 100, "segments must partition the root exactly");
        let names: Vec<&str> = cp.segments.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["root (self)", "a", "b (self)", "b.inner", "b (self)", "root (self)"]
        );
        assert!(cp.render().contains("µs"));
    }

    #[test]
    fn overlapping_siblings_are_clipped_not_double_counted() {
        // Two children overlap [10,50) and [30,80) under root [0,100).
        let spans = vec![
            rec(2, 20, 0, "root", "client", 0, 100),
            rec(2, 21, 20, "x", "w0", 10, 40),
            rec(2, 22, 20, "y", "w1", 30, 50),
        ];
        let cp = TraceSnapshot { spans }.traces()[0].critical_path();
        assert_eq!(cp.attributed_us(), 100);
        // y is clipped to its non-overlapped tail [50,80).
        let y = cp.segments.iter().find(|s| s.name == "y").unwrap();
        assert_eq!((y.start_us, y.dur_us), (50, 30));
    }

    #[test]
    fn partial_trace_with_missing_parent_still_assembles() {
        // The true root was evicted; the orphan becomes the root.
        let spans = vec![rec(3, 31, 999, "worker.ReadBlock", "worker-1", 50, 10)];
        let t = &TraceSnapshot { spans }.traces()[0];
        assert_eq!(t.root().span_id, SpanId(31));
        assert_eq!(t.critical_path().attributed_us(), 10);
    }

    #[test]
    fn jsonl_escapes_and_emits_one_line_per_span() {
        let mut s = rec(4, 41, 0, "na\"me", "client", 1, 2);
        s.annotations.push(("k\\ey".into(), "line1\nline2".into()));
        let snap = TraceSnapshot { spans: vec![s] };
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("na\\\"me"));
        assert!(jsonl.contains("k\\\\ey"));
        assert!(jsonl.contains("line1\\nline2"));
        assert!(jsonl.contains("\"node\":\"client\""));
    }
}
