//! Wire codec for the network protocol.
//!
//! A deliberately small, hand-rolled, little-endian format (a DFS wants a
//! stable wire format, not a generic serializer): primitives are
//! fixed-width, strings and vectors are length-prefixed, and every
//! compound type implements [`Wire`]. The RPC layer frames messages as
//! `[u32 length][payload]`.

use crate::{
    Block, BlockData, BlockId, ClientLocation, DirEntry, FileStatus, FsError, GenStamp, INodeId,
    LocatedBlock, Location, MediaId, MediaStats, RackId, ReplicationVector, Result,
    StorageTierReport, TierId, TierStats, WorkerId,
};

/// Incremental reader over a received payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding out of a shared frame buffer: the backing [`Bytes`]
    /// plus the offset of `buf` within it. Byte payloads then decode as
    /// zero-copy slices of the frame instead of fresh allocations.
    shared: Option<(&'a bytes::Bytes, usize)>,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, shared: None }
    }

    /// Wraps a suffix of a shared frame buffer, starting at `offset`.
    /// [`bytes::Bytes`] values decoded through this reader are zero-copy
    /// views into `frame` (they share its allocation).
    pub fn new_shared(frame: &'a bytes::Bytes, offset: usize) -> Self {
        Self { buf: &frame[offset..], pos: 0, shared: Some((frame, offset)) }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(FsError::Io("truncated wire message".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes `n` bytes as a [`bytes::Bytes`]: a zero-copy slice when the
    /// reader is backed by a shared frame, a copy otherwise.
    pub fn take_bytes(&mut self, n: usize) -> Result<bytes::Bytes> {
        match self.shared {
            Some((frame, off)) => {
                let start = off + self.pos;
                self.take(n)?; // bounds check + advance
                Ok(frame.slice(start..start + n))
            }
            None => Ok(bytes::Bytes::copy_from_slice(self.take(n)?)),
        }
    }

    /// Whether every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts full consumption (protocol hygiene).
    pub fn expect_finished(&self) -> Result<()> {
        if self.finished() {
            Ok(())
        } else {
            Err(FsError::Io(format!(
                "{} trailing bytes in wire message",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Decode-side cap on string and vector lengths. Encoding enforces the
/// same bound: a `String` or `Vec` longer than this panics in [`Wire::put`]
/// rather than silently truncating its `u32` length prefix — a message
/// that cannot round-trip must never reach the wire.
pub const MAX_SEQ_LEN: usize = 16_777_216;

/// Cap on raw byte payloads ([`bytes::Bytes`]): one block (≤1 GiB here)
/// plus headroom, matching the RPC layer's frame cap.
pub const MAX_BYTES_LEN: usize = (1 << 30) + (1 << 20);

/// Types that can cross the wire.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn put(&self, buf: &mut Vec<u8>);
    /// Decodes one value.
    fn get(r: &mut WireReader<'_>) -> Result<Self>;
}

macro_rules! wire_int {
    ($t:ty, $n:expr) => {
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn get(r: &mut WireReader<'_>) -> Result<Self> {
                Ok(<$t>::from_le_bytes(r.take($n)?.try_into().unwrap()))
            }
        }
    };
}

wire_int!(u8, 1);
wire_int!(u16, 2);
wire_int!(u32, 4);
wire_int!(u64, 8);
wire_int!(i64, 8);

impl Wire for f64 {
    fn put(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(f64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

impl Wire for bool {
    fn put(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        match u8::get(r)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(FsError::Io(format!("bad bool byte {v}"))),
        }
    }
}

impl Wire for String {
    /// # Panics
    /// If the string exceeds [`MAX_SEQ_LEN`] bytes (the decoder would
    /// reject it, and a `u32` prefix cannot represent it faithfully).
    fn put(&self, buf: &mut Vec<u8>) {
        assert!(
            self.len() <= MAX_SEQ_LEN,
            "wire string of {} bytes exceeds the {MAX_SEQ_LEN}-byte cap",
            self.len()
        );
        (self.len() as u32).put(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        let len = u32::get(r)? as usize;
        if len > MAX_SEQ_LEN {
            return Err(FsError::Io(format!("wire string length {len} too large")));
        }
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| FsError::Io(e.to_string()))
    }
}

impl<T: Wire> Wire for Vec<T> {
    /// # Panics
    /// If the vector exceeds [`MAX_SEQ_LEN`] elements (mirrors the decode
    /// cap; a longer vector would truncate its `u32` length prefix).
    fn put(&self, buf: &mut Vec<u8>) {
        assert!(
            self.len() <= MAX_SEQ_LEN,
            "wire vector of {} elements exceeds the {MAX_SEQ_LEN}-element cap",
            self.len()
        );
        (self.len() as u32).put(buf);
        for item in self {
            item.put(buf);
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        let len = u32::get(r)? as usize;
        // Defensive cap: a corrupted length must not allocate the world.
        if len > MAX_SEQ_LEN {
            return Err(FsError::Io(format!("wire vector length {len} too large")));
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::get(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.put(buf);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        match u8::get(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            v => Err(FsError::Io(format!("bad option byte {v}"))),
        }
    }
}

/// Raw byte payloads (block data) — length-prefixed.
impl Wire for bytes::Bytes {
    /// # Panics
    /// If the payload exceeds [`MAX_BYTES_LEN`] (larger than any legal
    /// block, and unrepresentable in the RPC frame header).
    fn put(&self, buf: &mut Vec<u8>) {
        assert!(
            self.len() <= MAX_BYTES_LEN,
            "wire byte payload of {} bytes exceeds the {MAX_BYTES_LEN}-byte cap",
            self.len()
        );
        (self.len() as u32).put(buf);
        buf.extend_from_slice(self);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        let len = u32::get(r)? as usize;
        if len > MAX_BYTES_LEN {
            return Err(FsError::Io(format!("wire byte payload length {len} too large")));
        }
        r.take_bytes(len)
    }
}

macro_rules! wire_newtype {
    ($t:ty, $inner:ty) => {
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                self.0.put(buf);
            }
            fn get(r: &mut WireReader<'_>) -> Result<Self> {
                Ok(Self(<$inner>::get(r)?))
            }
        }
    };
}

wire_newtype!(BlockId, u64);
wire_newtype!(INodeId, u64);
wire_newtype!(GenStamp, u64);
wire_newtype!(WorkerId, u32);
wire_newtype!(MediaId, u32);
wire_newtype!(RackId, u16);
wire_newtype!(TierId, u8);

impl Wire for ReplicationVector {
    fn put(&self, buf: &mut Vec<u8>) {
        self.to_bits().put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(ReplicationVector::from_bits(u64::get(r)?))
    }
}

impl Wire for Block {
    fn put(&self, buf: &mut Vec<u8>) {
        self.id.put(buf);
        self.gen.put(buf);
        self.len.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(Block { id: Wire::get(r)?, gen: Wire::get(r)?, len: Wire::get(r)? })
    }
}

impl Wire for Location {
    fn put(&self, buf: &mut Vec<u8>) {
        self.worker.put(buf);
        self.media.put(buf);
        self.tier.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(Location { worker: Wire::get(r)?, media: Wire::get(r)?, tier: Wire::get(r)? })
    }
}

impl Wire for LocatedBlock {
    fn put(&self, buf: &mut Vec<u8>) {
        self.block.put(buf);
        self.offset.put(buf);
        self.locations.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(LocatedBlock { block: Wire::get(r)?, offset: Wire::get(r)?, locations: Wire::get(r)? })
    }
}

impl Wire for MediaStats {
    fn put(&self, buf: &mut Vec<u8>) {
        self.media.put(buf);
        self.worker.put(buf);
        self.rack.put(buf);
        self.tier.put(buf);
        self.capacity.put(buf);
        self.remaining.put(buf);
        self.nr_conn.put(buf);
        self.write_thru.put(buf);
        self.read_thru.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(MediaStats {
            media: Wire::get(r)?,
            worker: Wire::get(r)?,
            rack: Wire::get(r)?,
            tier: Wire::get(r)?,
            capacity: Wire::get(r)?,
            remaining: Wire::get(r)?,
            nr_conn: Wire::get(r)?,
            write_thru: Wire::get(r)?,
            read_thru: Wire::get(r)?,
        })
    }
}

impl Wire for FileStatus {
    fn put(&self, buf: &mut Vec<u8>) {
        self.id.put(buf);
        self.path.put(buf);
        self.is_dir.put(buf);
        self.len.put(buf);
        self.rv.put(buf);
        self.block_size.put(buf);
        self.complete.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(FileStatus {
            id: Wire::get(r)?,
            path: Wire::get(r)?,
            is_dir: Wire::get(r)?,
            len: Wire::get(r)?,
            rv: Wire::get(r)?,
            block_size: Wire::get(r)?,
            complete: Wire::get(r)?,
        })
    }
}

impl Wire for DirEntry {
    fn put(&self, buf: &mut Vec<u8>) {
        self.name.put(buf);
        self.is_dir.put(buf);
        self.len.put(buf);
        self.rv.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(DirEntry {
            name: Wire::get(r)?,
            is_dir: Wire::get(r)?,
            len: Wire::get(r)?,
            rv: Wire::get(r)?,
        })
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, buf: &mut Vec<u8>) {
        self.0.put(buf);
        self.1.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl Wire for ClientLocation {
    fn put(&self, buf: &mut Vec<u8>) {
        match self {
            ClientLocation::OffCluster => buf.push(0),
            ClientLocation::OnWorker(w) => {
                buf.push(1);
                w.put(buf);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        match u8::get(r)? {
            0 => Ok(ClientLocation::OffCluster),
            1 => Ok(ClientLocation::OnWorker(Wire::get(r)?)),
            v => Err(FsError::Io(format!("bad client location tag {v}"))),
        }
    }
}

impl Wire for BlockData {
    fn put(&self, buf: &mut Vec<u8>) {
        match self {
            BlockData::Real(b) => {
                buf.push(0);
                b.put(buf);
            }
            BlockData::Synthetic { len, seed } => {
                buf.push(1);
                len.put(buf);
                seed.put(buf);
            }
        }
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        match u8::get(r)? {
            0 => Ok(BlockData::Real(Wire::get(r)?)),
            1 => Ok(BlockData::Synthetic { len: Wire::get(r)?, seed: Wire::get(r)? }),
            v => Err(FsError::Io(format!("bad block data tag {v}"))),
        }
    }
}

impl Wire for TierStats {
    fn put(&self, buf: &mut Vec<u8>) {
        self.tier.put(buf);
        self.num_media.put(buf);
        self.capacity.put(buf);
        self.remaining.put(buf);
        self.avg_write_thru.put(buf);
        self.avg_read_thru.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(TierStats {
            tier: Wire::get(r)?,
            num_media: Wire::get(r)?,
            capacity: Wire::get(r)?,
            remaining: Wire::get(r)?,
            avg_write_thru: Wire::get(r)?,
            avg_read_thru: Wire::get(r)?,
        })
    }
}

impl Wire for StorageTierReport {
    fn put(&self, buf: &mut Vec<u8>) {
        self.name.put(buf);
        self.stats.put(buf);
        self.volatile.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(StorageTierReport { name: Wire::get(r)?, stats: Wire::get(r)?, volatile: Wire::get(r)? })
    }
}

/// Errors cross the wire with their variant preserved so remote clients
/// can match on failure classes exactly as local ones do.
impl Wire for FsError {
    fn put(&self, buf: &mut Vec<u8>) {
        use FsError::*;
        let (tag, msg): (u8, &str) = match self {
            NotFound(m) => (0, m),
            AlreadyExists(m) => (1, m),
            NotADirectory(m) => (2, m),
            IsADirectory(m) => (3, m),
            DirectoryNotEmpty(m) => (4, m),
            InvalidPath(m) => (5, m),
            InvalidReplicationVector(m) => (6, m),
            PlacementFailed(m) => (7, m),
            BlockUnavailable(m) => (8, m),
            ChecksumMismatch { expected, actual } => {
                buf.push(9);
                expected.put(buf);
                actual.put(buf);
                return;
            }
            OutOfCapacity(m) => (10, m),
            QuotaExceeded(m) => (11, m),
            UnknownWorker(m) => (12, m),
            UnknownMedia(m) => (13, m),
            UnknownTier(m) => (14, m),
            LeaseConflict(m) => (15, m),
            InvalidArgument(m) => (16, m),
            NotReady(m) => (17, m),
            Io(m) => (18, m),
            Config(m) => (19, m),
            Internal(m) => (20, m),
            Timeout(m) => (21, m),
            Unreachable(m) => (22, m),
        };
        buf.push(tag);
        msg.to_string().put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        use FsError::*;
        let tag = u8::get(r)?;
        if tag == 9 {
            return Ok(ChecksumMismatch { expected: Wire::get(r)?, actual: Wire::get(r)? });
        }
        let m = String::get(r)?;
        Ok(match tag {
            0 => NotFound(m),
            1 => AlreadyExists(m),
            2 => NotADirectory(m),
            3 => IsADirectory(m),
            4 => DirectoryNotEmpty(m),
            5 => InvalidPath(m),
            6 => InvalidReplicationVector(m),
            7 => PlacementFailed(m),
            8 => BlockUnavailable(m),
            10 => OutOfCapacity(m),
            11 => QuotaExceeded(m),
            12 => UnknownWorker(m),
            13 => UnknownMedia(m),
            14 => UnknownTier(m),
            15 => LeaseConflict(m),
            16 => InvalidArgument(m),
            17 => NotReady(m),
            18 => Io(m),
            19 => Config(m),
            20 => Internal(m),
            21 => Timeout(m),
            22 => Unreachable(m),
            t => return Err(FsError::Io(format!("bad error tag {t}"))),
        })
    }
}

/// Encodes a value into a fresh buffer.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.put(&mut buf);
    buf
}

/// Decodes a value, requiring full consumption of the payload.
pub fn decode<T: Wire>(buf: &[u8]) -> Result<T> {
    let mut r = WireReader::new(buf);
    let v = T::get(&mut r)?;
    r.expect_finished()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode(&v);
        assert_eq!(decode::<T>(&enc).unwrap(), v);
    }

    #[test]
    fn primitives() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(123456u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(1.5f64);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("héllo wörld"));
        round_trip(String::new());
    }

    #[test]
    fn containers() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some("x".to_string()));
        round_trip(Option::<u32>::None);
        round_trip(bytes::Bytes::from(vec![9u8; 1000]));
    }

    #[test]
    fn domain_types() {
        round_trip(Block { id: BlockId(7), gen: GenStamp(3), len: 1 << 30 });
        round_trip(Location { worker: WorkerId(4), media: MediaId(19), tier: TierId(2) });
        round_trip(LocatedBlock {
            block: Block { id: BlockId(1), gen: GenStamp(0), len: 10 },
            offset: 100,
            locations: vec![Location { worker: WorkerId(0), media: MediaId(0), tier: TierId(0) }],
        });
        round_trip(ReplicationVector::mshru(1, 2, 3, 0, 4));
        round_trip(FileStatus {
            id: INodeId(9),
            path: "/a/b".into(),
            is_dir: false,
            len: 42,
            rv: ReplicationVector::msh(1, 0, 2),
            block_size: 1 << 27,
            complete: true,
        });
        round_trip(DirEntry {
            name: "x".into(),
            is_dir: true,
            len: 0,
            rv: ReplicationVector::EMPTY,
        });
        round_trip(MediaStats {
            media: MediaId(1),
            worker: WorkerId(2),
            rack: RackId(3),
            tier: TierId(1),
            capacity: 100,
            remaining: 50,
            nr_conn: 4,
            write_thru: 1e8,
            read_thru: 2e8,
        });
    }

    #[test]
    fn extended_types() {
        round_trip(ClientLocation::OffCluster);
        round_trip(ClientLocation::OnWorker(WorkerId(3)));
        round_trip(BlockData::Real(bytes::Bytes::from_static(b"abc")));
        round_trip(BlockData::Synthetic { len: 1 << 40, seed: 7 });
        round_trip((String::from("a"), 42u64));
        round_trip(StorageTierReport {
            name: "SSD".into(),
            stats: TierStats {
                tier: TierId(1),
                num_media: 9,
                capacity: 100,
                remaining: 40,
                avg_write_thru: 1e8,
                avg_read_thru: 2e8,
            },
            volatile: false,
        });
        round_trip(FsError::NotFound("/x".into()));
        round_trip(FsError::ChecksumMismatch { expected: 1, actual: 2 });
        round_trip(FsError::LeaseConflict("held".into()));
        round_trip(FsError::Timeout("read deadline".into()));
        round_trip(FsError::Unreachable("connection refused".into()));
    }

    #[test]
    fn max_len_values_encode() {
        // Values exactly at the cap round-trip; this also pins the cap
        // constants so a decode/encode asymmetry cannot creep back in.
        let s = "x".repeat(100);
        round_trip(s);
        assert_eq!(MAX_SEQ_LEN, 16_777_216);
        const { assert!(MAX_BYTES_LEN > MAX_SEQ_LEN) };
    }

    #[test]
    #[should_panic(expected = "exceeds the 16777216-byte cap")]
    fn oversize_string_rejected_at_encode() {
        let s = "y".repeat(MAX_SEQ_LEN + 1);
        encode(&s);
    }

    #[test]
    #[should_panic(expected = "exceeds the 16777216-element cap")]
    fn oversize_vector_rejected_at_encode() {
        let v = vec![0u8; MAX_SEQ_LEN + 1];
        encode(&v);
    }

    #[test]
    fn oversize_bytes_rejected_at_decode() {
        // An incoming payload claiming more than MAX_BYTES_LEN bytes is
        // rejected before any allocation.
        let mut buf = Vec::new();
        ((MAX_BYTES_LEN as u32) + 1).put(&mut buf);
        assert!(decode::<bytes::Bytes>(&buf).is_err());
    }

    #[test]
    fn shared_reader_decodes_bytes_zero_copy() {
        let payload = bytes::Bytes::from(vec![5u8; 4096]);
        let mut enc = vec![0xAAu8; 3]; // pretend 3 bytes of preceding fields
        payload.put(&mut enc);
        let frame = bytes::Bytes::from(enc);
        let mut r = WireReader::new_shared(&frame, 3);
        let got = bytes::Bytes::get(&mut r).unwrap();
        assert_eq!(got, payload);
        // The decoded value aliases the frame's allocation (no copy).
        assert!(std::ptr::eq(got.as_ref().as_ptr(), frame[7..].as_ptr()));
        r.expect_finished().unwrap();
    }

    #[test]
    fn truncation_and_trailing_detected() {
        let enc = encode(&String::from("hello"));
        assert!(decode::<String>(&enc[..enc.len() - 1]).is_err());
        let mut extra = enc.clone();
        extra.push(0);
        assert!(decode::<String>(&extra).is_err());
    }

    #[test]
    fn hostile_lengths_rejected() {
        // A vector claiming 2^31 elements must not allocate.
        let mut buf = Vec::new();
        (u32::MAX).put(&mut buf);
        assert!(decode::<Vec<u64>>(&buf).is_err());
        // Bad bool / option discriminants.
        assert!(decode::<bool>(&[7]).is_err());
        assert!(decode::<Option<u8>>(&[9, 0]).is_err());
    }
}
