//! The live cluster status report served by the master's `ClusterStatus`
//! RPC and rendered by `octofs-remote status`: per-worker tier capacity
//! and utilization, liveness, in-flight work, and a heat summary — the
//! operator's one-look view of the tiered cluster.

use crate::heat::HeatInfo;
use crate::ids::WorkerId;
use crate::stats::{MediaStats, StorageTierReport};
use crate::topology::RackId;
use crate::wire::{Wire, WireReader};
use crate::Result;

/// One worker's line in the status report.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStatusLine {
    /// The worker.
    pub worker: WorkerId,
    /// Its rack.
    pub rack: RackId,
    /// Whether heartbeats are arriving.
    pub live: bool,
    /// Network connections at the last heartbeat.
    pub nr_conn: u32,
    /// Master-clock time of the last heartbeat.
    pub last_heartbeat_ms: u64,
    /// Per-medium statistics as last heartbeated (capacity, remaining,
    /// NrConn, throughputs).
    pub media: Vec<MediaStats>,
}

impl Wire for WorkerStatusLine {
    fn put(&self, buf: &mut Vec<u8>) {
        self.worker.put(buf);
        self.rack.put(buf);
        self.live.put(buf);
        self.nr_conn.put(buf);
        self.last_heartbeat_ms.put(buf);
        self.media.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(WorkerStatusLine {
            worker: Wire::get(r)?,
            rack: Wire::get(r)?,
            live: Wire::get(r)?,
            nr_conn: Wire::get(r)?,
            last_heartbeat_ms: Wire::get(r)?,
            media: Wire::get(r)?,
        })
    }
}

/// One hot file in the status heat summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HotFile {
    /// The file's path (empty when it was deleted after its last touch).
    pub path: String,
    /// Its heat.
    pub heat: HeatInfo,
}

impl Wire for HotFile {
    fn put(&self, buf: &mut Vec<u8>) {
        self.path.put(buf);
        self.heat.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(HotFile { path: Wire::get(r)?, heat: Wire::get(r)? })
    }
}

/// The complete report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStatusReport {
    /// Master clock (heartbeat time base) when the report was built.
    pub now_ms: u64,
    /// Whether the master is in safe mode.
    pub safe_mode: bool,
    /// Number of files in the namespace.
    pub files: u64,
    /// Number of tracked blocks.
    pub blocks: u64,
    /// Blocks with at least one scheduled-but-unconfirmed replica
    /// (in-flight pipelines or pending re-replications).
    pub in_flight_blocks: u64,
    /// Bytes reserved for scheduled writes across all media.
    pub scheduled_bytes: u64,
    /// Per-tier aggregate reports (Table 1's `getStorageTierReports`).
    pub tiers: Vec<StorageTierReport>,
    /// Per-worker lines, sorted by worker id.
    pub workers: Vec<WorkerStatusLine>,
    /// The hottest files (bounded), hottest first.
    pub hot: Vec<HotFile>,
    /// Placement-audit volume: total decisions ever recorded.
    pub decisions_recorded: u64,
    /// Placement-audit volume: decisions currently retained in the ring.
    pub decisions_retained: u64,
}

impl Wire for ClusterStatusReport {
    fn put(&self, buf: &mut Vec<u8>) {
        self.now_ms.put(buf);
        self.safe_mode.put(buf);
        self.files.put(buf);
        self.blocks.put(buf);
        self.in_flight_blocks.put(buf);
        self.scheduled_bytes.put(buf);
        self.tiers.put(buf);
        self.workers.put(buf);
        self.hot.put(buf);
        self.decisions_recorded.put(buf);
        self.decisions_retained.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(ClusterStatusReport {
            now_ms: Wire::get(r)?,
            safe_mode: Wire::get(r)?,
            files: Wire::get(r)?,
            blocks: Wire::get(r)?,
            in_flight_blocks: Wire::get(r)?,
            scheduled_bytes: Wire::get(r)?,
            tiers: Wire::get(r)?,
            workers: Wire::get(r)?,
            hot: Wire::get(r)?,
            decisions_recorded: Wire::get(r)?,
            decisions_retained: Wire::get(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{INodeId, MediaId};
    use crate::stats::TierStats;
    use crate::tier::TierId;
    use crate::wire::{decode, encode};

    #[test]
    fn report_round_trips_over_wire() {
        let report = ClusterStatusReport {
            now_ms: 1234,
            safe_mode: false,
            files: 3,
            blocks: 5,
            in_flight_blocks: 1,
            scheduled_bytes: 1 << 20,
            tiers: vec![StorageTierReport {
                name: "Memory".into(),
                stats: TierStats {
                    tier: TierId(0),
                    num_media: 2,
                    capacity: 100,
                    remaining: 60,
                    avg_write_thru: 5.0,
                    avg_read_thru: 6.0,
                },
                volatile: true,
            }],
            workers: vec![WorkerStatusLine {
                worker: WorkerId(1),
                rack: RackId(0),
                live: true,
                nr_conn: 2,
                last_heartbeat_ms: 1200,
                media: vec![MediaStats {
                    media: MediaId(3),
                    worker: WorkerId(1),
                    rack: RackId(0),
                    tier: TierId(0),
                    capacity: 50,
                    remaining: 30,
                    nr_conn: 1,
                    write_thru: 5.0,
                    read_thru: 6.0,
                }],
            }],
            hot: vec![HotFile {
                path: "/hot".into(),
                heat: crate::heat::HeatInfo { file: INodeId(2), score: 4.5, ..Default::default() },
            }],
            decisions_recorded: 9,
            decisions_retained: 9,
        };
        let back: ClusterStatusReport = decode(&encode(&report)).unwrap();
        assert_eq!(back, report);
    }
}
