//! Lock contention statistics: instrumented `RwLock`/`Mutex` wrappers
//! whose RAII guards stamp **wait time** (how long an acquirer blocked)
//! and **hold time** (how long the guard lived) into per-lock latency
//! histograms, split by acquisition mode (shared vs. exclusive).
//!
//! The master's `RwLock<Inner>` is the system's global lock; before any
//! sharding/striping refactor we need to know *where* master time goes —
//! queueing on the lock, working under it, or appending to the edit log.
//! This module provides the lock-side half of that breakdown (the op-side
//! half lives in the master's per-operation histograms).
//!
//! Design:
//!
//! - [`LockStats`] is a bundle of registry-backed handles
//!   (`lock_wait_us`/`lock_hold_us` micro-layout histograms and
//!   `lock_acquire_total`/`lock_contended_total` counters, labelled
//!   `op=<lock name>, mode=sh|ex`), so lock telemetry flows through the
//!   existing snapshot/merge/render machinery with no new wire types.
//! - [`StatRwLock`]/[`StatMutex`] wrap the `parking_lot` primitives with
//!   source-compatible `read()`/`write()`/`lock()`. Acquisition first
//!   tries the non-blocking path: an uncontended acquire records a wait
//!   of 0 without reading the clock twice; only a contended acquire pays
//!   for wait timing (and bumps `lock_contended_total`).
//! - **Zero overhead when disabled** ([`set_enabled`]): one relaxed
//!   atomic load, then a plain lock — no `Instant::now()`, no histogram
//!   traffic.
//!
//! Guards expose [`StatReadGuard::wait_us`] (and friends) so callers that
//! already time whole operations can fold the measured lock wait into
//! their own segment accounting without a second clock read.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::metrics::{BucketLayout, Counter, Histogram, Labels, MetricsRegistry};

/// Global lockstat switch. Defaults to on; flip off to strip all timing
/// from instrumented locks (they degrade to plain `parking_lot` locks
/// behind one relaxed atomic load).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables lock statistics process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether lock statistics are being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Shared-mode metric handles for one lock class.
#[derive(Clone)]
struct ModeStats {
    wait: Histogram,
    hold: Histogram,
    acquired: Counter,
    contended: Counter,
}

impl ModeStats {
    fn register(reg: &MetricsRegistry, lock: &'static str, mode: &'static str) -> Self {
        let labels = Labels::op(lock).with_mode(mode);
        ModeStats {
            wait: reg.histogram_with("lock_wait_us", labels, BucketLayout::Micro),
            hold: reg.histogram_with("lock_hold_us", labels, BucketLayout::Micro),
            acquired: reg.counter("lock_acquire_total", labels),
            contended: reg.counter("lock_contended_total", labels),
        }
    }
}

/// Per-lock statistics: wait/hold histograms and acquire/contention
/// counters for the shared and exclusive modes, registered in a
/// [`MetricsRegistry`] under the lock's name (`op` label).
pub struct LockStats {
    name: &'static str,
    sh: ModeStats,
    ex: ModeStats,
}

impl LockStats {
    /// Registers the metric series for a lock named `lock` (by convention
    /// `<component>.<field>`, e.g. `master.inner`).
    pub fn register(reg: &MetricsRegistry, lock: &'static str) -> Arc<Self> {
        Arc::new(LockStats {
            name: lock,
            sh: ModeStats::register(reg, lock, "sh"),
            ex: ModeStats::register(reg, lock, "ex"),
        })
    }

    /// Registers the metric series for a lock whose name is built at
    /// runtime — the sharded master labels each namespace/blockmap stripe
    /// individually (`master.shard0`, `master.shard1`, …) so contention
    /// rankings (`octofs-remote perf`) show per-shard hot spots instead of
    /// aggregating every stripe under one fixed name. Lock names are
    /// process-lifetime static by design (metric labels outlive any lock),
    /// so the handful of shard names are interned once here.
    pub fn register_owned(reg: &MetricsRegistry, lock: String) -> Arc<Self> {
        Self::register(reg, Box::leak(lock.into_boxed_str()))
    }

    /// The lock's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total microseconds acquirers spent blocked on this lock (both
    /// modes).
    pub fn wait_total_us(&self) -> u64 {
        self.sh.wait.sum_us() + self.ex.wait.sum_us()
    }

    /// Total microseconds guards were held (both modes).
    pub fn hold_total_us(&self) -> u64 {
        self.sh.hold.sum_us() + self.ex.hold.sum_us()
    }

    /// Number of contended acquisitions (both modes).
    pub fn contended_total(&self) -> u64 {
        self.sh.contended.get() + self.ex.contended.get()
    }

    fn mode(&self, exclusive: bool) -> &ModeStats {
        if exclusive {
            &self.ex
        } else {
            &self.sh
        }
    }
}

/// Outcome of a timed acquisition: the wait in µs plus the hold-timing
/// state the guard carries to its drop.
struct Acquired<'a> {
    stats: Option<(&'a ModeStats, Instant)>,
    wait_us: u64,
}

fn record_acquire<'a, G>(
    stats: Option<&'a LockStats>,
    exclusive: bool,
    try_acquire: impl FnOnce() -> Option<G>,
    acquire: impl FnOnce() -> G,
) -> (G, Acquired<'a>) {
    let Some(stats) = stats.filter(|_| enabled()) else {
        let g = try_acquire().unwrap_or_else(acquire);
        return (g, Acquired { stats: None, wait_us: 0 });
    };
    let mode = stats.mode(exclusive);
    let (guard, wait_us) = match try_acquire() {
        Some(g) => (g, 0),
        None => {
            mode.contended.inc();
            let queued = Instant::now();
            let g = acquire();
            (g, queued.elapsed().as_micros() as u64)
        }
    };
    mode.acquired.inc();
    mode.wait.observe_us(wait_us);
    (guard, Acquired { stats: Some((mode, Instant::now())), wait_us })
}

impl<'a> Acquired<'a> {
    fn record_hold(&self) {
        if let Some((mode, since)) = self.stats {
            mode.hold.observe_since(since);
        }
    }
}

/// A `parking_lot::RwLock` with lockstat instrumentation.
pub struct StatRwLock<T> {
    lock: RwLock<T>,
    stats: Option<Arc<LockStats>>,
}

impl<T> StatRwLock<T> {
    /// An uninstrumented wrapper (plain lock semantics).
    pub fn new(value: T) -> Self {
        StatRwLock { lock: RwLock::new(value), stats: None }
    }

    /// A wrapper recording wait/hold into `stats`.
    pub fn instrumented(value: T, stats: Arc<LockStats>) -> Self {
        StatRwLock { lock: RwLock::new(value), stats: Some(stats) }
    }

    /// The lock's statistics, if instrumented.
    pub fn stats(&self) -> Option<&LockStats> {
        self.stats.as_deref()
    }

    /// Acquires a shared guard, recording wait (and, at drop, hold) time.
    pub fn read(&self) -> StatReadGuard<'_, T> {
        let (guard, acq) = record_acquire(
            self.stats.as_deref(),
            false,
            || self.lock.try_read(),
            || self.lock.read(),
        );
        StatReadGuard { guard, acq }
    }

    /// Acquires an exclusive guard, recording wait (and, at drop, hold)
    /// time.
    pub fn write(&self) -> StatWriteGuard<'_, T> {
        let (guard, acq) = record_acquire(
            self.stats.as_deref(),
            true,
            || self.lock.try_write(),
            || self.lock.write(),
        );
        StatWriteGuard { guard, acq }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.lock.get_mut()
    }
}

/// Shared guard from [`StatRwLock::read`].
pub struct StatReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    acq: Acquired<'a>,
}

/// Exclusive guard from [`StatRwLock::write`].
pub struct StatWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    acq: Acquired<'a>,
}

/// Guard from [`StatMutex::lock`].
pub struct StatMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    acq: Acquired<'a>,
}

macro_rules! stat_guard {
    ($name:ident) => {
        impl<'a, T> $name<'a, T> {
            /// Microseconds this acquisition blocked (0 when uncontended
            /// or lockstat is disabled).
            pub fn wait_us(&self) -> u64 {
                self.acq.wait_us
            }
        }

        impl<'a, T> Deref for $name<'a, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.guard
            }
        }

        impl<'a, T> Drop for $name<'a, T> {
            fn drop(&mut self) {
                self.acq.record_hold();
            }
        }
    };
}

stat_guard!(StatReadGuard);
stat_guard!(StatWriteGuard);
stat_guard!(StatMutexGuard);

impl<'a, T> DerefMut for StatWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<'a, T> DerefMut for StatMutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A `parking_lot::Mutex` with lockstat instrumentation. All
/// acquisitions count as exclusive.
pub struct StatMutex<T> {
    lock: Mutex<T>,
    stats: Option<Arc<LockStats>>,
}

impl<T> StatMutex<T> {
    /// An uninstrumented wrapper (plain lock semantics).
    pub fn new(value: T) -> Self {
        StatMutex { lock: Mutex::new(value), stats: None }
    }

    /// A wrapper recording wait/hold into `stats`.
    pub fn instrumented(value: T, stats: Arc<LockStats>) -> Self {
        StatMutex { lock: Mutex::new(value), stats: Some(stats) }
    }

    /// The lock's statistics, if instrumented.
    pub fn stats(&self) -> Option<&LockStats> {
        self.stats.as_deref()
    }

    /// Acquires the lock, recording wait (and, at drop, hold) time.
    pub fn lock(&self) -> StatMutexGuard<'_, T> {
        let (guard, acq) = record_acquire(
            self.stats.as_deref(),
            true,
            || self.lock.try_lock(),
            || self.lock.lock(),
        );
        StatMutexGuard { guard, acq }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.lock.get_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    // Tests that flip or depend on the global enable flag serialize on
    // this, so the disabled-window test cannot race recording tests.
    static FLAG_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
        FLAG_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn stats() -> (MetricsRegistry, Arc<LockStats>) {
        let reg = MetricsRegistry::new();
        let stats = LockStats::register(&reg, "test.lock");
        (reg, stats)
    }

    #[test]
    fn uncontended_access_records_zero_wait() {
        let _flag = flag_guard();
        let (reg, stats) = stats();
        let lock = StatRwLock::instrumented(7u64, stats);
        for _ in 0..4 {
            assert_eq!(*lock.read(), 7);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 8);
        let s = lock.stats().unwrap();
        assert_eq!(s.wait_total_us(), 0, "uncontended waits must be exactly zero");
        assert_eq!(s.contended_total(), 0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_where("lock_acquire_total", |l| l.mode.as_deref() == Some("sh")),
            5
        );
        assert_eq!(
            snap.counter_where("lock_acquire_total", |l| l.mode.as_deref() == Some("ex")),
            1
        );
        assert_eq!(snap.counter("lock_contended_total"), 0);
    }

    #[test]
    fn contended_readers_and_writers_record_waits() {
        // One writer holds the lock while N readers and M writers queue:
        // the queued classes must show non-zero wait time and contended
        // counts, and every hold must be recorded.
        let _flag = flag_guard();
        let (_reg, stats) = stats();
        let lock = Arc::new(StatRwLock::instrumented(0u64, stats));
        let spins = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let first = lock.write();
            let mut handles = Vec::new();
            for i in 0..6 {
                let lock = Arc::clone(&lock);
                let spins = Arc::clone(&spins);
                handles.push(scope.spawn(move || {
                    spins.fetch_add(1, Ordering::SeqCst);
                    if i % 2 == 0 {
                        let g = lock.read();
                        assert!(*g >= 1);
                    } else {
                        let mut g = lock.write();
                        *g += 1;
                    }
                }));
            }
            // Hold until every thread is queued behind the write guard,
            // then a little longer so their waits are measurably non-zero.
            while spins.load(Ordering::SeqCst) < 6 {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(20));
            drop({
                let mut first = first;
                *first += 1;
                first
            });
            for h in handles {
                h.join().unwrap();
            }
        });
        let s = lock.stats().unwrap();
        assert!(s.contended_total() >= 1, "queued acquirers must count as contended");
        assert!(
            s.wait_total_us() >= 1_000,
            "threads blocked ~20ms, wait sum was {}µs",
            s.wait_total_us()
        );
        assert_eq!(s.sh.acquired.get(), 3);
        assert_eq!(s.ex.acquired.get(), 4);
        assert_eq!(s.sh.hold.count() + s.ex.hold.count(), 7, "every hold recorded");
        assert!(s.hold_total_us() >= 1_000, "the 20ms write hold must be visible");
    }

    #[test]
    fn mutex_records_exclusive_holds() {
        let _flag = flag_guard();
        let (_reg, stats) = stats();
        let m = StatMutex::instrumented(vec![1, 2], stats);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
        let s = m.stats().unwrap();
        assert_eq!(s.ex.acquired.get(), 2);
        assert_eq!(s.sh.acquired.get(), 0);
        assert_eq!(s.ex.hold.count(), 2);
    }

    #[test]
    fn disabled_lockstat_records_nothing() {
        let _flag = flag_guard();
        let (_reg, stats) = stats();
        let lock = StatRwLock::instrumented(1u32, stats);
        set_enabled(false);
        let out = *lock.read();
        *lock.write() += out;
        set_enabled(true);
        let s = lock.stats().unwrap();
        assert_eq!(s.sh.acquired.get() + s.ex.acquired.get(), 0);
        assert_eq!(s.sh.hold.count() + s.ex.hold.count(), 0);
    }

    #[test]
    fn uninstrumented_wrappers_still_lock() {
        let lock = StatRwLock::new(5u8);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert!(lock.stats().is_none());
        let m = StatMutex::new(1u8);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
