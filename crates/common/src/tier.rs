//! Storage tiers.
//!
//! A *storage tier* logically groups the same type of storage media across all
//! workers (paper §2.2): the "SSD" tier encompasses every SSD in the cluster.
//! Tiers are identified by a small integer [`TierId`] that doubles as the
//! slot index inside a [`crate::ReplicationVector`]. Tiers are defined by
//! *performance*, not device type, so a cluster may configure e.g. "SSD-1"
//! (PCIe) and "SSD-2" (SATA) as distinct tiers; the [`TierRegistry`] supports
//! up to seven tiers, with slot 7 reserved for the vector's "Unspecified"
//! entry.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{FsError, Result};

/// Maximum number of distinct tiers a cluster may configure.
pub const MAX_TIERS: usize = 7;

/// The replication-vector slot that holds the "Unspecified" count (paper
/// §2.3: replicas whose tier the system chooses).
pub const UNSPECIFIED_SLOT: u8 = 7;

/// Identifier of a storage tier; also its replication-vector slot (0..=6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub u8);

impl TierId {
    /// The tier's slot in a replication vector.
    pub fn slot(self) -> u8 {
        self.0
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier_{}", self.0)
    }
}

/// The four canonical tiers of the paper's running example
/// ⟨Memory, SSD, HDD, Remote⟩. Custom clusters may define others via
/// [`TierRegistry`]; these constants are conveniences for the common case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageTier {
    /// Volatile DRAM tier — fastest, smallest, data lost on restart.
    Memory,
    /// Flash tier.
    Ssd,
    /// Spinning-disk tier.
    Hdd,
    /// Network-attached or cloud storage integrated as a tier (§2.4,
    /// integrated mode).
    Remote,
}

impl StorageTier {
    /// The canonical [`TierId`] (replication-vector slot) of this tier.
    pub const fn id(self) -> TierId {
        match self {
            StorageTier::Memory => TierId(0),
            StorageTier::Ssd => TierId(1),
            StorageTier::Hdd => TierId(2),
            StorageTier::Remote => TierId(3),
        }
    }

    /// Canonical display name.
    pub const fn name(self) -> &'static str {
        match self {
            StorageTier::Memory => "Memory",
            StorageTier::Ssd => "SSD",
            StorageTier::Hdd => "HDD",
            StorageTier::Remote => "Remote",
        }
    }

    /// Whether data on this tier is lost on power failure.
    pub const fn volatile(self) -> bool {
        matches!(self, StorageTier::Memory)
    }

    /// All four canonical tiers, in slot order.
    pub const ALL: [StorageTier; 4] =
        [StorageTier::Memory, StorageTier::Ssd, StorageTier::Hdd, StorageTier::Remote];
}

impl fmt::Display for StorageTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata describing one configured tier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierInfo {
    /// Slot / identifier.
    pub id: TierId,
    /// Human-readable name ("Memory", "SSD-1", ...).
    pub name: String,
    /// Whether the tier's media are volatile (affects placement defaults:
    /// the MOOP policy only places on volatile tiers when explicitly
    /// enabled, and caps them at one third of the replicas — §3.3).
    pub volatile: bool,
}

/// The set of tiers configured for a cluster.
///
/// Tier ids must be dense starting at 0 so they map directly onto
/// replication-vector slots.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierRegistry {
    tiers: Vec<TierInfo>,
}

impl TierRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical ⟨Memory, SSD, HDD⟩ registry used by most tests and by
    /// the paper's evaluation cluster (which has no remote tier attached).
    pub fn standard_three() -> Self {
        let mut r = Self::new();
        for t in [StorageTier::Memory, StorageTier::Ssd, StorageTier::Hdd] {
            r.register(t.name(), t.volatile()).unwrap();
        }
        r
    }

    /// The canonical four-tier registry ⟨Memory, SSD, HDD, Remote⟩ from the
    /// paper's Figure 1.
    pub fn standard_four() -> Self {
        let mut r = Self::new();
        for t in StorageTier::ALL {
            r.register(t.name(), t.volatile()).unwrap();
        }
        r
    }

    /// Registers a new tier and returns its id. Fails after [`MAX_TIERS`]
    /// tiers or on a duplicate name.
    pub fn register(&mut self, name: &str, volatile: bool) -> Result<TierId> {
        if self.tiers.len() >= MAX_TIERS {
            return Err(FsError::Config(format!(
                "cannot register tier {name:?}: at most {MAX_TIERS} tiers supported"
            )));
        }
        if self.tiers.iter().any(|t| t.name == name) {
            return Err(FsError::Config(format!("duplicate tier name {name:?}")));
        }
        let id = TierId(self.tiers.len() as u8);
        self.tiers.push(TierInfo { id, name: name.to_string(), volatile });
        Ok(id)
    }

    /// Number of configured tiers (the paper's `k`).
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether no tiers are configured.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Looks up a tier by id.
    pub fn get(&self, id: TierId) -> Result<&TierInfo> {
        self.tiers.get(id.0 as usize).ok_or_else(|| FsError::UnknownTier(id.to_string()))
    }

    /// Looks up a tier by name.
    pub fn by_name(&self, name: &str) -> Result<&TierInfo> {
        self.tiers
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| FsError::UnknownTier(name.to_string()))
    }

    /// Iterates tiers in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &TierInfo> {
        self.tiers.iter()
    }

    /// Ids of all configured tiers, in slot order.
    pub fn ids(&self) -> impl Iterator<Item = TierId> + '_ {
        self.tiers.iter().map(|t| t.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_tiers_have_expected_slots() {
        assert_eq!(StorageTier::Memory.id(), TierId(0));
        assert_eq!(StorageTier::Ssd.id(), TierId(1));
        assert_eq!(StorageTier::Hdd.id(), TierId(2));
        assert_eq!(StorageTier::Remote.id(), TierId(3));
        assert!(StorageTier::Memory.volatile());
        assert!(!StorageTier::Hdd.volatile());
    }

    #[test]
    fn registry_registers_dense_ids() {
        let mut r = TierRegistry::new();
        assert_eq!(r.register("Memory", true).unwrap(), TierId(0));
        assert_eq!(r.register("SSD-1", false).unwrap(), TierId(1));
        assert_eq!(r.register("SSD-2", false).unwrap(), TierId(2));
        assert_eq!(r.len(), 3);
        assert_eq!(r.by_name("SSD-2").unwrap().id, TierId(2));
        assert!(r.get(TierId(3)).is_err());
    }

    #[test]
    fn registry_rejects_duplicates_and_overflow() {
        let mut r = TierRegistry::new();
        r.register("A", false).unwrap();
        assert!(r.register("A", false).is_err());
        for i in 1..MAX_TIERS {
            r.register(&format!("T{i}"), false).unwrap();
        }
        assert!(r.register("overflow", false).is_err());
    }

    #[test]
    fn standard_registries() {
        let r3 = TierRegistry::standard_three();
        assert_eq!(r3.len(), 3);
        assert!(r3.get(TierId(0)).unwrap().volatile);
        let r4 = TierRegistry::standard_four();
        assert_eq!(r4.len(), 4);
        assert_eq!(r4.by_name("Remote").unwrap().id, TierId(3));
    }
}
