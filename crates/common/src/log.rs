//! A minimal leveled, structured logger (no dependencies).
//!
//! Replaces the scattered ad-hoc `eprintln!` diagnostics with one format:
//!
//! ```text
//! ts=1722900000.123 level=warn target=net::client trace=00c0ffee00c0ffee msg="replica failed" block=17
//! ```
//!
//! - The level is controlled by the `OCTOPUS_LOG` environment variable
//!   (`error`, `warn`, `info`, `debug`; default `info`) or
//!   programmatically via [`set_level`].
//! - Every line carries a `target=` field (module path by default).
//! - When the calling thread is inside an active trace span, the line is
//!   stamped `trace=<hex id>` so log lines and traces cross-reference.
//!
//! Use through the [`log_error!`](crate::log_error),
//! [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info), and
//! [`log_debug!`](crate::log_debug) macros; the message is only formatted
//! when the level is enabled.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::LazyLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 0,
    /// Degraded operation the system routed around (failover, retry).
    Warn = 1,
    /// High-level lifecycle events.
    Info = 2,
    /// Verbose diagnostics.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            "off" | "none" => None,
            _ => Some(Level::Info),
        }
    }
}

// Stored as `level + 1`; 0 means logging is off.
const OFF: u8 = 0;

fn encode_level(level: Option<Level>) -> u8 {
    level.map(|l| l as u8 + 1).unwrap_or(OFF)
}

static LEVEL: LazyLock<AtomicU8> = LazyLock::new(|| {
    let initial = match std::env::var("OCTOPUS_LOG") {
        Ok(v) => encode_level(Level::parse(&v)),
        Err(_) => encode_level(Some(Level::Info)),
    };
    AtomicU8::new(initial)
});

/// Overrides the active level (`None` disables logging entirely).
pub fn set_level(level: Option<Level>) {
    LEVEL.store(encode_level(level), Ordering::Relaxed);
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8 + 1) <= LEVEL.load(Ordering::Relaxed)
}

/// Formats and writes one record to stderr. Callers use the macros, which
/// check [`enabled`] first so disabled levels cost one atomic load.
pub fn write(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let mut line = format!(
        "ts={}.{:03} level={} target={}",
        ts.as_secs(),
        ts.subsec_millis(),
        level.as_str(),
        target
    );
    if let Some(id) = crate::trace::current_trace_id() {
        line.push_str(&format!(" trace={id}"));
    }
    line.push(' ');
    let _ = fmt::write(&mut line, args);
    line.push('\n');
    // One write_all per record keeps concurrent lines whole.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Logs at [`Level::Error`]. `log_error!("msg {x}")` or with an explicit
/// target: `log_error!(target: "net::rpc", "msg {x}")`.
#[macro_export]
macro_rules! log_error {
    (target: $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
    ($($arg:tt)*) => { $crate::log_error!(target: module_path!(), $($arg)*) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    (target: $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
    ($($arg:tt)*) => { $crate::log_warn!(target: module_path!(), $($arg)*) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    (target: $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
    ($($arg:tt)*) => { $crate::log_info!(target: module_path!(), $($arg)*) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    (target: $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
    ($($arg:tt)*) => { $crate::log_debug!(target: module_path!(), $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests here mutate the process-global level; serialize them.
    static LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("garbage"), Some(Level::Info));
    }

    #[test]
    fn level_ordering_gates() {
        let _g = LEVEL_LOCK.lock().unwrap();
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(None);
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Info));
    }

    #[test]
    fn macros_compile_with_and_without_target() {
        let _g = LEVEL_LOCK.lock().unwrap();
        set_level(None); // silent in test output
        crate::log_info!("plain {}", 1);
        crate::log_warn!(target: "custom::target", "x={x}", x = 2);
        set_level(Some(Level::Info));
    }
}
