//! Cluster observability: named counters, gauges, and fixed-bucket latency
//! histograms over plain atomics.
//!
//! The paper's management policies run on *measured* signals — per-medium
//! `NrConn`, `WThru`/`RThru` (§3.2), and the replication monitor's view of
//! cluster health (§5) — so the reproduction needs those signals observable
//! end to end. This module is the substrate: a [`MetricsRegistry`] lives in
//! every long-lived component (master, each worker, every RPC client), hot
//! paths bump atomics through cheap cloned handles, and a
//! [`MetricsSnapshot`] travels over the `Metrics` RPC so the whole
//! cluster's state can be aggregated and asserted on.
//!
//! Design constraints, in order:
//!
//! - **Hot-path cost**: one `BTreeMap` read-lock lookup plus one relaxed
//!   atomic RMW. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//!   cloneable `Arc`s, so steady-state call sites can cache them and skip
//!   the lookup entirely.
//! - **No external dependencies**: values are `std` atomics; the registry
//!   map uses `std::sync::RwLock` (taken for write only on first use of a
//!   new `(name, labels)` pair).
//! - **Determinism**: the registry is a `BTreeMap` keyed by
//!   `(name, labels)`, so snapshots and the text exposition are fully
//!   ordered — byte-identical for identical metric states.
//!
//! # Naming scheme
//!
//! `<component>_<what>[_<unit>][_total]`, with the component one of
//! `rpc_client`, `master`, `worker`, `client`, or `cache`. Counters end in
//! `_total`; latency histograms end in `_us` (microseconds). Labels are
//! the closed set `{tier, worker, request_type, op, mode}`; absent labels
//! are omitted from the exposition.
//!
//! # Exposition format
//!
//! One line per sample, Prometheus-flavoured, sorted by kind
//! (counters, then gauges, then histograms) and within a kind by
//! `(name, labels)`:
//!
//! ```text
//! worker_read_bytes_total{tier="2",worker="1"} 1048576
//! worker_media_io_conn{tier="2",worker="1"} 0
//! rpc_client_request_us_bucket{request_type="ReadBlock",le="250"} 3
//! rpc_client_request_us_sum{request_type="ReadBlock"} 412
//! rpc_client_request_us_count{request_type="ReadBlock"} 3
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::ids::WorkerId;
use crate::tier::TierId;
use crate::wire::{Wire, WireReader};
use crate::Result;

/// Histogram bucket upper bounds for I/O latencies, in microseconds. The
/// last implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000];

/// Histogram bucket upper bounds for sub-millisecond operations
/// (metadata ops, lock wait/hold times), in microseconds. Metadata p50s
/// sit around 1–20µs; the I/O layout's first bucket (≤50µs) would swallow
/// them whole. The last implicit bucket is `+Inf`.
pub const MICRO_BUCKETS_US: [u64; 17] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000,
];

/// Which bucket bound table a histogram uses. The layout is recoverable
/// from a sample's bucket *count* (the two tables have distinct lengths),
/// so [`HistogramSample`]'s wire format is unchanged and snapshots from
/// older peers — always I/O-layout — still decode and render correctly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BucketLayout {
    /// [`LATENCY_BUCKETS_US`]: 50µs–250ms, tuned for block I/O and RPCs.
    #[default]
    Io,
    /// [`MICRO_BUCKETS_US`]: 1µs–250ms, tuned for metadata ops and locks.
    Micro,
}

impl BucketLayout {
    /// The finite bucket upper bounds for this layout.
    pub fn bounds(self) -> &'static [u64] {
        match self {
            BucketLayout::Io => &LATENCY_BUCKETS_US,
            BucketLayout::Micro => &MICRO_BUCKETS_US,
        }
    }

    /// Recovers the layout from a sample's bucket count (finite bounds
    /// plus the `+Inf` bucket). Unknown counts fall back to `Io` so
    /// foreign samples still render.
    pub fn for_bucket_count(n: usize) -> Self {
        if n == MICRO_BUCKETS_US.len() + 1 {
            BucketLayout::Micro
        } else {
            BucketLayout::Io
        }
    }
}

/// The closed label set every metric may carry. Instrument sites use
/// `&'static str` request types, so constructing labels never allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels {
    /// Storage tier the sample refers to.
    pub tier: Option<TierId>,
    /// Worker the sample refers to (stamped by worker-side registries so
    /// merged cluster snapshots stay distinguishable).
    pub worker: Option<WorkerId>,
    /// RPC request type (`"ReadBlock"`, `"Heartbeat"`, ...).
    pub request_type: Option<&'static str>,
    /// Logical operation or instrumented lock the sample refers to
    /// (`"create"`, `"delete"`, `"master.inner"`, ...).
    pub op: Option<&'static str>,
    /// Lock acquisition mode (`"sh"` shared / `"ex"` exclusive).
    pub mode: Option<&'static str>,
}

impl Labels {
    /// No labels.
    pub const NONE: Labels =
        Labels { tier: None, worker: None, request_type: None, op: None, mode: None };

    /// Labels with only a request type.
    pub fn req(request_type: &'static str) -> Self {
        Labels { request_type: Some(request_type), ..Self::NONE }
    }

    /// Labels with only a worker.
    pub fn worker(worker: WorkerId) -> Self {
        Labels { worker: Some(worker), ..Self::NONE }
    }

    /// Labels with only an operation (or lock) name.
    pub fn op(op: &'static str) -> Self {
        Labels { op: Some(op), ..Self::NONE }
    }

    /// Adds a tier.
    pub fn with_tier(mut self, tier: TierId) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Adds a request type.
    pub fn with_req(mut self, request_type: &'static str) -> Self {
        self.request_type = Some(request_type);
        self
    }

    /// Adds a lock acquisition mode.
    pub fn with_mode(mut self, mode: &'static str) -> Self {
        self.mode = Some(mode);
        self
    }
}

/// Owned form of [`Labels`] carried inside snapshots (wire-encodable).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct OwnedLabels {
    /// Storage tier.
    pub tier: Option<TierId>,
    /// Worker.
    pub worker: Option<WorkerId>,
    /// RPC request type.
    pub request_type: Option<String>,
    /// Logical operation or instrumented lock.
    pub op: Option<String>,
    /// Lock acquisition mode.
    pub mode: Option<String>,
}

impl From<Labels> for OwnedLabels {
    fn from(l: Labels) -> Self {
        OwnedLabels {
            tier: l.tier,
            worker: l.worker,
            request_type: l.request_type.map(String::from),
            op: l.op.map(String::from),
            mode: l.mode.map(String::from),
        }
    }
}

/// Escapes a label value per the Prometheus exposition rules: backslash,
/// double quote, and newline must be escaped or a value containing them
/// (worker addresses, request names from untrusted peers) would corrupt
/// the surrounding line structure.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl OwnedLabels {
    fn render(&self, out: &mut String, extra: Option<(&str, &str)>) {
        let mut parts: Vec<String> = Vec::new();
        if let Some(t) = self.tier {
            parts.push(format!("tier=\"{}\"", t.0));
        }
        if let Some(w) = self.worker {
            parts.push(format!("worker=\"{}\"", w.0));
        }
        if let Some(r) = &self.request_type {
            parts.push(format!("request_type=\"{}\"", escape_label_value(r)));
        }
        if let Some(o) = &self.op {
            parts.push(format!("op=\"{}\"", escape_label_value(o)));
        }
        if let Some(m) = &self.mode {
            parts.push(format!("mode=\"{}\"", escape_label_value(m)));
        }
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
        }
        if !parts.is_empty() {
            out.push('{');
            out.push_str(&parts.join(","));
            out.push('}');
        }
    }
}

impl Wire for OwnedLabels {
    fn put(&self, buf: &mut Vec<u8>) {
        self.tier.put(buf);
        self.worker.put(buf);
        self.request_type.put(buf);
        self.op.put(buf);
        self.mode.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(OwnedLabels {
            tier: Wire::get(r)?,
            worker: Wire::get(r)?,
            request_type: Wire::get(r)?,
            op: Wire::get(r)?,
            mode: Wire::get(r)?,
        })
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `v` if it is currently lower — for stamping
    /// an externally accumulated monotonic total (e.g. a collector's
    /// drop count) into the registry without double counting.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that goes up and down).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increments now and decrements when the returned guard drops —
    /// "active things" accounting (in-flight requests, open connections).
    pub fn inc_scoped(&self) -> GaugeGuard {
        self.add(1);
        GaugeGuard(self.clone())
    }
}

/// RAII guard from [`Gauge::inc_scoped`].
pub struct GaugeGuard(Gauge);

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// Shared storage of one histogram: per-bucket counts plus sum/count.
/// One slot per finite bound of its [`BucketLayout`], plus `+Inf`.
pub struct HistogramCore {
    layout: BucketLayout,
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn with_layout(layout: BucketLayout) -> Self {
        Self {
            layout,
            buckets: (0..layout.bounds().len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self::with_layout(BucketLayout::Io)
    }
}

/// A fixed-bucket latency histogram handle (microseconds).
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// An unregistered histogram with the given bucket layout (registered
    /// ones come from [`MetricsRegistry::histogram_with`]).
    pub fn with_layout(layout: BucketLayout) -> Self {
        Histogram(Arc::new(HistogramCore::with_layout(layout)))
    }

    /// Records one observation, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = self.0.layout.bounds().partition_point(|&b| us > b);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(us, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`.
    pub fn observe_since(&self, start: Instant) {
        self.observe_us(start.elapsed().as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

type Key = (&'static str, Labels);

/// A registry of named metrics. Cheap to share (`Arc`); hot paths pay one
/// read-locked map lookup (or nothing, with cached handles).
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<Key, Counter>>,
    gauges: RwLock<BTreeMap<Key, Gauge>>,
    histograms: RwLock<BTreeMap<Key, Histogram>>,
}

fn get_or_insert<V: Clone + Default>(map: &RwLock<BTreeMap<Key, V>>, key: Key) -> V {
    if let Some(v) = map.read().unwrap().get(&key) {
        return v.clone();
    }
    map.write().unwrap().entry(key).or_default().clone()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `(name, labels)`, creating it at zero.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        get_or_insert(&self.counters, (name, labels))
    }

    /// The gauge registered under `(name, labels)`, creating it at zero.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        get_or_insert(&self.gauges, (name, labels))
    }

    /// The histogram registered under `(name, labels)`, creating it empty
    /// with the I/O bucket layout.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Histogram {
        self.histogram_with(name, labels, BucketLayout::Io)
    }

    /// The histogram registered under `(name, labels)`, creating it empty
    /// with `layout`. The layout applies only on first registration; later
    /// lookups return the existing histogram unchanged.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: Labels,
        layout: BucketLayout,
    ) -> Histogram {
        let key = (name, labels);
        if let Some(v) = self.histograms.read().unwrap().get(&key) {
            return v.clone();
        }
        self.histograms
            .write()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Histogram::with_layout(layout))
            .clone()
    }

    /// Convenience: `counter(name, labels).inc()`.
    pub fn inc(&self, name: &'static str, labels: Labels) {
        self.counter(name, labels).inc();
    }

    /// Convenience: `counter(name, labels).add(n)`.
    pub fn add(&self, name: &'static str, labels: Labels, n: u64) {
        self.counter(name, labels).add(n);
    }

    /// Convenience: `histogram(name, labels).observe_since(start)`.
    pub fn observe_since(&self, name: &'static str, labels: Labels, start: Instant) {
        self.histogram(name, labels).observe_since(start);
    }

    /// A point-in-time copy of every metric, fully ordered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(&(name, labels), c)| CounterSample {
                name: name.to_string(),
                labels: labels.into(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(&(name, labels), g)| GaugeSample {
                name: name.to_string(),
                labels: labels.into(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(&(name, labels), h)| HistogramSample {
                name: name.to_string(),
                labels: labels.into(),
                buckets: h.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                sum: h.0.sum.load(Ordering::Relaxed),
                count: h.0.count.load(Ordering::Relaxed),
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// One counter sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: OwnedLabels,
    /// Value.
    pub value: u64,
}

/// One gauge sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: OwnedLabels,
    /// Value.
    pub value: i64,
}

/// One histogram sample: per-bucket counts (non-cumulative, last bucket is
/// `+Inf`), total sum (µs) and observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: OwnedLabels,
    /// Per-bucket observation counts, aligned to the finite bounds of the
    /// histogram's [`BucketLayout`] (recovered from the bucket count) plus
    /// a final `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Sum of observations (µs).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSample {
    /// The finite bucket bounds this sample was recorded against.
    pub fn bounds(&self) -> &'static [u64] {
        BucketLayout::for_bucket_count(self.buckets.len()).bounds()
    }

    /// Estimated quantile (`q` in `[0, 1]`), in microseconds: the upper
    /// bound of the bucket containing the `ceil(q·count)`-th observation.
    /// Observations in the `+Inf` bucket clamp to the last finite bound.
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let bounds = self.bounds();
        let mut cumulative = 0u64;
        for (i, v) in self.buckets.iter().enumerate() {
            cumulative += v;
            if cumulative >= rank {
                return bounds.get(i).copied().unwrap_or(*bounds.last().unwrap());
            }
        }
        *bounds.last().unwrap()
    }

    /// Mean observation, in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

macro_rules! wire_sample {
    ($t:ty, $($field:ident),+) => {
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                $( self.$field.put(buf); )+
            }
            fn get(r: &mut WireReader<'_>) -> Result<Self> {
                Ok(Self { $( $field: Wire::get(r)?, )+ })
            }
        }
    };
}

wire_sample!(CounterSample, name, labels, value);
wire_sample!(GaugeSample, name, labels, value);
wire_sample!(HistogramSample, name, labels, buckets, sum, count);

/// A point-in-time, wire-encodable copy of one or more registries.
///
/// Snapshots merge ([`MetricsSnapshot::merge`]): the master's and every
/// worker's snapshots combine into one cluster-wide view, with worker
/// samples kept distinguishable by their `worker` label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter samples, sorted by `(name, labels)`.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, sorted by `(name, labels)`.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, sorted by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
}

wire_sample!(MetricsSnapshot, counters, gauges, histograms);

impl MetricsSnapshot {
    /// Sum of a counter across all label sets.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Sum of a counter across label sets accepted by `pred`.
    pub fn counter_where(&self, name: &str, pred: impl Fn(&OwnedLabels) -> bool) -> u64 {
        self.counters.iter().filter(|s| s.name == name && pred(&s.labels)).map(|s| s.value).sum()
    }

    /// Sum of a gauge across all label sets.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Sum of a gauge across label sets accepted by `pred`.
    pub fn gauge_where(&self, name: &str, pred: impl Fn(&OwnedLabels) -> bool) -> i64 {
        self.gauges.iter().filter(|s| s.name == name && pred(&s.labels)).map(|s| s.value).sum()
    }

    /// Total observation count of a histogram across all label sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms.iter().filter(|s| s.name == name).map(|s| s.count).sum()
    }

    /// Whether any sample of any kind carries `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.counters.iter().any(|s| s.name == name)
            || self.gauges.iter().any(|s| s.name == name)
            || self.histograms.iter().any(|s| s.name == name)
    }

    /// Merges `other` into `self`: same-`(name, labels)` counters and
    /// gauges sum, histograms add bucket-wise. Result stays sorted.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for s in other.counters {
            match self.counters.binary_search_by(|e| {
                (e.name.as_str(), &e.labels).cmp(&(s.name.as_str(), &s.labels))
            }) {
                Ok(i) => self.counters[i].value += s.value,
                Err(i) => self.counters.insert(i, s),
            }
        }
        for s in other.gauges {
            match self.gauges.binary_search_by(|e| {
                (e.name.as_str(), &e.labels).cmp(&(s.name.as_str(), &s.labels))
            }) {
                Ok(i) => self.gauges[i].value += s.value,
                Err(i) => self.gauges.insert(i, s),
            }
        }
        for s in other.histograms {
            match self.histograms.binary_search_by(|e| {
                (e.name.as_str(), &e.labels).cmp(&(s.name.as_str(), &s.labels))
            }) {
                Ok(i) => {
                    let e = &mut self.histograms[i];
                    for (b, v) in e.buckets.iter_mut().zip(&s.buckets) {
                        *b += v;
                    }
                    e.sum += s.sum;
                    e.count += s.count;
                }
                Err(i) => self.histograms.insert(i, s),
            }
        }
    }

    /// The deterministic text exposition (see the module docs): counters,
    /// then gauges, then histograms, each sorted by `(name, labels)`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.counters {
            out.push_str(&s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.value);
        }
        for s in &self.gauges {
            out.push_str(&s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.value);
        }
        for s in &self.histograms {
            let bounds = s.bounds();
            let mut cumulative = 0u64;
            for (i, v) in s.buckets.iter().enumerate() {
                cumulative += v;
                let le = bounds.get(i).map(|b| b.to_string()).unwrap_or_else(|| "+Inf".to_string());
                let _ = write!(out, "{}_bucket", s.name);
                s.labels.render(&mut out, Some(("le", &le)));
                let _ = writeln!(out, " {cumulative}");
            }
            let _ = write!(out, "{}_sum", s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.sum);
            let _ = write!(out, "{}_count", s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};

    #[test]
    fn counters_and_gauges_register_and_count() {
        let r = MetricsRegistry::new();
        r.inc("x_total", Labels::NONE);
        r.add("x_total", Labels::req("Read"), 4);
        r.counter("x_total", Labels::req("Read")).inc();
        let g = r.gauge("y", Labels::NONE);
        g.set(7);
        g.add(-2);
        {
            let _held = g.inc_scoped();
            assert_eq!(r.gauge("y", Labels::NONE).get(), 6);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("x_total"), 6);
        assert_eq!(snap.counter_where("x_total", |l| l.request_type.is_none()), 1);
        assert_eq!(snap.gauge("y"), 5);
        assert!(snap.contains("x_total"));
        assert!(!snap.contains("z"));
    }

    #[test]
    fn histogram_buckets_partition_correctly() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_us", Labels::NONE);
        h.observe_us(49); // bucket 0 (≤50)
        h.observe_us(50); // bucket 0 (≤50)
        h.observe_us(51); // bucket 1 (≤100)
        h.observe_us(1_000_000); // +Inf bucket
        let snap = r.snapshot();
        let s = &snap.histograms[0];
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 49 + 50 + 51 + 1_000_000);
    }

    #[test]
    fn snapshot_round_trips_over_wire() {
        let r = MetricsRegistry::new();
        r.add("a_total", Labels::req("X").with_tier(TierId(2)), 3);
        r.gauge("b", Labels::worker(WorkerId(1))).set(-4);
        r.histogram("c_us", Labels::NONE).observe_us(123);
        let snap = r.snapshot();
        let back: MetricsSnapshot = decode(&encode(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_and_keeps_order() {
        let a = MetricsRegistry::new();
        a.add("m_total", Labels::NONE, 2);
        a.histogram("h_us", Labels::NONE).observe_us(10);
        let b = MetricsRegistry::new();
        b.add("m_total", Labels::NONE, 3);
        b.add("n_total", Labels::worker(WorkerId(2)), 1);
        b.histogram("h_us", Labels::NONE).observe_us(20);
        let mut merged = a.snapshot();
        merged.merge(b.snapshot());
        assert_eq!(merged.counter("m_total"), 5);
        assert_eq!(merged.counter("n_total"), 1);
        assert_eq!(merged.histogram_count("h_us"), 2);
        let names: Vec<&str> = merged.counters.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["m_total", "n_total"]);
    }

    #[test]
    fn exposition_is_deterministic_and_labeled() {
        let r = MetricsRegistry::new();
        r.add("req_total", Labels::req("Read").with_tier(TierId(1)), 2);
        r.gauge("conn", Labels::worker(WorkerId(3))).set(1);
        r.histogram("lat_us", Labels::req("Read")).observe_us(75);
        let text = r.snapshot().render_text();
        assert!(text.contains("req_total{tier=\"1\",request_type=\"Read\"} 2"), "{text}");
        assert!(text.contains("conn{worker=\"3\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{request_type=\"Read\",le=\"100\"} 1"), "{text}");
        assert!(text.contains("lat_us_count{request_type=\"Read\"} 1"), "{text}");
        assert_eq!(text, r.snapshot().render_text(), "identical state renders identically");
    }

    #[test]
    fn exposition_escapes_label_values() {
        // Label values can carry quotes, backslashes, and newlines (worker
        // addresses, hostile request names); the exposition must escape
        // them so one value cannot forge extra lines or labels.
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(CounterSample {
            name: "evil_total".into(),
            labels: OwnedLabels { request_type: Some("a\"b\\c\nd".into()), ..Default::default() },
            value: 1,
        });
        let text = snap.render_text();
        assert_eq!(text, "evil_total{request_type=\"a\\\"b\\\\c\\nd\"} 1\n");
        assert_eq!(text.lines().count(), 1, "newline in a value must not split the line");
    }

    #[test]
    fn micro_layout_resolves_sub_millisecond_latencies() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("meta_us", Labels::op("create"), BucketLayout::Micro);
        h.observe_us(1); // bucket 0 (≤1)
        h.observe_us(8); // bucket 3 (≤10)
        h.observe_us(9); // bucket 3 (≤10)
        h.observe_us(400); // bucket 8 (≤500)
        assert_eq!(h.sum_us(), 1 + 8 + 9 + 400);
        let snap = r.snapshot();
        let s = &snap.histograms[0];
        assert_eq!(s.buckets.len(), MICRO_BUCKETS_US.len() + 1);
        assert_eq!(s.bounds(), &MICRO_BUCKETS_US);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[3], 2);
        assert_eq!(s.buckets[8], 1);
        // Layout survives the wire and renders with micro `le=` bounds.
        let back: MetricsSnapshot = decode(&encode(&snap)).unwrap();
        let text = back.render_text();
        assert!(text.contains("meta_us_bucket{op=\"create\",le=\"10\"} 3"), "{text}");
        assert!(text.contains("meta_us_bucket{op=\"create\",le=\"+Inf\"} 4"), "{text}");
        // Mixed layouts in one registry stay independent.
        let io = r.histogram("io_us", Labels::NONE);
        io.observe_us(8);
        let s = &r.snapshot().histograms[0];
        assert_eq!(s.buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(s.buckets[0], 1, "8µs lands in the ≤50µs I/O bucket");
    }

    #[test]
    fn quantile_estimates_from_bucket_bounds() {
        let h = Histogram::with_layout(BucketLayout::Micro);
        for _ in 0..90 {
            h.observe_us(7); // ≤10 bucket
        }
        for _ in 0..10 {
            h.observe_us(450); // ≤500 bucket
        }
        let snap = MetricsSnapshot {
            histograms: vec![HistogramSample {
                name: "q_us".into(),
                labels: OwnedLabels::default(),
                buckets: (0..h.0.buckets.len())
                    .map(|i| h.0.buckets[i].load(Ordering::Relaxed))
                    .collect(),
                sum: h.sum_us(),
                count: h.count(),
            }],
            ..Default::default()
        };
        let s = &snap.histograms[0];
        assert_eq!(s.quantile_us(0.5), 10);
        assert_eq!(s.quantile_us(0.99), 500);
        assert_eq!(s.quantile_us(1.0), 500);
        assert!((s.mean_us() - (90.0 * 7.0 + 10.0 * 450.0) / 100.0).abs() < 1e-9);
        let empty = HistogramSample {
            name: "e_us".into(),
            labels: OwnedLabels::default(),
            buckets: vec![0; MICRO_BUCKETS_US.len() + 1],
            sum: 0,
            count: 0,
        };
        assert_eq!(empty.quantile_us(0.99), 0);
    }

    #[test]
    fn op_and_mode_labels_render_and_round_trip() {
        let r = MetricsRegistry::new();
        r.add("lock_contended_total", Labels::op("master.inner").with_mode("ex"), 2);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("lock_contended_total{op=\"master.inner\",mode=\"ex\"} 2"), "{text}");
        let back: MetricsSnapshot = decode(&encode(&snap)).unwrap();
        assert_eq!(back, snap);
        assert_eq!(
            snap.counter_where("lock_contended_total", |l| l.mode.as_deref() == Some("ex")),
            2
        );
    }

    #[test]
    fn counter_set_max_is_monotonic() {
        let c = Counter::default();
        c.set_max(5);
        assert_eq!(c.get(), 5);
        c.set_max(3);
        assert_eq!(c.get(), 5, "stamping a lower total must not regress");
        c.set_max(9);
        assert_eq!(c.get(), 9);
    }
}
