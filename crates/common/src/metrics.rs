//! Cluster observability: named counters, gauges, and fixed-bucket latency
//! histograms over plain atomics.
//!
//! The paper's management policies run on *measured* signals — per-medium
//! `NrConn`, `WThru`/`RThru` (§3.2), and the replication monitor's view of
//! cluster health (§5) — so the reproduction needs those signals observable
//! end to end. This module is the substrate: a [`MetricsRegistry`] lives in
//! every long-lived component (master, each worker, every RPC client), hot
//! paths bump atomics through cheap cloned handles, and a
//! [`MetricsSnapshot`] travels over the `Metrics` RPC so the whole
//! cluster's state can be aggregated and asserted on.
//!
//! Design constraints, in order:
//!
//! - **Hot-path cost**: one `BTreeMap` read-lock lookup plus one relaxed
//!   atomic RMW. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//!   cloneable `Arc`s, so steady-state call sites can cache them and skip
//!   the lookup entirely.
//! - **No external dependencies**: values are `std` atomics; the registry
//!   map uses `std::sync::RwLock` (taken for write only on first use of a
//!   new `(name, labels)` pair).
//! - **Determinism**: the registry is a `BTreeMap` keyed by
//!   `(name, labels)`, so snapshots and the text exposition are fully
//!   ordered — byte-identical for identical metric states.
//!
//! # Naming scheme
//!
//! `<component>_<what>[_<unit>][_total]`, with the component one of
//! `rpc_client`, `master`, `worker`, `client`, or `cache`. Counters end in
//! `_total`; latency histograms end in `_us` (microseconds). Labels are
//! the closed set `{tier, worker, request_type}`; absent labels are
//! omitted from the exposition.
//!
//! # Exposition format
//!
//! One line per sample, Prometheus-flavoured, sorted by kind
//! (counters, then gauges, then histograms) and within a kind by
//! `(name, labels)`:
//!
//! ```text
//! worker_read_bytes_total{tier="2",worker="1"} 1048576
//! worker_media_io_conn{tier="2",worker="1"} 0
//! rpc_client_request_us_bucket{request_type="ReadBlock",le="250"} 3
//! rpc_client_request_us_sum{request_type="ReadBlock"} 412
//! rpc_client_request_us_count{request_type="ReadBlock"} 3
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::ids::WorkerId;
use crate::tier::TierId;
use crate::wire::{Wire, WireReader};
use crate::Result;

/// Histogram bucket upper bounds for latencies, in microseconds. The last
/// implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000];

/// The closed label set every metric may carry. Instrument sites use
/// `&'static str` request types, so constructing labels never allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels {
    /// Storage tier the sample refers to.
    pub tier: Option<TierId>,
    /// Worker the sample refers to (stamped by worker-side registries so
    /// merged cluster snapshots stay distinguishable).
    pub worker: Option<WorkerId>,
    /// RPC request type (`"ReadBlock"`, `"Heartbeat"`, ...).
    pub request_type: Option<&'static str>,
}

impl Labels {
    /// No labels.
    pub const NONE: Labels = Labels { tier: None, worker: None, request_type: None };

    /// Labels with only a request type.
    pub fn req(request_type: &'static str) -> Self {
        Labels { request_type: Some(request_type), ..Self::NONE }
    }

    /// Labels with only a worker.
    pub fn worker(worker: WorkerId) -> Self {
        Labels { worker: Some(worker), ..Self::NONE }
    }

    /// Adds a tier.
    pub fn with_tier(mut self, tier: TierId) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Adds a request type.
    pub fn with_req(mut self, request_type: &'static str) -> Self {
        self.request_type = Some(request_type);
        self
    }
}

/// Owned form of [`Labels`] carried inside snapshots (wire-encodable).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct OwnedLabels {
    /// Storage tier.
    pub tier: Option<TierId>,
    /// Worker.
    pub worker: Option<WorkerId>,
    /// RPC request type.
    pub request_type: Option<String>,
}

impl From<Labels> for OwnedLabels {
    fn from(l: Labels) -> Self {
        OwnedLabels {
            tier: l.tier,
            worker: l.worker,
            request_type: l.request_type.map(String::from),
        }
    }
}

/// Escapes a label value per the Prometheus exposition rules: backslash,
/// double quote, and newline must be escaped or a value containing them
/// (worker addresses, request names from untrusted peers) would corrupt
/// the surrounding line structure.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl OwnedLabels {
    fn render(&self, out: &mut String, extra: Option<(&str, &str)>) {
        let mut parts: Vec<String> = Vec::new();
        if let Some(t) = self.tier {
            parts.push(format!("tier=\"{}\"", t.0));
        }
        if let Some(w) = self.worker {
            parts.push(format!("worker=\"{}\"", w.0));
        }
        if let Some(r) = &self.request_type {
            parts.push(format!("request_type=\"{}\"", escape_label_value(r)));
        }
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
        }
        if !parts.is_empty() {
            out.push('{');
            out.push_str(&parts.join(","));
            out.push('}');
        }
    }
}

impl Wire for OwnedLabels {
    fn put(&self, buf: &mut Vec<u8>) {
        self.tier.put(buf);
        self.worker.put(buf);
        self.request_type.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(OwnedLabels { tier: Wire::get(r)?, worker: Wire::get(r)?, request_type: Wire::get(r)? })
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `v` if it is currently lower — for stamping
    /// an externally accumulated monotonic total (e.g. a collector's
    /// drop count) into the registry without double counting.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that goes up and down).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increments now and decrements when the returned guard drops —
    /// "active things" accounting (in-flight requests, open connections).
    pub fn inc_scoped(&self) -> GaugeGuard {
        self.add(1);
        GaugeGuard(self.clone())
    }
}

/// RAII guard from [`Gauge::inc_scoped`].
pub struct GaugeGuard(Gauge);

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// Shared storage of one histogram: per-bucket counts plus sum/count.
pub struct HistogramCore {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket latency histogram handle (microseconds).
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US.partition_point(|&b| us > b);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(us, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`.
    pub fn observe_since(&self, start: Instant) {
        self.observe_us(start.elapsed().as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

type Key = (&'static str, Labels);

/// A registry of named metrics. Cheap to share (`Arc`); hot paths pay one
/// read-locked map lookup (or nothing, with cached handles).
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<Key, Counter>>,
    gauges: RwLock<BTreeMap<Key, Gauge>>,
    histograms: RwLock<BTreeMap<Key, Histogram>>,
}

fn get_or_insert<V: Clone + Default>(map: &RwLock<BTreeMap<Key, V>>, key: Key) -> V {
    if let Some(v) = map.read().unwrap().get(&key) {
        return v.clone();
    }
    map.write().unwrap().entry(key).or_default().clone()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `(name, labels)`, creating it at zero.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        get_or_insert(&self.counters, (name, labels))
    }

    /// The gauge registered under `(name, labels)`, creating it at zero.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        get_or_insert(&self.gauges, (name, labels))
    }

    /// The histogram registered under `(name, labels)`, creating it empty.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Histogram {
        get_or_insert(&self.histograms, (name, labels))
    }

    /// Convenience: `counter(name, labels).inc()`.
    pub fn inc(&self, name: &'static str, labels: Labels) {
        self.counter(name, labels).inc();
    }

    /// Convenience: `counter(name, labels).add(n)`.
    pub fn add(&self, name: &'static str, labels: Labels, n: u64) {
        self.counter(name, labels).add(n);
    }

    /// Convenience: `histogram(name, labels).observe_since(start)`.
    pub fn observe_since(&self, name: &'static str, labels: Labels, start: Instant) {
        self.histogram(name, labels).observe_since(start);
    }

    /// A point-in-time copy of every metric, fully ordered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(&(name, labels), c)| CounterSample {
                name: name.to_string(),
                labels: labels.into(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(&(name, labels), g)| GaugeSample {
                name: name.to_string(),
                labels: labels.into(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(&(name, labels), h)| HistogramSample {
                name: name.to_string(),
                labels: labels.into(),
                buckets: h.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                sum: h.0.sum.load(Ordering::Relaxed),
                count: h.0.count.load(Ordering::Relaxed),
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// One counter sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: OwnedLabels,
    /// Value.
    pub value: u64,
}

/// One gauge sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: OwnedLabels,
    /// Value.
    pub value: i64,
}

/// One histogram sample: per-bucket counts (non-cumulative, last bucket is
/// `+Inf`), total sum (µs) and observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: OwnedLabels,
    /// Per-bucket observation counts, aligned to [`LATENCY_BUCKETS_US`]
    /// plus a final `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Sum of observations (µs).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

macro_rules! wire_sample {
    ($t:ty, $($field:ident),+) => {
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                $( self.$field.put(buf); )+
            }
            fn get(r: &mut WireReader<'_>) -> Result<Self> {
                Ok(Self { $( $field: Wire::get(r)?, )+ })
            }
        }
    };
}

wire_sample!(CounterSample, name, labels, value);
wire_sample!(GaugeSample, name, labels, value);
wire_sample!(HistogramSample, name, labels, buckets, sum, count);

/// A point-in-time, wire-encodable copy of one or more registries.
///
/// Snapshots merge ([`MetricsSnapshot::merge`]): the master's and every
/// worker's snapshots combine into one cluster-wide view, with worker
/// samples kept distinguishable by their `worker` label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter samples, sorted by `(name, labels)`.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, sorted by `(name, labels)`.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, sorted by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
}

wire_sample!(MetricsSnapshot, counters, gauges, histograms);

impl MetricsSnapshot {
    /// Sum of a counter across all label sets.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Sum of a counter across label sets accepted by `pred`.
    pub fn counter_where(&self, name: &str, pred: impl Fn(&OwnedLabels) -> bool) -> u64 {
        self.counters.iter().filter(|s| s.name == name && pred(&s.labels)).map(|s| s.value).sum()
    }

    /// Sum of a gauge across all label sets.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Sum of a gauge across label sets accepted by `pred`.
    pub fn gauge_where(&self, name: &str, pred: impl Fn(&OwnedLabels) -> bool) -> i64 {
        self.gauges.iter().filter(|s| s.name == name && pred(&s.labels)).map(|s| s.value).sum()
    }

    /// Total observation count of a histogram across all label sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms.iter().filter(|s| s.name == name).map(|s| s.count).sum()
    }

    /// Whether any sample of any kind carries `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.counters.iter().any(|s| s.name == name)
            || self.gauges.iter().any(|s| s.name == name)
            || self.histograms.iter().any(|s| s.name == name)
    }

    /// Merges `other` into `self`: same-`(name, labels)` counters and
    /// gauges sum, histograms add bucket-wise. Result stays sorted.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for s in other.counters {
            match self.counters.binary_search_by(|e| {
                (e.name.as_str(), &e.labels).cmp(&(s.name.as_str(), &s.labels))
            }) {
                Ok(i) => self.counters[i].value += s.value,
                Err(i) => self.counters.insert(i, s),
            }
        }
        for s in other.gauges {
            match self.gauges.binary_search_by(|e| {
                (e.name.as_str(), &e.labels).cmp(&(s.name.as_str(), &s.labels))
            }) {
                Ok(i) => self.gauges[i].value += s.value,
                Err(i) => self.gauges.insert(i, s),
            }
        }
        for s in other.histograms {
            match self.histograms.binary_search_by(|e| {
                (e.name.as_str(), &e.labels).cmp(&(s.name.as_str(), &s.labels))
            }) {
                Ok(i) => {
                    let e = &mut self.histograms[i];
                    for (b, v) in e.buckets.iter_mut().zip(&s.buckets) {
                        *b += v;
                    }
                    e.sum += s.sum;
                    e.count += s.count;
                }
                Err(i) => self.histograms.insert(i, s),
            }
        }
    }

    /// The deterministic text exposition (see the module docs): counters,
    /// then gauges, then histograms, each sorted by `(name, labels)`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.counters {
            out.push_str(&s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.value);
        }
        for s in &self.gauges {
            out.push_str(&s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.value);
        }
        for s in &self.histograms {
            let mut cumulative = 0u64;
            for (i, v) in s.buckets.iter().enumerate() {
                cumulative += v;
                let le = LATENCY_BUCKETS_US
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = write!(out, "{}_bucket", s.name);
                s.labels.render(&mut out, Some(("le", &le)));
                let _ = writeln!(out, " {cumulative}");
            }
            let _ = write!(out, "{}_sum", s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.sum);
            let _ = write!(out, "{}_count", s.name);
            s.labels.render(&mut out, None);
            let _ = writeln!(out, " {}", s.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};

    #[test]
    fn counters_and_gauges_register_and_count() {
        let r = MetricsRegistry::new();
        r.inc("x_total", Labels::NONE);
        r.add("x_total", Labels::req("Read"), 4);
        r.counter("x_total", Labels::req("Read")).inc();
        let g = r.gauge("y", Labels::NONE);
        g.set(7);
        g.add(-2);
        {
            let _held = g.inc_scoped();
            assert_eq!(r.gauge("y", Labels::NONE).get(), 6);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("x_total"), 6);
        assert_eq!(snap.counter_where("x_total", |l| l.request_type.is_none()), 1);
        assert_eq!(snap.gauge("y"), 5);
        assert!(snap.contains("x_total"));
        assert!(!snap.contains("z"));
    }

    #[test]
    fn histogram_buckets_partition_correctly() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_us", Labels::NONE);
        h.observe_us(49); // bucket 0 (≤50)
        h.observe_us(50); // bucket 0 (≤50)
        h.observe_us(51); // bucket 1 (≤100)
        h.observe_us(1_000_000); // +Inf bucket
        let snap = r.snapshot();
        let s = &snap.histograms[0];
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 49 + 50 + 51 + 1_000_000);
    }

    #[test]
    fn snapshot_round_trips_over_wire() {
        let r = MetricsRegistry::new();
        r.add("a_total", Labels::req("X").with_tier(TierId(2)), 3);
        r.gauge("b", Labels::worker(WorkerId(1))).set(-4);
        r.histogram("c_us", Labels::NONE).observe_us(123);
        let snap = r.snapshot();
        let back: MetricsSnapshot = decode(&encode(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_and_keeps_order() {
        let a = MetricsRegistry::new();
        a.add("m_total", Labels::NONE, 2);
        a.histogram("h_us", Labels::NONE).observe_us(10);
        let b = MetricsRegistry::new();
        b.add("m_total", Labels::NONE, 3);
        b.add("n_total", Labels::worker(WorkerId(2)), 1);
        b.histogram("h_us", Labels::NONE).observe_us(20);
        let mut merged = a.snapshot();
        merged.merge(b.snapshot());
        assert_eq!(merged.counter("m_total"), 5);
        assert_eq!(merged.counter("n_total"), 1);
        assert_eq!(merged.histogram_count("h_us"), 2);
        let names: Vec<&str> = merged.counters.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["m_total", "n_total"]);
    }

    #[test]
    fn exposition_is_deterministic_and_labeled() {
        let r = MetricsRegistry::new();
        r.add("req_total", Labels::req("Read").with_tier(TierId(1)), 2);
        r.gauge("conn", Labels::worker(WorkerId(3))).set(1);
        r.histogram("lat_us", Labels::req("Read")).observe_us(75);
        let text = r.snapshot().render_text();
        assert!(text.contains("req_total{tier=\"1\",request_type=\"Read\"} 2"), "{text}");
        assert!(text.contains("conn{worker=\"3\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{request_type=\"Read\",le=\"100\"} 1"), "{text}");
        assert!(text.contains("lat_us_count{request_type=\"Read\"} 1"), "{text}");
        assert_eq!(text, r.snapshot().render_text(), "identical state renders identically");
    }

    #[test]
    fn exposition_escapes_label_values() {
        // Label values can carry quotes, backslashes, and newlines (worker
        // addresses, hostile request names); the exposition must escape
        // them so one value cannot forge extra lines or labels.
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(CounterSample {
            name: "evil_total".into(),
            labels: OwnedLabels {
                tier: None,
                worker: None,
                request_type: Some("a\"b\\c\nd".into()),
            },
            value: 1,
        });
        let text = snap.render_text();
        assert_eq!(text, "evil_total{request_type=\"a\\\"b\\\\c\\nd\"} 1\n");
        assert_eq!(text.lines().count(), 1, "newline in a value must not split the line");
    }

    #[test]
    fn counter_set_max_is_monotonic() {
        let c = Counter::default();
        c.set_max(5);
        assert_eq!(c.get(), 5);
        c.set_max(3);
        assert_eq!(c.get(), 5, "stamping a lower total must not regress");
        c.set_max(9);
        assert_eq!(c.get(), 9);
    }
}
