//! The replication vector (paper §2.3).
//!
//! A [`ReplicationVector`] specifies, per storage tier, how many replicas of
//! a file's blocks should live on that tier, plus an *Unspecified* count `U`
//! of replicas whose tier the system's placement policy chooses. The paper
//! encodes the vector in 64 bits; we use eight 8-bit slots — slots 0..=6 for
//! tiers, slot 7 for `U` — so a single `u64` round-trips through the
//! namespace, the edit log, and the wire format.
//!
//! Changing a file's vector expresses the four §2.3 operations (move, copy,
//! re-replicate within a tier, delete from a tier) uniformly; [`VectorDiff`]
//! computes which replicas must be added and removed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::{FsError, Result};
use crate::tier::{StorageTier, TierId, MAX_TIERS, UNSPECIFIED_SLOT};

/// Per-tier replica counts plus an unspecified count, packed into a `u64`.
///
/// ```
/// use octopus_common::{ReplicationVector, StorageTier};
///
/// // The paper's ⟨M,S,H⟩ = ⟨1,0,2⟩: one memory replica, two on HDDs.
/// let v = ReplicationVector::msh(1, 0, 2);
/// assert_eq!(v.total(), 3);
/// assert_eq!(v.storage_tier(StorageTier::Memory), 1);
///
/// // Moving a replica HDD → SSD is just a vector diff (§2.3).
/// let target = ReplicationVector::msh(1, 1, 1);
/// let diff = v.diff(target);
/// assert_eq!(diff.additions().next(), Some((StorageTier::Ssd.id(), 1)));
/// assert_eq!(diff.removals().next(), Some((StorageTier::Hdd.id(), 1)));
///
/// // 64-bit codec and HDFS backwards compatibility.
/// assert_eq!(ReplicationVector::from_bits(v.to_bits()), v);
/// assert_eq!(ReplicationVector::from_replication_factor(3).unspecified(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord)]
pub struct ReplicationVector(u64);

impl ReplicationVector {
    /// The all-zero vector (no replicas anywhere).
    pub const EMPTY: ReplicationVector = ReplicationVector(0);

    /// Maximum replica count storable per slot.
    pub const MAX_PER_SLOT: u8 = u8::MAX;

    /// Creates a vector from explicit per-slot counts. `counts[i]` is the
    /// count for tier slot `i`; missing slots are zero.
    pub fn from_counts(counts: &[u8], unspecified: u8) -> Self {
        debug_assert!(counts.len() <= MAX_TIERS);
        let mut v = ReplicationVector(0);
        for (i, &c) in counts.iter().enumerate() {
            v = v.with_tier(TierId(i as u8), c);
        }
        v.with_unspecified(unspecified)
    }

    /// HDFS backwards compatibility (paper §2.3): the old single replication
    /// factor `r` becomes a vector with `U = r`.
    pub fn from_replication_factor(r: u8) -> Self {
        ReplicationVector(0).with_unspecified(r)
    }

    /// Convenience for the paper's ⟨M, S, H⟩ notation over the canonical
    /// Memory/SSD/HDD tiers.
    pub fn msh(memory: u8, ssd: u8, hdd: u8) -> Self {
        Self::from_counts(&[memory, ssd, hdd], 0)
    }

    /// Convenience for the paper's ⟨M, S, H, R, U⟩ notation.
    pub fn mshru(memory: u8, ssd: u8, hdd: u8, remote: u8, unspecified: u8) -> Self {
        Self::from_counts(&[memory, ssd, hdd, remote], unspecified)
    }

    /// The raw 64-bit encoding.
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a vector from its 64-bit encoding.
    pub fn from_bits(bits: u64) -> Self {
        ReplicationVector(bits)
    }

    fn slot(self, slot: u8) -> u8 {
        debug_assert!(slot < 8);
        ((self.0 >> (slot * 8)) & 0xff) as u8
    }

    fn with_slot(self, slot: u8, count: u8) -> Self {
        debug_assert!(slot < 8);
        let shift = slot * 8;
        ReplicationVector((self.0 & !(0xffu64 << shift)) | ((count as u64) << shift))
    }

    /// Replica count pinned to tier `t`.
    pub fn tier(self, t: TierId) -> u8 {
        self.slot(t.0)
    }

    /// Replica count pinned to a canonical tier.
    pub fn storage_tier(self, t: StorageTier) -> u8 {
        self.tier(t.id())
    }

    /// Returns a copy with tier `t`'s count replaced.
    pub fn with_tier(self, t: TierId, count: u8) -> Self {
        self.with_slot(t.0, count)
    }

    /// The unspecified count `U`.
    pub fn unspecified(self) -> u8 {
        self.slot(UNSPECIFIED_SLOT)
    }

    /// Returns a copy with the unspecified count replaced.
    pub fn with_unspecified(self, count: u8) -> Self {
        self.with_slot(UNSPECIFIED_SLOT, count)
    }

    /// Total number of replicas (all tiers plus unspecified).
    pub fn total(self) -> u32 {
        (0..8).map(|s| self.slot(s) as u32).sum()
    }

    /// Number of replicas pinned to specific tiers (total minus `U`).
    pub fn specified_total(self) -> u32 {
        self.total() - self.unspecified() as u32
    }

    /// Whether the vector requests no replicas at all.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates `(TierId, count)` over tier slots with a non-zero count.
    pub fn iter_tiers(self) -> impl Iterator<Item = (TierId, u8)> {
        (0..MAX_TIERS as u8).map(move |s| (TierId(s), self.slot(s))).filter(|&(_, c)| c > 0)
    }

    /// Validates the vector against a cluster with `num_tiers` configured
    /// tiers: counts outside configured tiers must be zero and the total
    /// must not exceed `max_total`.
    pub fn validate(self, num_tiers: usize, max_total: u32) -> Result<()> {
        for s in num_tiers as u8..MAX_TIERS as u8 {
            if self.slot(s) != 0 {
                return Err(FsError::InvalidReplicationVector(format!(
                    "tier slot {s} has {} replicas but only {num_tiers} tiers are configured",
                    self.slot(s)
                )));
            }
        }
        if self.total() > max_total {
            return Err(FsError::InvalidReplicationVector(format!(
                "total replication {} exceeds maximum {max_total}",
                self.total()
            )));
        }
        Ok(())
    }

    /// Computes the change from `self` to `target` (paper §2.3's
    /// move/copy/add/delete semantics fall out of this diff).
    pub fn diff(self, target: ReplicationVector) -> VectorDiff {
        let mut per_tier = [0i16; MAX_TIERS];
        for (i, d) in per_tier.iter_mut().enumerate() {
            *d = target.slot(i as u8) as i16 - self.slot(i as u8) as i16;
        }
        VectorDiff {
            per_tier,
            unspecified: target.unspecified() as i16 - self.unspecified() as i16,
        }
    }
}

impl fmt::Debug for ReplicationVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReplicationVector({self})")
    }
}

/// Formats as `<c0,c1,...,c6;U>`, e.g. `<1,0,2,0,0,0,0;0>`. The paper's
/// shorthand ⟨M,S,H,R,U⟩ corresponds to the first four slots plus `U`.
impl fmt::Display for ReplicationVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for s in 0..MAX_TIERS as u8 {
            if s > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.slot(s))?;
        }
        write!(f, ";{}>", self.unspecified())
    }
}

/// Parses the [`fmt::Display`] format, tolerating fewer than seven tier
/// counts (missing slots are zero): `"<1,0,2;0>"`, `"<0,3,0>"`.
impl FromStr for ReplicationVector {
    type Err = FsError;

    fn from_str(s: &str) -> Result<Self> {
        let inner = s
            .trim()
            .strip_prefix('<')
            .and_then(|t| t.strip_suffix('>'))
            .ok_or_else(|| FsError::InvalidReplicationVector(format!("bad format: {s:?}")))?;
        let (tiers_part, unspec_part) = match inner.split_once(';') {
            Some((a, b)) => (a, Some(b)),
            None => (inner, None),
        };
        let mut v = ReplicationVector(0);
        let parse = |tok: &str| {
            tok.trim()
                .parse::<u8>()
                .map_err(|e| FsError::InvalidReplicationVector(format!("{tok:?}: {e}")))
        };
        for (i, tok) in tiers_part.split(',').enumerate() {
            if i >= MAX_TIERS {
                return Err(FsError::InvalidReplicationVector(format!(
                    "too many tier counts in {s:?}"
                )));
            }
            v = v.with_tier(TierId(i as u8), parse(tok)?);
        }
        if let Some(u) = unspec_part {
            v = v.with_unspecified(parse(u)?);
        }
        Ok(v)
    }
}

/// The delta between two replication vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorDiff {
    /// Signed per-tier replica-count changes, indexed by tier slot.
    pub per_tier: [i16; MAX_TIERS],
    /// Signed change of the unspecified count.
    pub unspecified: i16,
}

impl VectorDiff {
    /// Tiers that gain replicas, with the number gained.
    pub fn additions(&self) -> impl Iterator<Item = (TierId, u8)> + '_ {
        self.per_tier
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > 0)
            .map(|(i, &d)| (TierId(i as u8), d as u8))
    }

    /// Tiers that lose replicas, with the number lost.
    pub fn removals(&self) -> impl Iterator<Item = (TierId, u8)> + '_ {
        self.per_tier
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d < 0)
            .map(|(i, &d)| (TierId(i as u8), (-d) as u8))
    }

    /// True when nothing changes.
    pub fn is_noop(&self) -> bool {
        self.unspecified == 0 && self.per_tier.iter().all(|&d| d == 0)
    }

    /// Net change in total replica count.
    pub fn net_total(&self) -> i32 {
        self.per_tier.iter().map(|&d| d as i32).sum::<i32>() + self.unspecified as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        let v = ReplicationVector::mshru(1, 0, 2, 0, 3);
        let bits = v.to_bits();
        assert_eq!(ReplicationVector::from_bits(bits), v);
        assert_eq!(v.storage_tier(StorageTier::Memory), 1);
        assert_eq!(v.storage_tier(StorageTier::Hdd), 2);
        assert_eq!(v.unspecified(), 3);
        assert_eq!(v.total(), 6);
        assert_eq!(v.specified_total(), 3);
    }

    #[test]
    fn from_replication_factor_is_backwards_compatible() {
        let v = ReplicationVector::from_replication_factor(3);
        assert_eq!(v.total(), 3);
        assert_eq!(v.unspecified(), 3);
        assert_eq!(v.specified_total(), 0);
    }

    #[test]
    fn display_and_parse() {
        let v = ReplicationVector::msh(1, 0, 2);
        assert_eq!(v.to_string(), "<1,0,2,0,0,0,0;0>");
        assert_eq!("<1,0,2,0,0,0,0;0>".parse::<ReplicationVector>().unwrap(), v);
        assert_eq!("<1,0,2>".parse::<ReplicationVector>().unwrap(), v);
        assert_eq!(
            "<0,1,0;2>".parse::<ReplicationVector>().unwrap(),
            ReplicationVector::msh(0, 1, 0).with_unspecified(2)
        );
        assert!("1,0,2".parse::<ReplicationVector>().is_err());
        assert!("<1,0,2,0,0,0,0,0,0>".parse::<ReplicationVector>().is_err());
        assert!("<a>".parse::<ReplicationVector>().is_err());
    }

    #[test]
    fn paper_move_example() {
        // ⟨1,0,2⟩ → ⟨1,1,1⟩ moves one replica from HDD to SSD.
        let d = ReplicationVector::msh(1, 0, 2).diff(ReplicationVector::msh(1, 1, 1));
        let adds: Vec<_> = d.additions().collect();
        let rems: Vec<_> = d.removals().collect();
        assert_eq!(adds, vec![(StorageTier::Ssd.id(), 1)]);
        assert_eq!(rems, vec![(StorageTier::Hdd.id(), 1)]);
        assert_eq!(d.net_total(), 0);
    }

    #[test]
    fn paper_copy_example() {
        // ⟨1,0,2⟩ → ⟨1,1,2⟩ copies one replica to SSD (total 3 → 4).
        let d = ReplicationVector::msh(1, 0, 2).diff(ReplicationVector::msh(1, 1, 2));
        assert_eq!(d.additions().collect::<Vec<_>>(), vec![(StorageTier::Ssd.id(), 1)]);
        assert_eq!(d.removals().count(), 0);
        assert_eq!(d.net_total(), 1);
    }

    #[test]
    fn paper_delete_example() {
        // ⟨1,0,2⟩ → ⟨0,0,2⟩ deletes the in-memory replica (total 3 → 2).
        let d = ReplicationVector::msh(1, 0, 2).diff(ReplicationVector::msh(0, 0, 2));
        assert_eq!(d.removals().collect::<Vec<_>>(), vec![(StorageTier::Memory.id(), 1)]);
        assert_eq!(d.net_total(), -1);
    }

    #[test]
    fn validate_rejects_unconfigured_tier_and_excess_total() {
        let v = ReplicationVector::mshru(0, 0, 0, 2, 0);
        assert!(v.validate(3, 10).is_err()); // remote tier not configured
        assert!(v.validate(4, 10).is_ok());
        let big = ReplicationVector::from_replication_factor(200);
        assert!(big.validate(3, 16).is_err());
    }

    #[test]
    fn iter_tiers_skips_zeroes() {
        let v = ReplicationVector::msh(1, 0, 2);
        let got: Vec<_> = v.iter_tiers().collect();
        assert_eq!(got, vec![(TierId(0), 1), (TierId(2), 2)]);
    }

    #[test]
    fn noop_diff() {
        let v = ReplicationVector::msh(1, 1, 1);
        assert!(v.diff(v).is_noop());
    }
}
