//! Block metadata and payloads.
//!
//! File content is split into large blocks (128 MB by default), each
//! independently replicated across workers and tiers (paper §2.1). A block's
//! payload is either *real bytes* (functional data path, examples, tests) or
//! a *synthetic descriptor* (length + seed) used by the large simulated
//! experiments so that writing "40 GB" does not allocate 40 GB.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::checksum::{crc32, Crc32};
use crate::ids::{BlockId, GenStamp, MediaId, WorkerId};
use crate::tier::TierId;

/// Immutable identity + length of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// Block identifier.
    pub id: BlockId,
    /// Generation stamp (bumped on re-replication/recovery).
    pub gen: GenStamp,
    /// Payload length in bytes.
    pub len: u64,
}

/// One replica location: the medium, its worker, and its tier — exactly the
/// triple the client sees via `getFileBlockLocations` (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Hosting worker.
    pub worker: WorkerId,
    /// Hosting storage medium.
    pub media: MediaId,
    /// Storage tier of the medium.
    pub tier: TierId,
}

/// A block plus its byte offset within the file and its replica locations,
/// ordered by the data-retrieval policy (§4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocatedBlock {
    /// The block.
    pub block: Block,
    /// Byte offset of the block within its file.
    pub offset: u64,
    /// Replica locations, best-to-read-first.
    pub locations: Vec<Location>,
}

impl LocatedBlock {
    /// End offset (exclusive) of this block within the file.
    pub fn end(&self) -> u64 {
        self.offset + self.block.len
    }

    /// Whether the byte range `[start, start+len)` overlaps this block.
    pub fn overlaps(&self, start: u64, len: u64) -> bool {
        let range_end = start.saturating_add(len);
        self.offset < range_end && start < self.end()
    }
}

/// Block payload: real bytes or a synthetic descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockData {
    /// Actual bytes, checksummed with CRC-32.
    Real(Bytes),
    /// Synthetic payload of `len` bytes, reproducible from `seed`. Used by
    /// simulation-scale experiments; its checksum is derived from
    /// `(len, seed)` so end-to-end verification still exercises the
    /// checksum plumbing.
    Synthetic {
        /// Payload length in bytes.
        len: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl BlockData {
    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            BlockData::Real(b) => b.len() as u64,
            BlockData::Synthetic { len, .. } => *len,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// CRC-32 of the payload. For synthetic payloads the checksum covers the
    /// descriptor, which is what a synthetic store persists.
    pub fn checksum(&self) -> u32 {
        match self {
            BlockData::Real(b) => crc32(b),
            BlockData::Synthetic { len, seed } => {
                let mut c = Crc32::new();
                c.update(&len.to_le_bytes());
                c.update(&seed.to_le_bytes());
                c.finish()
            }
        }
    }

    /// Builds a real payload of `len` pseudo-random bytes from `seed`
    /// (xorshift64*; deterministic, dependency-free).
    pub fn generate_real(len: usize, seed: u64) -> BlockData {
        let mut out = Vec::with_capacity(len);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        while out.len() < len {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let word = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let bytes = word.to_le_bytes();
            let take = (len - out.len()).min(8);
            out.extend_from_slice(&bytes[..take]);
        }
        BlockData::Real(Bytes::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn located_block_ranges() {
        let lb = LocatedBlock {
            block: Block { id: BlockId(1), gen: GenStamp(0), len: 100 },
            offset: 200,
            locations: vec![],
        };
        assert_eq!(lb.end(), 300);
        assert!(lb.overlaps(250, 10));
        assert!(lb.overlaps(150, 60)); // touches the first byte
        assert!(!lb.overlaps(300, 10)); // starts exactly at end
        assert!(!lb.overlaps(100, 100)); // ends exactly at offset
        assert!(lb.overlaps(0, u64::MAX)); // saturating range
    }

    #[test]
    fn synthetic_checksum_depends_on_len_and_seed() {
        let a = BlockData::Synthetic { len: 10, seed: 1 };
        let b = BlockData::Synthetic { len: 10, seed: 2 };
        let c = BlockData::Synthetic { len: 11, seed: 1 };
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
        assert_eq!(a.checksum(), BlockData::Synthetic { len: 10, seed: 1 }.checksum());
    }

    #[test]
    fn generate_real_is_deterministic() {
        let a = BlockData::generate_real(1000, 42);
        let b = BlockData::generate_real(1000, 42);
        let c = BlockData::generate_real(1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn generate_real_handles_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63] {
            let d = BlockData::generate_real(len, 7);
            assert_eq!(d.len(), len as u64);
        }
        assert!(BlockData::generate_real(0, 7).is_empty());
    }
}
