//! Placement decision audit: structured records of *why* the policy layer
//! chose the replicas it chose.
//!
//! Every placement (`AddBlock`/`ReassignBlock`/re-replication), retrieval
//! ordering, and removal decision can record a [`DecisionEvent`]: the
//! candidate media it considered, each candidate's per-objective MOOP
//! scores (§3.2, Eq. 11), and what was chosen. Events land in a bounded
//! per-master [`AuditRing`] — oldest evicted, never panicking — and are
//! queryable by block id over the idempotent `ExplainPlacement` RPC, so an
//! operator can ask "why did this block land on HDD?" and get the actual
//! scored ranking back, not a guess.
//!
//! Everything here is wire-encodable; the policies crate fills candidates
//! in, the master stamps identity (`seq`, `when_ms`, block, file) and
//! retains the ring.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::block::Location;
use crate::ids::{BlockId, INodeId, MediaId, WorkerId};
use crate::lockstat::{LockStats, StatMutex};
use crate::tier::TierId;
use crate::wire::{Wire, WireReader};
use crate::{FsError, Result};

/// Default bound of the master's audit ring.
pub const DEFAULT_AUDIT_CAPACITY: usize = 4096;

/// What kind of decision an event records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DecisionKind {
    /// Initial placement of a new block (`AddBlock`) or a monitor
    /// re-replication target choice.
    #[default]
    Placement,
    /// Re-placement of a failed block slot (`ReassignBlock`).
    Reassign,
    /// Replica ordering for a read (§4.2, Eq. 12): `total` holds each
    /// location's estimated transfer rate.
    Retrieval,
    /// Replica removal for an over-replicated block (§5, leave-one-out):
    /// `total` holds the cluster score *with the candidate removed*.
    Removal,
    /// An automated tiering move: the migration planner changed a file's
    /// replication vector because its heat classification changed
    /// (promotion toward faster tiers or demotion toward slower ones).
    /// Recorded once per migrated file against its first block; `policy`
    /// carries the classifier name, direction, score, and the old → new
    /// vectors.
    Migration,
}

impl DecisionKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            DecisionKind::Placement => "placement",
            DecisionKind::Reassign => "reassign",
            DecisionKind::Retrieval => "retrieval",
            DecisionKind::Removal => "removal",
            DecisionKind::Migration => "migration",
        }
    }
}

impl Wire for DecisionKind {
    fn put(&self, buf: &mut Vec<u8>) {
        let b: u8 = match self {
            DecisionKind::Placement => 0,
            DecisionKind::Reassign => 1,
            DecisionKind::Retrieval => 2,
            DecisionKind::Removal => 3,
            DecisionKind::Migration => 4,
        };
        b.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match u8::get(r)? {
            0 => DecisionKind::Placement,
            1 => DecisionKind::Reassign,
            2 => DecisionKind::Retrieval,
            3 => DecisionKind::Removal,
            4 => DecisionKind::Migration,
            v => return Err(FsError::Io(format!("bad decision kind {v}"))),
        })
    }
}

/// One scored candidate within a decision round.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Candidate medium.
    pub media: MediaId,
    /// Its worker.
    pub worker: WorkerId,
    /// Its tier.
    pub tier: TierId,
    /// The decision metric: Eq. 11 global-criterion distance for
    /// placements/removals (lower is better), estimated transfer rate for
    /// retrievals (higher is better).
    pub total: f64,
    /// Data-balancing objective value `f_DB` of the trial set.
    pub db: f64,
    /// Load-balancing objective value `f_LB`.
    pub lb: f64,
    /// Fault-tolerance objective value `f_FT`.
    pub ft: f64,
    /// Throughput-maximization objective value `f_TM`.
    pub tm: f64,
    /// Whether this candidate was the one chosen.
    pub chosen: bool,
}

impl Wire for CandidateScore {
    fn put(&self, buf: &mut Vec<u8>) {
        self.media.put(buf);
        self.worker.put(buf);
        self.tier.put(buf);
        self.total.put(buf);
        self.db.put(buf);
        self.lb.put(buf);
        self.ft.put(buf);
        self.tm.put(buf);
        self.chosen.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(CandidateScore {
            media: Wire::get(r)?,
            worker: Wire::get(r)?,
            tier: Wire::get(r)?,
            total: Wire::get(r)?,
            db: Wire::get(r)?,
            lb: Wire::get(r)?,
            ft: Wire::get(r)?,
            tm: Wire::get(r)?,
            chosen: Wire::get(r)?,
        })
    }
}

/// One replica slot's solve: the candidates considered and the winner.
/// A greedy MOOP placement of an `n`-replica vector records `n` rounds
/// (Algorithm 2 runs Algorithm 1 once per slot).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionRound {
    /// Which replica slot this round placed (0-based).
    pub replica_index: u32,
    /// The slot's tier pin from the replication vector, if any.
    pub tier_pin: Option<TierId>,
    /// Every candidate evaluated, with its scores.
    pub candidates: Vec<CandidateScore>,
    /// The chosen medium (`None` when the round deferred the replica).
    pub chosen_media: Option<MediaId>,
}

impl Wire for DecisionRound {
    fn put(&self, buf: &mut Vec<u8>) {
        self.replica_index.put(buf);
        self.tier_pin.put(buf);
        self.candidates.put(buf);
        self.chosen_media.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(DecisionRound {
            replica_index: Wire::get(r)?,
            tier_pin: Wire::get(r)?,
            candidates: Wire::get(r)?,
            chosen_media: Wire::get(r)?,
        })
    }
}

/// One complete, audited decision.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionEvent {
    /// Monotonic sequence number, stamped by the ring.
    pub seq: u64,
    /// Master clock when the decision was made (heartbeat time base).
    pub when_ms: u64,
    /// Decision kind.
    pub kind: DecisionKind,
    /// The block decided about.
    pub block: BlockId,
    /// The owning file.
    pub file: INodeId,
    /// Name of the deciding policy (`"MOOP"`, `"OctopusFS"`, ...).
    pub policy: String,
    /// The outcome: scheduled pipeline locations for placements, the
    /// serving order for retrievals, the removed replica for removals.
    pub chosen: Vec<Location>,
    /// Per-slot solve detail (one round per replica for placements; a
    /// single round for retrievals and removals).
    pub rounds: Vec<DecisionRound>,
}

impl Wire for DecisionEvent {
    fn put(&self, buf: &mut Vec<u8>) {
        self.seq.put(buf);
        self.when_ms.put(buf);
        self.kind.put(buf);
        self.block.put(buf);
        self.file.put(buf);
        self.policy.put(buf);
        self.chosen.put(buf);
        self.rounds.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(DecisionEvent {
            seq: Wire::get(r)?,
            when_ms: Wire::get(r)?,
            kind: Wire::get(r)?,
            block: Wire::get(r)?,
            file: Wire::get(r)?,
            policy: Wire::get(r)?,
            chosen: Wire::get(r)?,
            rounds: Wire::get(r)?,
        })
    }
}

struct RingInner {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<DecisionEvent>,
}

/// A bounded, internally locked ring of [`DecisionEvent`]s. Oldest events
/// are evicted at capacity — counted in [`AuditRing::dropped`], never
/// silently — and pushing never panics or blocks on readers beyond the
/// short mutex hold.
pub struct AuditRing {
    capacity: usize,
    inner: StatMutex<RingInner>,
}

impl Default for AuditRing {
    fn default() -> Self {
        Self::new(DEFAULT_AUDIT_CAPACITY)
    }
}

impl AuditRing {
    /// A ring holding up to `capacity` events (≥1).
    pub fn new(capacity: usize) -> Self {
        AuditRing {
            capacity: capacity.max(1),
            inner: StatMutex::new(RingInner { next_seq: 0, dropped: 0, events: VecDeque::new() }),
        }
    }

    /// [`AuditRing::new`] with the internal mutex instrumented for lock
    /// contention statistics.
    pub fn with_stats(capacity: usize, stats: Arc<LockStats>) -> Self {
        AuditRing {
            capacity: capacity.max(1),
            inner: StatMutex::instrumented(
                RingInner { next_seq: 0, dropped: 0, events: VecDeque::new() },
                stats,
            ),
        }
    }

    /// Records an event, stamping its `seq`, and returns that sequence
    /// number. Evicts the oldest event when full.
    pub fn push(&self, mut event: DecisionEvent) -> u64 {
        let mut g = self.inner.lock();
        let seq = g.next_seq;
        g.next_seq += 1;
        event.seq = seq;
        g.events.push_back(event);
        while g.events.len() > self.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        seq
    }

    /// Every retained event about `block`, oldest first.
    pub fn by_block(&self, block: BlockId) -> Vec<DecisionEvent> {
        self.inner.lock().events.iter().filter(|e| e.block == block).cloned().collect()
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<DecisionEvent> {
        let g = self.inner.lock();
        let skip = g.events.len().saturating_sub(n);
        g.events.iter().skip(skip).cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (retained or evicted).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Total events evicted to make room (the ring wrapped past them).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};

    fn event(block: u64) -> DecisionEvent {
        DecisionEvent {
            when_ms: 10 * block,
            kind: DecisionKind::Placement,
            block: BlockId(block),
            file: INodeId(1),
            policy: "MOOP".into(),
            chosen: vec![Location { worker: WorkerId(0), media: MediaId(0), tier: TierId(0) }],
            rounds: vec![DecisionRound {
                replica_index: 0,
                tier_pin: Some(TierId(0)),
                candidates: vec![CandidateScore {
                    media: MediaId(0),
                    worker: WorkerId(0),
                    tier: TierId(0),
                    total: 0.25,
                    db: 0.1,
                    lb: 0.2,
                    ft: 3.0,
                    tm: 14.2,
                    chosen: true,
                }],
                chosen_media: Some(MediaId(0)),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn event_round_trips_over_wire() {
        let e = event(7);
        let back: DecisionEvent = decode(&encode(&e)).unwrap();
        assert_eq!(back, e);
        for kind in [
            DecisionKind::Placement,
            DecisionKind::Reassign,
            DecisionKind::Retrieval,
            DecisionKind::Removal,
            DecisionKind::Migration,
        ] {
            let mut e = event(8);
            e.kind = kind;
            let back: DecisionEvent = decode(&encode(&e)).unwrap();
            assert_eq!(back.kind, kind);
        }
    }

    #[test]
    fn ring_bounds_and_evicts_oldest() {
        let ring = AuditRing::new(3);
        for i in 0..10u64 {
            ring.push(event(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 7, "every eviction must be accounted for");
        // Oldest evicted: only blocks 7, 8, 9 survive, with their stamped
        // sequence numbers intact.
        assert!(ring.by_block(BlockId(0)).is_empty());
        let kept = ring.recent(100);
        assert_eq!(kept.iter().map(|e| e.block.0).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(kept.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(ring.recent(1)[0].block, BlockId(9));
    }

    #[test]
    fn by_block_filters() {
        let ring = AuditRing::new(8);
        ring.push(event(1));
        ring.push(event(2));
        let mut again = event(1);
        again.kind = DecisionKind::Retrieval;
        ring.push(again);
        let got = ring.by_block(BlockId(1));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind, DecisionKind::Placement);
        assert_eq!(got[1].kind, DecisionKind::Retrieval);
    }

    #[test]
    fn zero_capacity_clamps_and_never_panics() {
        let ring = AuditRing::new(0);
        ring.push(event(1));
        ring.push(event(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.recent(5)[0].block, BlockId(2));
    }
}
