//! Cluster configuration.
//!
//! [`ClusterConfig`] fully describes an OctopusFS deployment: the tier
//! registry, every worker with its rack and storage media, network rates,
//! and the tunables of the management policies. It is serde-serializable so
//! deployments and experiments can be described declaratively.

use serde::{Deserialize, Serialize};

use crate::error::{FsError, Result};
use crate::tier::{StorageTier, TierRegistry};
use crate::topology::{RackId, Topology};
use crate::units::{mbps_to_bytes_per_sec, DEFAULT_BLOCK_SIZE, GB};
use crate::WorkerId;

/// Configuration of one storage medium attached to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaConfig {
    /// Name of the tier this medium belongs to (must exist in the registry).
    pub tier: String,
    /// Capacity in bytes usable for block storage.
    pub capacity: u64,
    /// Nominal sustained write throughput, bytes/s. The startup probe
    /// measures the real value; simulations use this as ground truth.
    pub write_bps: f64,
    /// Nominal sustained read throughput, bytes/s.
    pub read_bps: f64,
}

/// Configuration of one worker node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// Rack the worker lives in.
    pub rack: u16,
    /// Storage media attached to the node.
    pub media: Vec<MediaConfig>,
    /// NIC bandwidth in bytes/s.
    pub net_bps: f64,
}

/// Which block placement policy the master uses (paper §3.3 and §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlacementPolicyKind {
    /// The default multi-objective policy (Algorithms 1 + 2).
    #[default]
    Moop,
    /// Single-objective: data balancing only (Eq. 1).
    DataBalancing,
    /// Single-objective: load balancing only (Eq. 3).
    LoadBalancing,
    /// Single-objective: fault tolerance only (Eq. 5).
    FaultTolerance,
    /// Single-objective: throughput maximization only (Eq. 7).
    ThroughputMax,
    /// Round-robin across tiers on random nodes across two racks (§7.2).
    RuleBased,
    /// HDFS default placement restricted to the HDD tier ("Original HDFS").
    HdfsHddOnly,
    /// HDFS default placement, tier-blind over HDD+SSD ("HDFS with SSD").
    HdfsTierBlind,
    /// MOOP with one objective removed (ablation; 0=DB, 1=LB, 2=FT, 3=TM).
    MoopDropObjective(u8),
}

/// Which data retrieval (replica-ordering) policy the master uses (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RetrievalPolicyKind {
    /// OctopusFS rate-based ordering (Eq. 12).
    #[default]
    RateBased,
    /// HDFS locality-only ordering (distance, ignoring tiers).
    HdfsLocality,
}

/// Tunables of the automated management policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Placement policy selection.
    pub placement: PlacementPolicyKind,
    /// Retrieval policy selection.
    pub retrieval: RetrievalPolicyKind,
    /// Whether the placement policy may choose volatile (memory) tiers for
    /// *unspecified* replicas. Disabled by default (paper §3.3).
    pub memory_placement_enabled: bool,
    /// When memory placement is enabled, at most this fraction of a block's
    /// replicas may land in memory (paper: 1/3).
    pub max_memory_fraction: f64,
    /// Prune placement candidates to two racks after the first two choices
    /// (§3.3 heuristic). Exposed for the ablation study.
    pub rack_pruning: bool,
    /// Consider the client-collocated worker first for the first replica
    /// (§3.3 heuristic).
    pub prefer_local_client: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            placement: PlacementPolicyKind::default(),
            retrieval: RetrievalPolicyKind::default(),
            memory_placement_enabled: false,
            max_memory_fraction: 1.0 / 3.0,
            rack_pruning: true,
            prefer_local_client: true,
        }
    }
}

/// Timeouts and retry tunables for the TCP RPC layer.
///
/// Every networked call observes these deadlines; nothing in the data or
/// control path blocks forever on a dead peer. Retries apply only to
/// transport-level failures of idempotent requests — application errors
/// surface immediately (see `FsError::is_retryable`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcConfig {
    /// TCP connect deadline, milliseconds.
    pub connect_timeout_ms: u64,
    /// Socket read deadline per response, milliseconds. Must cover a full
    /// pipeline write downstream of the callee.
    pub read_timeout_ms: u64,
    /// Socket write deadline per request, milliseconds.
    pub write_timeout_ms: u64,
    /// Maximum retry attempts after the first try (idempotent requests
    /// with transport failures only).
    pub max_retries: u32,
    /// Base backoff before the first retry, milliseconds; doubles per
    /// attempt with jitter.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff sleep, milliseconds.
    pub backoff_max_ms: u64,
    /// Multiplexed connections kept per peer. Requests from any number of
    /// threads interleave over these few sockets, matched to responses by
    /// request id.
    #[serde(default = "default_conns_per_peer")]
    pub conns_per_peer: u32,
    /// In-flight cap per peer: at most this many calls to one peer are
    /// outstanding across the whole client; the next caller *blocks*
    /// (backpressure, not an error) until a slot frees or its acquire
    /// budget (one call's write+read deadline) expires.
    #[serde(default = "default_max_inflight_per_peer")]
    pub max_inflight_per_peer: u32,
}

fn default_conns_per_peer() -> u32 {
    2
}

fn default_max_inflight_per_peer() -> u32 {
    64
}

impl Default for RpcConfig {
    fn default() -> Self {
        Self {
            connect_timeout_ms: 1_000,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            max_retries: 3,
            backoff_base_ms: 10,
            backoff_max_ms: 500,
            conns_per_peer: default_conns_per_peer(),
            max_inflight_per_peer: default_max_inflight_per_peer(),
        }
    }
}

impl RpcConfig {
    /// Short deadlines for loopback tests: failures are detected in tens
    /// of milliseconds instead of seconds.
    pub fn fast_test() -> Self {
        Self {
            connect_timeout_ms: 250,
            read_timeout_ms: 1_000,
            write_timeout_ms: 1_000,
            max_retries: 2,
            backoff_base_ms: 2,
            backoff_max_ms: 20,
            conns_per_peer: default_conns_per_peer(),
            max_inflight_per_peer: default_max_inflight_per_peer(),
        }
    }
}

/// Sizing and lifecycle knobs of an RPC server (master or worker data
/// server). The accept loop, per-connection request caps, the shared
/// dispatch pool, and idle-connection reaping are all bounded by these —
/// nothing in the server scales with the number of misbehaving clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Threads in the shared dispatch pool executing requests. A slice of
    /// the pool is reserved for pipeline-leaf work (see
    /// `octopus-core::net::server`), so forwarding stages can never
    /// deadlock the pool.
    pub dispatch_threads: u32,
    /// Maximum concurrently open connections; at the cap the accept loop
    /// stops accepting (backpressure via the listen backlog).
    pub max_connections: u32,
    /// Per-connection in-flight request cap: the connection's reader
    /// stalls (TCP backpressure) once this many requests from it are
    /// queued or executing.
    pub max_inflight_per_conn: u32,
    /// A connection with no traffic and no in-flight requests for this
    /// long is severed by the reaper.
    pub idle_conn_ms: u64,
    /// How often the idle reaper scans connections.
    pub reap_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            dispatch_threads: 16,
            max_connections: 1024,
            max_inflight_per_conn: 32,
            idle_conn_ms: 60_000,
            reap_interval_ms: 5_000,
        }
    }
}

impl ServerConfig {
    /// Small bounds for tests that exercise the limits themselves.
    pub fn fast_test() -> Self {
        Self {
            dispatch_threads: 8,
            max_connections: 64,
            max_inflight_per_conn: 8,
            idle_conn_ms: 60_000,
            reap_interval_ms: 25,
        }
    }
}

/// Complete description of an OctopusFS cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Tier registry.
    pub tiers: TierRegistry,
    /// Worker descriptions; index = worker id.
    pub workers: Vec<WorkerConfig>,
    /// Default block size for new files.
    pub block_size: u64,
    /// Maximum total replication for any file.
    pub max_replication: u32,
    /// Policy tunables.
    pub policy: PolicyConfig,
    /// Heartbeat interval in milliseconds (drives staleness detection and
    /// how often NrConn/capacity stats refresh at the master).
    pub heartbeat_ms: u64,
    /// A worker is declared dead after this many missed heartbeat intervals.
    pub dead_after_missed: u32,
    /// Optional per-rack uplink bandwidth (bytes/s) for the simulator:
    /// when set, cross-rack flows additionally traverse a shared per-rack
    /// uplink resource, modelling the oversubscribed top-of-rack switches
    /// behind the paper's hierarchical network topology (§3.2). `None`
    /// models a non-blocking core (the default calibration).
    pub rack_uplink_bps: Option<f64>,
    /// Client-side I/O window: how many blocks of one file a networked
    /// client keeps in flight concurrently (writes pipeline into distinct
    /// workers; reads fan out across replicas). `1` restores the fully
    /// serial data path. Overridable per process via `OCTOPUS_IO_WINDOW`.
    #[serde(default = "default_io_window")]
    pub io_window: u32,
    /// When set, networked data servers pace each block transfer to the
    /// serving medium's configured `write_bps`/`read_bps`. Real devices
    /// impose this pacing themselves; loopback test deployments store
    /// every tier in RAM, so without emulation a multi-block benchmark
    /// measures memcpy instead of the tiered-device behaviour placement
    /// (§3.2) and the client I/O window are designed around. Off by
    /// default: latency-sensitive unit tests keep raw loopback speed.
    #[serde(default = "default_emulate_media_bps")]
    pub emulate_media_bps: bool,
    /// Number of namespace/blockmap stripes in the master. Paths hash to a
    /// stripe; metadata ops on different stripes proceed in parallel.
    /// `1` restores the single-lock master.
    #[serde(default = "default_master_shards")]
    pub master_shards: usize,
}

/// Default client I/O window (blocks in flight per file transfer). Four
/// keeps a DFSIO-style client busy without overwhelming small clusters —
/// the same default window HDFS-style clients use for packet pipelining.
pub const DEFAULT_IO_WINDOW: u32 = 4;

fn default_io_window() -> u32 {
    DEFAULT_IO_WINDOW
}

fn default_emulate_media_bps() -> bool {
    false
}

/// Default master shard count. Eight stripes keep the per-shard lock
/// tables small while covering the client parallelism the metadata
/// benchmark sweeps (1–16 clients); the cost of unused stripes is a few
/// empty maps.
pub const DEFAULT_MASTER_SHARDS: usize = 8;

fn default_master_shards() -> usize {
    DEFAULT_MASTER_SHARDS
}

impl ClusterConfig {
    /// Derives the [`Topology`] from the worker descriptions.
    pub fn topology(&self) -> Topology {
        let mut t = Topology::new();
        for (i, w) in self.workers.iter().enumerate() {
            t.add_worker(WorkerId(i as u32), RackId(w.rack));
        }
        t
    }

    /// Validates internal consistency (tier names, capacities, rates).
    pub fn validate(&self) -> Result<()> {
        if self.workers.is_empty() {
            return Err(FsError::Config("cluster has no workers".into()));
        }
        if self.block_size == 0 {
            return Err(FsError::Config("block size must be positive".into()));
        }
        if self.io_window == 0 {
            return Err(FsError::Config("io window must be at least 1".into()));
        }
        for (i, w) in self.workers.iter().enumerate() {
            if w.media.is_empty() {
                return Err(FsError::Config(format!("worker {i} has no storage media")));
            }
            if w.net_bps <= 0.0 {
                return Err(FsError::Config(format!("worker {i} has non-positive NIC rate")));
            }
            for m in &w.media {
                self.tiers.by_name(&m.tier).map_err(|_| {
                    FsError::Config(format!("worker {i} references unknown tier {:?}", m.tier))
                })?;
                if m.write_bps <= 0.0 || m.read_bps <= 0.0 {
                    return Err(FsError::Config(format!(
                        "worker {i} media on tier {:?} has non-positive throughput",
                        m.tier
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total number of storage media in the cluster (the paper's `s`).
    pub fn num_media(&self) -> usize {
        self.workers.iter().map(|w| w.media.len()).sum()
    }

    /// The evaluation cluster of the paper (§7): 9 workers, each with 4 GB
    /// of memory, 64 GB of SSD, and 3 HDD devices totalling 400 GB, with
    /// media throughputs from Table 2 and 10 Gbps NICs. We arrange the nine
    /// workers in three racks of three (the paper's policies assume ≥2
    /// racks; the exact layout is unspecified).
    pub fn paper_cluster() -> Self {
        Self::paper_cluster_scaled(1.0)
    }

    /// The paper cluster with all media capacities multiplied by `scale`
    /// (useful for fast tests and reduced-size experiments).
    pub fn paper_cluster_scaled(scale: f64) -> Self {
        let cap = |bytes: u64| ((bytes as f64 * scale) as u64).max(1);
        let media = vec![
            MediaConfig {
                tier: "Memory".into(),
                capacity: cap(4 * GB),
                write_bps: mbps_to_bytes_per_sec(1897.4),
                read_bps: mbps_to_bytes_per_sec(3224.8),
            },
            MediaConfig {
                tier: "SSD".into(),
                capacity: cap(64 * GB),
                write_bps: mbps_to_bytes_per_sec(340.6),
                read_bps: mbps_to_bytes_per_sec(419.5),
            },
            MediaConfig {
                tier: "HDD".into(),
                capacity: cap(134 * GB),
                write_bps: mbps_to_bytes_per_sec(126.3),
                read_bps: mbps_to_bytes_per_sec(177.1),
            },
            MediaConfig {
                tier: "HDD".into(),
                capacity: cap(133 * GB),
                write_bps: mbps_to_bytes_per_sec(126.3),
                read_bps: mbps_to_bytes_per_sec(177.1),
            },
            MediaConfig {
                tier: "HDD".into(),
                capacity: cap(133 * GB),
                write_bps: mbps_to_bytes_per_sec(126.3),
                read_bps: mbps_to_bytes_per_sec(177.1),
            },
        ];
        let workers = (0..9u16)
            .map(|i| WorkerConfig {
                rack: i / 3,
                media: media.clone(),
                net_bps: mbps_to_bytes_per_sec(1250.0), // 10 Gbps
            })
            .collect();
        ClusterConfig {
            tiers: TierRegistry::standard_three(),
            workers,
            block_size: DEFAULT_BLOCK_SIZE,
            max_replication: 16,
            policy: PolicyConfig::default(),
            heartbeat_ms: 3000,
            dead_after_missed: 10,
            rack_uplink_bps: None,
            io_window: default_io_window(),
            emulate_media_bps: default_emulate_media_bps(),
            master_shards: default_master_shards(),
        }
    }

    /// The paper cluster extended with a "Remote" tier in integrated mode
    /// (§2.4): network-attached storage that workers read and write like
    /// any other medium. Each worker mounts a share of the remote system —
    /// large capacity, modest throughput, further capped by the shared
    /// backhaul being modelled per-worker.
    pub fn paper_cluster_with_remote() -> Self {
        Self::paper_cluster_with_remote_scaled(1.0)
    }

    /// [`ClusterConfig::paper_cluster_with_remote`] with media capacities
    /// multiplied by `scale`.
    pub fn paper_cluster_with_remote_scaled(scale: f64) -> Self {
        let mut c = Self::paper_cluster_scaled(scale);
        c.tiers = TierRegistry::standard_four();
        let remote_cap = ((1024 * GB) as f64 * scale) as u64;
        for w in c.workers.iter_mut() {
            w.media.push(MediaConfig {
                tier: "Remote".into(),
                capacity: remote_cap.max(1),
                write_bps: mbps_to_bytes_per_sec(85.0),
                read_bps: mbps_to_bytes_per_sec(110.0),
            });
        }
        c
    }

    /// A tiny cluster for unit/integration tests: `n` workers in two racks,
    /// one medium per canonical tier each, small capacities, fast rates.
    pub fn test_cluster(n: u32, capacity_per_media: u64, block_size: u64) -> Self {
        let workers = (0..n)
            .map(|i| WorkerConfig {
                rack: (i % 2) as u16,
                media: vec![
                    MediaConfig {
                        tier: StorageTier::Memory.name().into(),
                        capacity: capacity_per_media,
                        write_bps: mbps_to_bytes_per_sec(1900.0),
                        read_bps: mbps_to_bytes_per_sec(3200.0),
                    },
                    MediaConfig {
                        tier: StorageTier::Ssd.name().into(),
                        capacity: capacity_per_media,
                        write_bps: mbps_to_bytes_per_sec(340.0),
                        read_bps: mbps_to_bytes_per_sec(420.0),
                    },
                    MediaConfig {
                        tier: StorageTier::Hdd.name().into(),
                        capacity: capacity_per_media,
                        write_bps: mbps_to_bytes_per_sec(126.0),
                        read_bps: mbps_to_bytes_per_sec(177.0),
                    },
                ],
                net_bps: mbps_to_bytes_per_sec(1250.0),
            })
            .collect();
        ClusterConfig {
            tiers: TierRegistry::standard_three(),
            workers,
            block_size,
            max_replication: 16,
            policy: PolicyConfig::default(),
            heartbeat_ms: 100,
            dead_after_missed: 10,
            rack_uplink_bps: None,
            io_window: default_io_window(),
            emulate_media_bps: default_emulate_media_bps(),
            master_shards: default_master_shards(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterConfig::paper_cluster();
        c.validate().unwrap();
        assert_eq!(c.workers.len(), 9);
        assert_eq!(c.num_media(), 45); // 5 media per worker
        let topo = c.topology();
        assert_eq!(topo.num_racks(), 3);
        assert_eq!(topo.num_workers(), 9);
        // HDD capacity per worker totals 400 GB.
        let hdd: u64 =
            c.workers[0].media.iter().filter(|m| m.tier == "HDD").map(|m| m.capacity).sum();
        assert_eq!(hdd, 400 * GB);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ClusterConfig::test_cluster(2, GB, DEFAULT_BLOCK_SIZE);
        c.validate().unwrap();
        c.workers[0].media[0].tier = "NVRAM".into();
        assert!(c.validate().is_err());

        let mut c2 = ClusterConfig::test_cluster(2, GB, DEFAULT_BLOCK_SIZE);
        c2.block_size = 0;
        assert!(c2.validate().is_err());

        let mut c3 = ClusterConfig::test_cluster(2, GB, DEFAULT_BLOCK_SIZE);
        c3.workers.clear();
        assert!(c3.validate().is_err());

        let mut c4 = ClusterConfig::test_cluster(2, GB, DEFAULT_BLOCK_SIZE);
        c4.workers[1].media.clear();
        assert!(c4.validate().is_err());

        let mut c5 = ClusterConfig::test_cluster(2, GB, DEFAULT_BLOCK_SIZE);
        c5.workers[0].net_bps = 0.0;
        assert!(c5.validate().is_err());
    }

    #[test]
    fn scaled_cluster_shrinks_capacity() {
        let c = ClusterConfig::paper_cluster_scaled(0.01);
        c.validate().unwrap();
        assert!(c.workers[0].media[0].capacity < GB);
    }

    #[test]
    fn default_policy_config_matches_paper() {
        let p = PolicyConfig::default();
        assert!(!p.memory_placement_enabled);
        assert!((p.max_memory_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!(p.rack_pruning);
        assert_eq!(p.placement, PlacementPolicyKind::Moop);
        assert_eq!(p.retrieval, RetrievalPolicyKind::RateBased);
    }

    #[test]
    fn config_serde_round_trip() {
        // serde round-trip through a self-describing format proxy: use JSON
        // via serde's test-friendly in-memory representation is unavailable
        // (no serde_json dep), so round-trip PartialEq through clone instead
        // and assert Serialize compiles by invoking a no-op serializer.
        let c = ClusterConfig::test_cluster(3, GB, DEFAULT_BLOCK_SIZE);
        let c2 = c.clone();
        assert_eq!(c, c2);
    }
}
