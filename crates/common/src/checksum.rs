//! CRC-32 (IEEE 802.3) checksums for block data.
//!
//! Implemented from scratch (table-driven, reflected polynomial 0xEDB88320)
//! to avoid an extra dependency. Workers checksum block payloads on write
//! and verify on read, detecting the corruption events that drive
//! re-replication (paper §5).

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = (s >> 8) ^ TABLE[((s ^ b as u32) & 0xff) as usize];
        }
        self.state = s;
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"hello, tiered storage world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn different_data_different_crc() {
        assert_ne!(crc32(b"block-a"), crc32(b"block-b"));
    }
}
