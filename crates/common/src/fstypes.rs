//! Client-facing file metadata types (shared between the master and the
//! wire protocol).

use crate::{INodeId, ReplicationVector};

/// Status of a path, as returned to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// Inode id.
    pub id: INodeId,
    /// Absolute path.
    pub path: String,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// File length (0 for directories).
    pub len: u64,
    /// Replication vector (empty for directories).
    pub rv: ReplicationVector,
    /// Block size (0 for directories).
    pub block_size: u64,
    /// Whether the file is complete (true for directories).
    pub complete: bool,
}

/// One listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (not the full path).
    pub name: String,
    /// Whether the entry is a directory.
    pub is_dir: bool,
    /// File length (0 for directories).
    pub len: u64,
    /// Replication vector (empty for directories).
    pub rv: ReplicationVector,
}
