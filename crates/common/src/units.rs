//! Byte-size units and formatting helpers.

/// One kibibyte.
pub const KB: u64 = 1024;
/// One mebibyte.
pub const MB: u64 = 1024 * KB;
/// One gibibyte.
pub const GB: u64 = 1024 * MB;
/// One tebibyte.
pub const TB: u64 = 1024 * GB;

/// The paper's default block size (§2.1).
pub const DEFAULT_BLOCK_SIZE: u64 = 128 * MB;

/// Formats a byte count with a binary-unit suffix, e.g. `1.5 GB`.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= TB {
        format!("{:.2} TB", b / TB as f64)
    } else if bytes >= GB {
        format!("{:.2} GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.2} MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.2} KB", b / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Converts bytes/sec to MB/sec (binary MB), the unit the paper reports.
pub fn bytes_per_sec_to_mbps(bps: f64) -> f64 {
    bps / MB as f64
}

/// Converts MB/sec (binary MB) to bytes/sec.
pub fn mbps_to_bytes_per_sec(mbps: f64) -> f64 {
    mbps * MB as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KB), "2.00 KB");
        assert_eq!(fmt_bytes(3 * MB + MB / 2), "3.50 MB");
        assert_eq!(fmt_bytes(GB), "1.00 GB");
        assert_eq!(fmt_bytes(2 * TB), "2.00 TB");
    }

    #[test]
    fn throughput_conversions_round_trip() {
        let mbps = 126.3;
        let bps = mbps_to_bytes_per_sec(mbps);
        assert!((bytes_per_sec_to_mbps(bps) - mbps).abs() < 1e-9);
    }

    #[test]
    fn default_block_size_is_128mb() {
        assert_eq!(DEFAULT_BLOCK_SIZE, 134_217_728);
    }
}
