//! Shared foundation types for OctopusFS.
//!
//! This crate defines the vocabulary every other OctopusFS crate speaks:
//! storage tiers, the 64-bit [`ReplicationVector`] from the paper's API
//! extensions (§2.3), cluster network topology (racks and workers), the
//! statistics that workers report to the master via heartbeats, block
//! metadata, checksums, configuration, and errors.
//!
//! Nothing in this crate performs I/O; it is pure data and arithmetic, which
//! keeps it trivially testable and lets the policy crate stay free of any
//! dependency on the running system.

pub mod audit;
pub mod block;
pub mod checksum;
pub mod config;
pub mod error;
pub mod fstypes;
pub mod heat;
pub mod ids;
pub mod lockstat;
pub mod log;
pub mod metrics;
pub mod repvector;
pub mod series;
pub mod stats;
pub mod status;
pub mod tier;
pub mod topology;
pub mod trace;
pub mod units;
pub mod wire;

pub use audit::{AuditRing, CandidateScore, DecisionEvent, DecisionKind, DecisionRound};
pub use block::{Block, BlockData, LocatedBlock, Location};
pub use config::{
    ClusterConfig, MediaConfig, RpcConfig, ServerConfig, WorkerConfig, DEFAULT_IO_WINDOW,
};
pub use error::{FsError, Result};
pub use fstypes::{DirEntry, FileStatus};
pub use heat::{BlockTouches, HeatInfo, HeatRecorder, HeatTracker};
pub use ids::{BlockId, GenStamp, INodeId, IdGenerator, MediaId, WorkerId};
pub use lockstat::{LockStats, StatMutex, StatRwLock};
pub use log::Level;
pub use metrics::{
    BucketLayout, Counter, Gauge, GaugeGuard, Histogram, Labels, MetricsRegistry, MetricsSnapshot,
    OwnedLabels,
};
pub use repvector::{ReplicationVector, VectorDiff};
pub use series::{SeriesPoint, SeriesRing};
pub use stats::{MediaStats, StorageTierReport, TierStats, WorkerStats};
pub use status::{ClusterStatusReport, HotFile, WorkerStatusLine};
pub use tier::{StorageTier, TierId, TierRegistry, MAX_TIERS, UNSPECIFIED_SLOT};
pub use topology::{ClientLocation, NetDistance, RackId, Topology};
pub use trace::{
    CriticalPath, SpanGuard, SpanId, SpanRecord, Trace, TraceCollector, TraceContext, TraceId,
    TraceSnapshot,
};
pub use units::{DEFAULT_BLOCK_SIZE, GB, KB, MB, TB};
