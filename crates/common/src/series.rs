//! Fixed-interval time-series rings for key gauges.
//!
//! Metrics snapshots are point samples; tiering decisions (and operators
//! debugging them) need *history* — was this medium filling up, was that
//! worker's connection count spiking before the placement happened? A
//! [`SeriesRing`] keeps a bounded ring of named-gauge samples taken at a
//! fixed minimum interval: the master samples on its heartbeat-driven
//! `tick`, each worker on its heartbeat loop, so no extra threads exist
//! and an idle cluster samples nothing.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::lockstat::{LockStats, StatMutex};
use crate::wire::{Wire, WireReader};
use crate::Result;

/// Default number of points a ring retains.
pub const DEFAULT_SERIES_POINTS: usize = 256;

/// Default minimum interval between samples.
pub const DEFAULT_SERIES_INTERVAL_MS: u64 = 1_000;

/// One sample: a timestamp plus named gauge values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sample time on the sampling node's clock (heartbeat time base).
    pub t_ms: u64,
    /// `(gauge name, value)` pairs, in the order the sampler emitted them.
    pub values: Vec<(String, i64)>,
}

impl Wire for SeriesPoint {
    fn put(&self, buf: &mut Vec<u8>) {
        self.t_ms.put(buf);
        self.values.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(SeriesPoint { t_ms: Wire::get(r)?, values: Wire::get(r)? })
    }
}

impl SeriesPoint {
    /// The value of one named gauge in this point, if sampled.
    pub fn value(&self, name: &str) -> Option<i64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

struct SeriesInner {
    last_ms: Option<u64>,
    dropped: u64,
    points: VecDeque<SeriesPoint>,
}

impl SeriesInner {
    fn empty() -> Self {
        SeriesInner { last_ms: None, dropped: 0, points: VecDeque::new() }
    }
}

/// A bounded ring of [`SeriesPoint`]s sampled at most once per interval.
/// Points evicted on wrap are counted in [`SeriesRing::dropped`].
pub struct SeriesRing {
    interval_ms: u64,
    capacity: usize,
    inner: StatMutex<SeriesInner>,
}

impl Default for SeriesRing {
    fn default() -> Self {
        Self::new(DEFAULT_SERIES_INTERVAL_MS, DEFAULT_SERIES_POINTS)
    }
}

impl SeriesRing {
    /// A ring sampling at most every `interval_ms` (≥1), holding up to
    /// `capacity` points (≥1).
    pub fn new(interval_ms: u64, capacity: usize) -> Self {
        SeriesRing {
            interval_ms: interval_ms.max(1),
            capacity: capacity.max(1),
            inner: StatMutex::new(SeriesInner::empty()),
        }
    }

    /// [`SeriesRing::new`] with the internal mutex instrumented for lock
    /// contention statistics.
    pub fn with_stats(interval_ms: u64, capacity: usize, stats: Arc<LockStats>) -> Self {
        SeriesRing {
            interval_ms: interval_ms.max(1),
            capacity: capacity.max(1),
            inner: StatMutex::instrumented(SeriesInner::empty(), stats),
        }
    }

    /// Records a sample when at least one interval has elapsed since the
    /// last one (or none was ever taken); `sample` is only invoked when a
    /// point will actually be stored. Returns whether a point was taken.
    pub fn maybe_sample(&self, now_ms: u64, sample: impl FnOnce() -> Vec<(String, i64)>) -> bool {
        let mut g = self.inner.lock();
        if let Some(last) = g.last_ms {
            if now_ms < last.saturating_add(self.interval_ms) {
                return false;
            }
        }
        g.last_ms = Some(now_ms);
        let point = SeriesPoint { t_ms: now_ms, values: sample() };
        g.points.push_back(point);
        while g.points.len() > self.capacity {
            g.points.pop_front();
            g.dropped += 1;
        }
        true
    }

    /// Every retained point, oldest first.
    pub fn points(&self) -> Vec<SeriesPoint> {
        self.inner.lock().points.iter().cloned().collect()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.inner.lock().points.len()
    }

    /// Whether no points are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total points evicted to make room (the ring wrapped past them).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};

    #[test]
    fn respects_interval_and_capacity() {
        let r = SeriesRing::new(100, 3);
        assert!(r.maybe_sample(0, || vec![("x".into(), 1)]));
        assert!(!r.maybe_sample(50, || panic!("sampler must not run inside the interval")));
        assert!(r.maybe_sample(100, || vec![("x".into(), 2)]));
        for i in 2..6u64 {
            assert!(r.maybe_sample(i * 100, || vec![("x".into(), i as i64 + 1)]));
        }
        let pts = r.points();
        assert_eq!(pts.len(), 3, "ring stays bounded");
        assert_eq!(r.dropped(), 3, "every eviction must be accounted for");
        assert_eq!(pts.iter().map(|p| p.t_ms).collect::<Vec<_>>(), vec![300, 400, 500]);
        assert_eq!(pts[2].value("x"), Some(6));
        assert_eq!(pts[2].value("y"), None);
    }

    #[test]
    fn points_round_trip_over_wire() {
        let p = SeriesPoint { t_ms: 42, values: vec![("used".into(), 7), ("conn".into(), -1)] };
        let back: SeriesPoint = decode(&encode(&p)).unwrap();
        assert_eq!(back, p);
    }
}
