//! Hierarchical network topology (paper §3.2).
//!
//! Workers live in racks; the placement and retrieval policies use the
//! topology both for fault tolerance (spread replicas across racks, but over
//! no more than two — Eq. 5) and for locality (prefer node-local, then
//! rack-local transfers).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::error::{FsError, Result};
use crate::ids::WorkerId;

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u16);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack_{}", self.0)
    }
}

/// Where a client runs relative to the cluster. Collocated clients enable
/// node-local reads/writes; off-cluster clients always pay a network hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientLocation {
    /// The client shares a node with this worker.
    OnWorker(WorkerId),
    /// The client runs outside the cluster.
    OffCluster,
}

/// HDFS-style network distance between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetDistance {
    /// Same node — no network traversal.
    Local,
    /// Different nodes in the same rack — one switch hop.
    SameRack,
    /// Different racks — core switch traversal.
    OffRack,
}

impl NetDistance {
    /// A numeric weight compatible with HDFS's 0/2/4 convention.
    pub fn weight(self) -> u32 {
        match self {
            NetDistance::Local => 0,
            NetDistance::SameRack => 2,
            NetDistance::OffRack => 4,
        }
    }
}

/// The cluster's worker→rack map.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    racks: BTreeMap<WorkerId, RackId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a topology with `workers_per_rack` consecutive workers in each
    /// of `num_racks` racks; worker ids are `0..num_racks*workers_per_rack`.
    pub fn uniform(num_racks: u16, workers_per_rack: u32) -> Self {
        let mut t = Self::new();
        let mut next = 0u32;
        for rack in 0..num_racks {
            for _ in 0..workers_per_rack {
                t.add_worker(WorkerId(next), RackId(rack));
                next += 1;
            }
        }
        t
    }

    /// Registers (or re-registers) a worker in a rack.
    pub fn add_worker(&mut self, worker: WorkerId, rack: RackId) {
        self.racks.insert(worker, rack);
    }

    /// Removes a worker (e.g. decommissioned).
    pub fn remove_worker(&mut self, worker: WorkerId) {
        self.racks.remove(&worker);
    }

    /// The rack of a worker.
    pub fn rack_of(&self, worker: WorkerId) -> Result<RackId> {
        self.racks.get(&worker).copied().ok_or_else(|| FsError::UnknownWorker(worker.to_string()))
    }

    /// Number of registered workers (the paper's `n`).
    pub fn num_workers(&self) -> usize {
        self.racks.len()
    }

    /// Number of distinct racks (the paper's `t`).
    pub fn num_racks(&self) -> usize {
        let mut racks: Vec<RackId> = self.racks.values().copied().collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }

    /// All workers, in id order.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.racks.keys().copied()
    }

    /// All workers in a given rack, in id order.
    pub fn workers_in_rack(&self, rack: RackId) -> impl Iterator<Item = WorkerId> + '_ {
        self.racks.iter().filter(move |&(_, &r)| r == rack).map(|(&w, _)| w)
    }

    /// Network distance between two workers.
    pub fn distance(&self, a: WorkerId, b: WorkerId) -> Result<NetDistance> {
        if a == b {
            return Ok(NetDistance::Local);
        }
        let (ra, rb) = (self.rack_of(a)?, self.rack_of(b)?);
        Ok(if ra == rb { NetDistance::SameRack } else { NetDistance::OffRack })
    }

    /// Network distance from a client to a worker.
    pub fn client_distance(&self, client: ClientLocation, worker: WorkerId) -> Result<NetDistance> {
        match client {
            ClientLocation::OnWorker(w) => self.distance(w, worker),
            ClientLocation::OffCluster => Ok(NetDistance::OffRack),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_expected_layout() {
        let t = Topology::uniform(3, 3);
        assert_eq!(t.num_workers(), 9);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.rack_of(WorkerId(0)).unwrap(), RackId(0));
        assert_eq!(t.rack_of(WorkerId(8)).unwrap(), RackId(2));
        assert_eq!(t.workers_in_rack(RackId(1)).count(), 3);
    }

    #[test]
    fn distances() {
        let t = Topology::uniform(2, 2);
        assert_eq!(t.distance(WorkerId(0), WorkerId(0)).unwrap(), NetDistance::Local);
        assert_eq!(t.distance(WorkerId(0), WorkerId(1)).unwrap(), NetDistance::SameRack);
        assert_eq!(t.distance(WorkerId(0), WorkerId(2)).unwrap(), NetDistance::OffRack);
        assert!(t.distance(WorkerId(0), WorkerId(99)).is_err());
    }

    #[test]
    fn client_distances() {
        let t = Topology::uniform(2, 2);
        assert_eq!(
            t.client_distance(ClientLocation::OnWorker(WorkerId(1)), WorkerId(1)).unwrap(),
            NetDistance::Local
        );
        assert_eq!(
            t.client_distance(ClientLocation::OffCluster, WorkerId(1)).unwrap(),
            NetDistance::OffRack
        );
    }

    #[test]
    fn distance_ordering_matches_weights() {
        assert!(NetDistance::Local < NetDistance::SameRack);
        assert!(NetDistance::SameRack < NetDistance::OffRack);
        assert_eq!(NetDistance::Local.weight(), 0);
        assert_eq!(NetDistance::SameRack.weight(), 2);
        assert_eq!(NetDistance::OffRack.weight(), 4);
    }

    #[test]
    fn remove_worker() {
        let mut t = Topology::uniform(1, 2);
        t.remove_worker(WorkerId(0));
        assert_eq!(t.num_workers(), 1);
        assert!(t.rack_of(WorkerId(0)).is_err());
    }
}
