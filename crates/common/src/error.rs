//! Error types shared across the OctopusFS crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, FsError>;

/// The error type for all OctopusFS operations.
///
/// The variants mirror the failure classes of a distributed file system:
/// namespace errors (missing paths, conflicts), capacity/quota violations,
/// placement failures (no media satisfies the constraints), data-path errors
/// (corruption, unavailable replicas), and configuration problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The requested path does not exist.
    NotFound(String),
    /// The path (or a file with that name) already exists.
    AlreadyExists(String),
    /// A path component that must be a directory is not one.
    NotADirectory(String),
    /// The operation requires a file but the path names a directory.
    IsADirectory(String),
    /// A directory that must be empty is not (e.g. non-recursive delete).
    DirectoryNotEmpty(String),
    /// The supplied path is syntactically invalid.
    InvalidPath(String),
    /// The replication vector is invalid for this operation.
    InvalidReplicationVector(String),
    /// The placement policy could not find enough storage media.
    PlacementFailed(String),
    /// No replica of the block could be read.
    BlockUnavailable(String),
    /// Stored data failed its checksum.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// A storage medium has no room for the block.
    OutOfCapacity(String),
    /// A per-tier quota would be exceeded.
    QuotaExceeded(String),
    /// The referenced worker is not registered or is dead.
    UnknownWorker(String),
    /// The referenced storage medium is not registered.
    UnknownMedia(String),
    /// The referenced storage tier is not configured.
    UnknownTier(String),
    /// The file is open for writing by another client.
    LeaseConflict(String),
    /// Generic invalid-argument error.
    InvalidArgument(String),
    /// The master is not in a state to serve the request (e.g. safe mode).
    NotReady(String),
    /// An underlying OS-level I/O error (message only, to stay `Clone + Eq`).
    Io(String),
    /// Configuration is inconsistent or incomplete.
    Config(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
    /// A networked operation did not complete within its deadline.
    Timeout(String),
    /// The remote endpoint could not be reached (refused, reset, or the
    /// connection closed before a response arrived).
    Unreachable(String),
}

impl FsError {
    /// Whether retrying the *same* request against the *same* or another
    /// endpoint can plausibly succeed. Only transport-level failures
    /// qualify: timeouts, unreachable peers, and raw I/O errors. Every
    /// application-level error (namespace, lease, quota, placement, …) is
    /// deterministic for a given cluster state and must surface to the
    /// caller instead of burning the retry budget.
    pub fn is_retryable(&self) -> bool {
        matches!(self, FsError::Timeout(_) | FsError::Unreachable(_) | FsError::Io(_))
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "path not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::InvalidReplicationVector(m) => {
                write!(f, "invalid replication vector: {m}")
            }
            FsError::PlacementFailed(m) => write!(f, "placement failed: {m}"),
            FsError::BlockUnavailable(m) => write!(f, "block unavailable: {m}"),
            FsError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: expected {expected:#010x}, got {actual:#010x}")
            }
            FsError::OutOfCapacity(m) => write!(f, "out of capacity: {m}"),
            FsError::QuotaExceeded(m) => write!(f, "quota exceeded: {m}"),
            FsError::UnknownWorker(m) => write!(f, "unknown worker: {m}"),
            FsError::UnknownMedia(m) => write!(f, "unknown media: {m}"),
            FsError::UnknownTier(m) => write!(f, "unknown tier: {m}"),
            FsError::LeaseConflict(m) => write!(f, "lease conflict: {m}"),
            FsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            FsError::NotReady(m) => write!(f, "not ready: {m}"),
            FsError::Io(m) => write!(f, "I/O error: {m}"),
            FsError::Config(m) => write!(f, "configuration error: {m}"),
            FsError::Internal(m) => write!(f, "internal error: {m}"),
            FsError::Timeout(m) => write!(f, "timed out: {m}"),
            FsError::Unreachable(m) => write!(f, "unreachable: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind as K;
        match e.kind() {
            // `WouldBlock` is what a socket read returns when its
            // SO_RCVTIMEO expires on some platforms; both mean "deadline".
            K::TimedOut | K::WouldBlock => FsError::Timeout(e.to_string()),
            K::ConnectionRefused
            | K::ConnectionReset
            | K::ConnectionAborted
            | K::BrokenPipe
            | K::NotConnected
            | K::UnexpectedEof => FsError::Unreachable(e.to_string()),
            _ => FsError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let e = FsError::NotFound("/a/b".into());
        assert_eq!(e.to_string(), "path not found: /a/b");
    }

    #[test]
    fn checksum_mismatch_is_hex() {
        let e = FsError::ChecksumMismatch { expected: 0xdeadbeef, actual: 0x1 };
        assert!(e.to_string().contains("0xdeadbeef"));
        assert!(e.to_string().contains("0x00000001"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: FsError = io.into();
        assert!(matches!(e, FsError::Io(m) if m.contains("boom")));
    }

    #[test]
    fn io_error_kinds_classify() {
        let timeout: FsError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(matches!(timeout, FsError::Timeout(_)));
        let refused: FsError =
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "down").into();
        assert!(matches!(refused, FsError::Unreachable(_)));
        let eof: FsError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "cut").into();
        assert!(matches!(eof, FsError::Unreachable(_)));
    }

    #[test]
    fn retryability_separates_transport_from_application() {
        assert!(FsError::Timeout("t".into()).is_retryable());
        assert!(FsError::Unreachable("u".into()).is_retryable());
        assert!(FsError::Io("i".into()).is_retryable());
        assert!(!FsError::NotFound("/x".into()).is_retryable());
        assert!(!FsError::LeaseConflict("held".into()).is_retryable());
        assert!(!FsError::PlacementFailed("full".into()).is_retryable());
        assert!(!FsError::ChecksumMismatch { expected: 1, actual: 2 }.is_retryable());
    }
}
