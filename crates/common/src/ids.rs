//! Strongly-typed identifiers used across the system.
//!
//! Every entity that crosses a component boundary (blocks, inodes, workers,
//! storage media) gets a newtype so the compiler catches identifier mix-ups.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a file block. Unique for the lifetime of a namespace.
    BlockId,
    u64,
    "blk_"
);
id_type!(
    /// Identifier of an inode (file or directory) in the directory namespace.
    INodeId,
    u64,
    "inode_"
);
id_type!(
    /// Identifier of a worker node in the cluster.
    WorkerId,
    u32,
    "worker_"
);
id_type!(
    /// Cluster-wide identifier of one storage medium (e.g. one HDD on one
    /// worker). A worker with three HDDs and one SSD owns four media ids.
    MediaId,
    u32,
    "media_"
);

/// Generation stamp attached to blocks; bumped on re-replication and append
/// so that stale replicas can be detected, as in HDFS.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GenStamp(pub u64);

impl fmt::Display for GenStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gs_{}", self.0)
    }
}

/// A monotonically increasing id generator (used by the master for blocks
/// and inodes).
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Creates a generator whose first issued value is `start`.
    pub fn new(start: u64) -> Self {
        Self { next: AtomicU64::new(start) }
    }

    /// Issues the next id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Current high-water mark (the value the next call will return).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Fast-forwards the generator so it never reissues `floor` or below.
    /// Used when restoring from a checkpoint.
    pub fn ensure_above(&self, floor: u64) {
        self.next.fetch_max(floor + 1, Ordering::Relaxed);
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(BlockId(7).to_string(), "blk_7");
        assert_eq!(WorkerId(2).to_string(), "worker_2");
        assert_eq!(MediaId(9).to_string(), "media_9");
        assert_eq!(INodeId(1).to_string(), "inode_1");
        assert_eq!(GenStamp(3).to_string(), "gs_3");
    }

    #[test]
    fn generator_is_monotonic() {
        let g = IdGenerator::new(5);
        assert_eq!(g.next(), 5);
        assert_eq!(g.next(), 6);
        assert_eq!(g.peek(), 7);
    }

    #[test]
    fn generator_ensure_above() {
        let g = IdGenerator::new(1);
        g.ensure_above(100);
        assert_eq!(g.next(), 101);
        // ensure_above never moves backwards
        g.ensure_above(50);
        assert_eq!(g.next(), 102);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(BlockId(1));
        s.insert(BlockId(1));
        s.insert(BlockId(2));
        assert_eq!(s.len(), 2);
        assert!(BlockId(1) < BlockId(2));
    }
}
