//! Block access heat: worker-side epoch counting and master-side per-file
//! EWMA scoring.
//!
//! The paper's MOOP placement (§3.2) decides where *new* data lands; the
//! authors' follow-up on automated tiered-storage management moves data
//! *continuously*, which requires knowing which blocks are hot, per tier,
//! over time. This module is that substrate's data plane:
//!
//! - [`HeatRecorder`] (one per worker): counts per-block read/write touches
//!   in the current epoch under a single mutex (two map lookups per block
//!   I/O — negligible against a block transfer), and keeps a bounded ring
//!   of recently drained epochs for inspection. The heartbeat thread calls
//!   [`HeatRecorder::drain_epoch`] and piggybacks the counts on the
//!   heartbeat RPC — heat shipping adds no extra round trips.
//! - [`HeatTracker`] (one per master): folds shipped touches into per-file
//!   exponentially-weighted moving averages over fixed wall-clock epochs.
//!   Folding is *lazy and deterministic*: every operation takes an explicit
//!   `now_ms`, so a file untouched for `g` epochs decays by exactly
//!   `(1-α)^g` at its next query and tests can replay sequences with no
//!   wall clock involved.
//!
//! The tracker's score blends the folded EWMA with a preview of the
//! still-open epoch (`α·current + (1-α)·ewma`), so a file touched moments
//! ago already ranks hot instead of waiting out the epoch boundary.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use crate::ids::{BlockId, INodeId};
use crate::wire::{Wire, WireReader};
use crate::Result;

/// Default worker-side ring depth of drained epochs.
pub const DEFAULT_HEAT_EPOCHS: usize = 16;

/// Default master-side epoch length.
pub const DEFAULT_HEAT_EPOCH_MS: u64 = 2_000;

/// Default EWMA smoothing factor α (weight of the newest epoch).
pub const DEFAULT_HEAT_ALPHA: f64 = 0.4;

/// Per-block touch counts for one epoch, as shipped on heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTouches {
    /// The touched block.
    pub block: BlockId,
    /// Read touches (one per served `ReadBlock`/replication source read).
    pub reads: u32,
    /// Write touches (one per stored replica).
    pub writes: u32,
}

impl Wire for BlockTouches {
    fn put(&self, buf: &mut Vec<u8>) {
        self.block.put(buf);
        self.reads.put(buf);
        self.writes.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(BlockTouches { block: Wire::get(r)?, reads: Wire::get(r)?, writes: Wire::get(r)? })
    }
}

struct RecorderInner {
    current: HashMap<BlockId, (u32, u32)>,
    ring: VecDeque<Vec<BlockTouches>>,
}

/// Worker-side per-block touch counter with a bounded epoch ring.
pub struct HeatRecorder {
    epochs: usize,
    inner: Mutex<RecorderInner>,
}

impl Default for HeatRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_HEAT_EPOCHS)
    }
}

impl HeatRecorder {
    /// A recorder keeping up to `epochs` drained epochs (≥1).
    pub fn new(epochs: usize) -> Self {
        HeatRecorder {
            epochs: epochs.max(1),
            inner: Mutex::new(RecorderInner { current: HashMap::new(), ring: VecDeque::new() }),
        }
    }

    /// Counts one read touch.
    pub fn touch_read(&self, block: BlockId) {
        self.inner.lock().unwrap().current.entry(block).or_insert((0, 0)).0 += 1;
    }

    /// Counts one write touch.
    pub fn touch_write(&self, block: BlockId) {
        self.inner.lock().unwrap().current.entry(block).or_insert((0, 0)).1 += 1;
    }

    /// Closes the current epoch: returns its touches (sorted by block id,
    /// so the wire payload is deterministic), pushes them onto the ring
    /// (evicting the oldest epoch past the cap), and starts a fresh epoch.
    pub fn drain_epoch(&self) -> Vec<BlockTouches> {
        let mut g = self.inner.lock().unwrap();
        let mut out: Vec<BlockTouches> = g
            .current
            .drain()
            .map(|(block, (reads, writes))| BlockTouches { block, reads, writes })
            .collect();
        out.sort_unstable_by_key(|t| t.block);
        g.ring.push_back(out.clone());
        while g.ring.len() > self.epochs {
            g.ring.pop_front();
        }
        out
    }

    /// The ring of drained epochs, oldest first.
    pub fn epochs(&self) -> Vec<Vec<BlockTouches>> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Number of distinct blocks touched in the open epoch.
    pub fn current_blocks(&self) -> usize {
        self.inner.lock().unwrap().current.len()
    }
}

/// One file's heat as reported by the master's `Heat` RPC.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeatInfo {
    /// The file.
    pub file: INodeId,
    /// Folded read-touch EWMA (touches per epoch).
    pub reads_ewma: f64,
    /// Folded write-touch EWMA (touches per epoch).
    pub writes_ewma: f64,
    /// Read touches accumulated in the still-open epoch.
    pub cur_reads: u64,
    /// Write touches accumulated in the still-open epoch.
    pub cur_writes: u64,
    /// The blended heat score (see module docs).
    pub score: f64,
}

impl Wire for HeatInfo {
    fn put(&self, buf: &mut Vec<u8>) {
        self.file.put(buf);
        self.reads_ewma.put(buf);
        self.writes_ewma.put(buf);
        self.cur_reads.put(buf);
        self.cur_writes.put(buf);
        self.score.put(buf);
    }
    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(HeatInfo {
            file: Wire::get(r)?,
            reads_ewma: Wire::get(r)?,
            writes_ewma: Wire::get(r)?,
            cur_reads: Wire::get(r)?,
            cur_writes: Wire::get(r)?,
            score: Wire::get(r)?,
        })
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct FileHeat {
    epoch: u64,
    reads_ewma: f64,
    writes_ewma: f64,
    cur_reads: u64,
    cur_writes: u64,
}

impl FileHeat {
    /// Folds every epoch boundary crossed between `self.epoch` and `e`:
    /// one EWMA step consuming the open epoch's counts, then pure decay
    /// `(1-α)^gap` for the empty epochs in between (computed closed-form,
    /// so a file idle for a week costs one `powi`, not a loop).
    fn roll_to(&mut self, e: u64, alpha: f64) {
        if e <= self.epoch {
            return;
        }
        self.reads_ewma = alpha * self.cur_reads as f64 + (1.0 - alpha) * self.reads_ewma;
        self.writes_ewma = alpha * self.cur_writes as f64 + (1.0 - alpha) * self.writes_ewma;
        self.cur_reads = 0;
        self.cur_writes = 0;
        let gap = (e - self.epoch - 1).min(10_000) as i32;
        if gap > 0 {
            let decay = (1.0 - alpha).powi(gap);
            self.reads_ewma *= decay;
            self.writes_ewma *= decay;
        }
        self.epoch = e;
    }

    fn info(mut self, file: INodeId, e: u64, alpha: f64) -> HeatInfo {
        self.roll_to(e, alpha);
        let cur = (self.cur_reads + self.cur_writes) as f64;
        let ewma = self.reads_ewma + self.writes_ewma;
        HeatInfo {
            file,
            reads_ewma: self.reads_ewma,
            writes_ewma: self.writes_ewma,
            cur_reads: self.cur_reads,
            cur_writes: self.cur_writes,
            score: alpha * cur + (1.0 - alpha) * ewma,
        }
    }
}

/// Master-side per-file EWMA heat over fixed epochs. Deterministic: every
/// method takes an explicit `now_ms`; nothing reads a clock.
pub struct HeatTracker {
    epoch_ms: u64,
    alpha: f64,
    files: HashMap<INodeId, FileHeat>,
}

impl Default for HeatTracker {
    fn default() -> Self {
        Self::new(DEFAULT_HEAT_EPOCH_MS, DEFAULT_HEAT_ALPHA)
    }
}

impl HeatTracker {
    /// A tracker with the given epoch length (≥1 ms) and EWMA α ∈ (0, 1].
    pub fn new(epoch_ms: u64, alpha: f64) -> Self {
        HeatTracker {
            epoch_ms: epoch_ms.max(1),
            alpha: alpha.clamp(1e-6, 1.0),
            files: HashMap::new(),
        }
    }

    fn epoch(&self, now_ms: u64) -> u64 {
        now_ms / self.epoch_ms
    }

    /// Folds `reads`/`writes` touches of `file` into the epoch containing
    /// `now_ms`.
    pub fn observe(&mut self, file: INodeId, reads: u64, writes: u64, now_ms: u64) {
        let e = self.epoch(now_ms);
        let alpha = self.alpha;
        let entry = self.files.entry(file).or_insert(FileHeat { epoch: e, ..Default::default() });
        entry.roll_to(e, alpha);
        entry.cur_reads += reads;
        entry.cur_writes += writes;
    }

    /// The heat of one file as of `now_ms`. Untracked files are simply
    /// cold: a zero-score [`HeatInfo`].
    pub fn info(&self, file: INodeId, now_ms: u64) -> HeatInfo {
        let e = self.epoch(now_ms);
        match self.files.get(&file) {
            Some(h) => h.info(file, e, self.alpha),
            None => HeatInfo { file, ..Default::default() },
        }
    }

    /// The `k` hottest tracked files as of `now_ms`, hottest first; ties
    /// break toward the lower inode id so the order is deterministic.
    pub fn hottest(&self, k: usize, now_ms: u64) -> Vec<HeatInfo> {
        let e = self.epoch(now_ms);
        let mut all: Vec<HeatInfo> =
            self.files.iter().map(|(f, h)| h.info(*f, e, self.alpha)).collect();
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.file.cmp(&b.file)));
        all.truncate(k);
        all
    }

    /// Stops tracking a file (deletion).
    pub fn forget(&mut self, file: INodeId) {
        self.files.remove(&file);
    }

    /// Drops files whose heat has decayed to effectively zero, bounding
    /// the map to files with recent activity. Returns how many were
    /// dropped.
    pub fn gc(&mut self, now_ms: u64) -> usize {
        let e = self.epoch(now_ms);
        let alpha = self.alpha;
        let before = self.files.len();
        self.files.retain(|f, h| h.info(*f, e, alpha).score > 1e-9);
        before - self.files.len()
    }

    /// Number of tracked files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no files are tracked.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};

    fn b(n: u64) -> BlockId {
        BlockId(n)
    }

    #[test]
    fn recorder_counts_and_drains_sorted() {
        let r = HeatRecorder::new(4);
        r.touch_write(b(9));
        r.touch_read(b(3));
        r.touch_read(b(3));
        r.touch_read(b(9));
        assert_eq!(r.current_blocks(), 2);
        let epoch = r.drain_epoch();
        assert_eq!(
            epoch,
            vec![
                BlockTouches { block: b(3), reads: 2, writes: 0 },
                BlockTouches { block: b(9), reads: 1, writes: 1 },
            ]
        );
        assert_eq!(r.current_blocks(), 0);
        assert!(r.drain_epoch().is_empty(), "fresh epoch has no touches");
    }

    #[test]
    fn recorder_ring_wraps_evicting_oldest() {
        let r = HeatRecorder::new(3);
        for i in 0..7u64 {
            r.touch_read(b(i));
            r.drain_epoch();
        }
        let epochs = r.epochs();
        assert_eq!(epochs.len(), 3, "ring stays at its cap");
        // Oldest-first: epochs 4, 5, 6 survive.
        let survivors: Vec<u64> = epochs.iter().map(|e| e[0].block.0).collect();
        assert_eq!(survivors, vec![4, 5, 6]);
    }

    #[test]
    fn touches_round_trip_over_wire() {
        let t = BlockTouches { block: b(7), reads: 3, writes: 1 };
        let back: BlockTouches = decode(&encode(&t)).unwrap();
        assert_eq!(back, t);
        let info = HeatInfo {
            file: INodeId(5),
            reads_ewma: 1.25,
            writes_ewma: 0.5,
            cur_reads: 2,
            cur_writes: 0,
            score: 1.85,
        };
        let back: HeatInfo = decode(&encode(&info)).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn untracked_file_is_cold() {
        let t = HeatTracker::new(100, 0.5);
        let i = t.info(INodeId(1), 12345);
        assert_eq!(i.score, 0.0);
        assert_eq!(i.cur_reads, 0);
    }

    #[test]
    fn open_epoch_counts_preview_into_score() {
        let mut t = HeatTracker::new(100, 0.5);
        t.observe(INodeId(1), 4, 2, 50);
        let i = t.info(INodeId(1), 60);
        assert_eq!(i.cur_reads, 4);
        assert_eq!(i.cur_writes, 2);
        // Preview: α·(4+2) + (1-α)·0 = 3.
        assert!((i.score - 3.0).abs() < 1e-12, "{}", i.score);
    }

    #[test]
    fn zero_access_decays_to_cold() {
        let mut t = HeatTracker::new(100, 0.5);
        t.observe(INodeId(1), 8, 0, 0);
        // One boundary later the epoch folds: ewma = 0.5·8 = 4.
        let i = t.info(INodeId(1), 100);
        assert!((i.reads_ewma - 4.0).abs() < 1e-12);
        assert!((i.score - 2.0).abs() < 1e-12, "blend halves the idle ewma");
        // Twenty idle epochs: 4·0.5^19 ≈ 7.6e-6 → effectively cold.
        let i = t.info(INodeId(1), 2000);
        assert!(i.score < 1e-4, "{}", i.score);
        // And gc() actually forgets it after enough decay.
        assert!(t.info(INodeId(1), 20_000).score < 1e-9);
        assert_eq!(t.gc(20_000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn seeded_multi_epoch_sequence_matches_reference_ewma() {
        // Replay a fixed touch sequence and compare against an
        // independently computed EWMA: observations at epochs 0,1,2 then a
        // 3-epoch gap then epoch 6.
        let alpha = 0.25;
        let mut t = HeatTracker::new(10, alpha);
        let seq: &[(u64, u64)] = &[(0, 10), (1, 6), (2, 2), (6, 8)];
        for &(epoch, reads) in seq {
            t.observe(INodeId(9), reads, 0, epoch * 10);
        }
        // Reference fold, one epoch at a time.
        let mut ewma = 0.0f64;
        let mut counts = [0.0f64; 7];
        for &(epoch, reads) in seq {
            counts[epoch as usize] += reads as f64;
        }
        for &c in counts.iter().take(6) {
            ewma = alpha * c + (1.0 - alpha) * ewma;
        }
        let i = t.info(INodeId(9), 70);
        // Epoch 6's count (8) folds at the epoch-7 query boundary; the
        // blended score then previews the empty open epoch.
        let folded = alpha * counts[6] + (1.0 - alpha) * ewma;
        let expect = (1.0 - alpha) * folded;
        assert!((i.reads_ewma - folded).abs() < 1e-12, "{} vs {folded}", i.reads_ewma);
        assert!((i.score - expect).abs() < 1e-12, "{} vs {expect}", i.score);
    }

    #[test]
    fn hottest_ranks_by_score_with_stable_ties() {
        let mut t = HeatTracker::new(100, 0.5);
        t.observe(INodeId(1), 2, 0, 0);
        t.observe(INodeId(2), 10, 0, 0);
        t.observe(INodeId(3), 2, 0, 0);
        let top = t.hottest(10, 0);
        assert_eq!(top[0].file, INodeId(2));
        assert_eq!((top[1].file, top[2].file), (INodeId(1), INodeId(3)), "ties by inode");
        assert_eq!(t.hottest(1, 0).len(), 1);
        t.forget(INodeId(2));
        assert_eq!(t.len(), 2);
    }
}
