//! The OctopusFS client (paper §2.3): the file system API with the Table 1
//! tiered-storage extensions, plus the write-pipeline and read-failover
//! data paths (§3.1, §4.1).

use bytes::Bytes;
use std::sync::Arc;

use octopus_common::{
    BlockData, ClientLocation, FsError, LocatedBlock, Location, ReplicationVector, Result,
    StorageTierReport,
};
use octopus_master::{ClientId, DirEntry, FileStatus, Master, TierQuota};

use crate::cluster::DataPlane;

static NEXT_CLIENT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// A client handle. Cheap to clone; clones share the same lease identity.
#[derive(Clone)]
pub struct Client {
    master: Arc<Master>,
    plane: Arc<DataPlane>,
    location: ClientLocation,
    id: ClientId,
}

impl Client {
    pub(crate) fn new(
        master: Arc<Master>,
        plane: Arc<DataPlane>,
        location: ClientLocation,
    ) -> Self {
        let id = ClientId(NEXT_CLIENT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        Self { master, plane, location, id }
    }

    /// Where this client runs.
    pub fn location(&self) -> ClientLocation {
        self.location
    }

    /// This client's lease identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    // -- Namespace operations ------------------------------------------------

    /// Creates a directory and any missing parents.
    pub fn mkdir(&self, path: &str) -> Result<()> {
        self.master.mkdir(path)
    }

    /// Status of a path.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        self.master.status(path)
    }

    /// Lists a directory.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>> {
        self.master.list(path)
    }

    /// Renames a file or directory.
    pub fn rename(&self, src: &str, dst: &str) -> Result<()> {
        self.master.rename(src, dst)
    }

    /// Deletes a path, invalidating replicas at the workers.
    pub fn delete(&self, path: &str, recursive: bool) -> Result<()> {
        let dropped = self.master.delete(path, recursive)?;
        for (block, loc) in dropped {
            if let Ok(w) = self.plane.worker(loc.worker) {
                let _ = w.delete_block(loc.media, block);
            }
        }
        Ok(())
    }

    /// Sets a per-tier quota on a directory.
    pub fn set_quota(&self, path: &str, quota: TierQuota) -> Result<()> {
        self.master.set_quota(path, quota)
    }

    // -- Table 1 API extensions ----------------------------------------------

    /// `create(Path, ReplicationVector, blockSize)`: opens a new file for
    /// writing and returns the output stream.
    pub fn create(
        &self,
        path: &str,
        rv: ReplicationVector,
        block_size: Option<u64>,
    ) -> Result<FileWriter> {
        let status = self.master.create_file_as(path, rv, block_size, self.id)?;
        Ok(FileWriter {
            client: self.clone(),
            path: path.to_string(),
            block_size: status.block_size,
            buf: Vec::new(),
            closed: false,
        })
    }

    /// `setReplication(Path, ReplicationVector)`: records the new vector;
    /// replica movement happens asynchronously (§5). Returns the previous
    /// vector.
    pub fn set_replication(&self, path: &str, rv: ReplicationVector) -> Result<ReplicationVector> {
        self.master.set_replication(path, rv)
    }

    /// `getFileBlockLocations(Path, start, len)`: block locations (with
    /// their storage tiers) overlapping the byte range, ordered by the
    /// retrieval policy for this client's location.
    pub fn get_file_block_locations(
        &self,
        path: &str,
        start: u64,
        len: u64,
    ) -> Result<Vec<LocatedBlock>> {
        self.master.get_file_block_locations(path, start, len, self.location)
    }

    /// `getStorageTierReports()`: the active tiers with capacity and
    /// throughput information.
    pub fn get_storage_tier_reports(&self) -> Vec<StorageTierReport> {
        self.master.get_storage_tier_reports()
    }

    // -- Data path -------------------------------------------------------------

    /// Convenience: creates `path` and writes `data` in one call.
    pub fn write_file(&self, path: &str, data: &[u8], rv: ReplicationVector) -> Result<()> {
        let mut w = self.create(path, rv, None)?;
        w.write(data)?;
        w.close()
    }

    /// Reads a whole file, verifying checksums, failing over across
    /// replicas (§4.1). Paths under an external mount are served by the
    /// mounted catalog (§2.4).
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        if self.master.is_external(path) {
            return self.master.read_external(path);
        }
        self.read_range(path, 0, u64::MAX)
    }

    /// Imports a file from a mounted external catalog into the cluster's
    /// tiers (the MixApart-style caching pattern of §2.4): reads through
    /// the mount and writes a tiered copy at `dst` with vector `rv`.
    pub fn import_external(&self, src: &str, dst: &str, rv: ReplicationVector) -> Result<()> {
        let data = self.master.read_external(src)?;
        self.write_file(dst, &data, rv)
    }

    /// Opens a file for positional reading.
    pub fn open(&self, path: &str) -> Result<FileReader> {
        let status = self.master.status(path)?;
        if status.is_dir {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        Ok(FileReader {
            client: self.clone(),
            path: path.to_string(),
            len: status.len,
            pos: 0,
            cached: None,
        })
    }

    /// Reopens a complete file for appending. New data starts a fresh
    /// block (the existing final block is immutable).
    pub fn append(&self, path: &str) -> Result<FileWriter> {
        let status = self.master.append_file_as(path, self.id)?;
        Ok(FileWriter {
            client: self.clone(),
            path: path.to_string(),
            block_size: status.block_size,
            buf: Vec::new(),
            closed: false,
        })
    }

    /// Reads the byte range `[start, start+len)` of a file.
    pub fn read_range(&self, path: &str, start: u64, len: u64) -> Result<Vec<u8>> {
        if self.master.is_external(path) {
            let all = self.master.read_external(path)?;
            let end = start.saturating_add(len).min(all.len() as u64) as usize;
            let start = (start as usize).min(all.len());
            return Ok(all[start..end.max(start)].to_vec());
        }
        let status = self.master.status(path)?;
        if status.is_dir {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        let end = start.saturating_add(len).min(status.len);
        if start >= end {
            return Ok(Vec::new());
        }
        let blocks = self.get_file_block_locations(path, start, end - start)?;
        let mut out = Vec::with_capacity((end - start) as usize);
        for lb in blocks {
            let data = self.read_block(&lb)?;
            let BlockData::Real(bytes) = data else {
                return Err(FsError::Internal(
                    "synthetic block payload reached the real read path".into(),
                ));
            };
            let b_start = start.max(lb.offset) - lb.offset;
            let b_end = end.min(lb.end()) - lb.offset;
            out.extend_from_slice(&bytes[b_start as usize..b_end as usize]);
        }
        Ok(out)
    }

    /// Reads one block, trying replicas in policy order (§4.1: on failure,
    /// contact the next worker on the list).
    pub fn read_block(&self, lb: &LocatedBlock) -> Result<BlockData> {
        let mut last_err = FsError::BlockUnavailable(format!("{}: no replicas", lb.block.id));
        for loc in &lb.locations {
            match self.try_read_replica(lb, loc) {
                Ok(d) => return Ok(d),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn try_read_replica(&self, lb: &LocatedBlock, loc: &Location) -> Result<BlockData> {
        let w = self.plane.worker(loc.worker)?;
        // Remote transfers hold a NIC connection for accounting.
        let _net = match self.location {
            ClientLocation::OnWorker(me) if me == loc.worker => None,
            _ => Some(w.connect_net()),
        };
        // Hold the medium's I/O span for the transfer so heartbeat NrConn
        // reflects it (§3.2).
        let _io = w.media_io(loc.media)?;
        let data = w.read_block(loc.media, lb.block.id)?;
        if data.len() != lb.block.len {
            return Err(FsError::BlockUnavailable(format!(
                "{}: replica length {} != {}",
                lb.block.id,
                data.len(),
                lb.block.len
            )));
        }
        Ok(data)
    }

    /// Writes one block through the worker pipeline (§3.1). Returns the
    /// locations that acknowledged.
    fn write_block_pipeline(&self, path: &str, payload: Bytes) -> Result<Vec<Location>> {
        let len = payload.len() as u64;
        let (block, pipeline) = self.master.add_block_as(path, len, self.location, self.id)?;
        let data = BlockData::Real(payload);
        let mut stored = Vec::new();
        for loc in &pipeline {
            let res = (|| -> Result<()> {
                let w = self.plane.worker(loc.worker)?;
                let _net = match self.location {
                    ClientLocation::OnWorker(me) if me == loc.worker && stored.is_empty() => None,
                    _ => Some(w.connect_net()),
                };
                let _io = w.media_io(loc.media)?;
                w.write_block(loc.media, block, &data)
            })();
            match res {
                Ok(()) => {
                    self.master.commit_replica(block, *loc)?;
                    stored.push(*loc);
                }
                Err(_) => {
                    // The pipeline skips the failed stage; the replication
                    // monitor heals the block later (§5).
                    self.master.abort_replica(block, *loc);
                }
            }
        }
        if stored.is_empty() {
            return Err(FsError::BlockUnavailable(format!(
                "block {} could not be stored on any pipeline stage",
                block.id
            )));
        }
        Ok(stored)
    }
}

/// An output stream for one file (returned by [`Client::create`]).
///
/// Bytes are buffered into blocks of the file's block size; each full block
/// is pushed through a fresh pipeline obtained from the master (§3.1).
pub struct FileWriter {
    client: Client,
    path: String,
    block_size: u64,
    buf: Vec<u8>,
    closed: bool,
}

impl FileWriter {
    /// Appends bytes, flushing complete blocks.
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        if self.closed {
            return Err(FsError::InvalidArgument("writer is closed".into()));
        }
        self.buf.extend_from_slice(data);
        while self.buf.len() as u64 >= self.block_size {
            let rest = self.buf.split_off(self.block_size as usize);
            let block = std::mem::replace(&mut self.buf, rest);
            self.client.write_block_pipeline(&self.path, Bytes::from(block))?;
        }
        Ok(())
    }

    /// Flushes the final partial block and closes the file.
    pub fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        if !self.buf.is_empty() {
            let block = std::mem::take(&mut self.buf);
            self.client.write_block_pipeline(&self.path, Bytes::from(block))?;
        }
        self.closed = true;
        self.client.master.complete_file_as(&self.path, self.client.id)
    }

    /// The path being written.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for FileWriter {
    fn drop(&mut self) {
        if !self.closed {
            let _ = self.close();
        }
    }
}

/// A positional reader over one file (returned by [`Client::open`]).
///
/// Small sequential reads are served from a one-block cache so each block
/// is fetched (and checksum-verified) once per pass.
pub struct FileReader {
    client: Client,
    path: String,
    len: u64,
    pos: u64,
    /// `(block byte range start, payload)` of the most recently read block.
    cached: Option<(u64, Bytes)>,
}

impl FileReader {
    /// Total file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Moves the read position (clamped to the file length).
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos.min(self.len);
    }

    /// Reads up to `buf.len()` bytes at the current position, returning
    /// the count (0 at EOF). Fails over across replicas per §4.1.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.pos >= self.len || buf.is_empty() {
            return Ok(0);
        }
        // Serve from the cached block when possible.
        let in_cache = self
            .cached
            .as_ref()
            .filter(|(start, data)| self.pos >= *start && self.pos < *start + data.len() as u64)
            .is_some();
        if !in_cache {
            let lbs = self.client.get_file_block_locations(&self.path, self.pos, 1)?;
            let Some(lb) = lbs.first() else {
                return Err(FsError::Internal(format!(
                    "no block at offset {} of {}",
                    self.pos, self.path
                )));
            };
            let BlockData::Real(bytes) = self.client.read_block(lb)? else {
                return Err(FsError::Internal(
                    "synthetic block payload reached the real read path".into(),
                ));
            };
            self.cached = Some((lb.offset, bytes));
        }
        let (start, data) = self.cached.as_ref().expect("cache just filled");
        let off = (self.pos - start) as usize;
        let n = buf.len().min(data.len() - off).min((self.len - self.pos) as usize);
        buf[..n].copy_from_slice(&data[off..off + n]);
        self.pos += n as u64;
        Ok(n)
    }

    /// Reads exactly `buf.len()` bytes or fails.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read(&mut buf[filled..])?;
            if n == 0 {
                return Err(FsError::InvalidArgument(format!(
                    "unexpected EOF at {} of {} ({} bytes short)",
                    self.pos,
                    self.path,
                    buf.len() - filled
                )));
            }
            filled += n;
        }
        Ok(())
    }
}
