//! The simulated cluster: the real master, policies, namespace, and worker
//! state driven by the [`octopus_simnet`] flow simulator.
//!
//! Every block write becomes one flow through the pipeline's resources
//! (client/worker NIC directions and media write devices); every block read
//! becomes a flow from the chosen replica's media read device through the
//! source NIC to the reader. Max-min fair sharing reproduces the contention
//! behaviour the paper's evaluation measures: device bandwidth splits among
//! `NrConn` connections, pipelines run at their slowest stage, and network
//! congestion grows with the degree of parallelism.
//!
//! Connection counts are tracked with the same RAII guards the real worker
//! uses and fed back to the master through heartbeats after every event, so
//! the placement (§3) and retrieval (§4) policies observe live load exactly
//! as they would in deployment.

use std::collections::HashMap;
use std::sync::Arc;

use octopus_common::{
    Block, BlockData, ClientLocation, ClusterConfig, FsError, Location, MediaId, RackId,
    ReplicationVector, Result, WorkerId,
};
use octopus_master::{Master, ReplicationTask};
use octopus_simnet::{EventKind, FlowId, ResourceId, SimNet, SimTime};
use octopus_storage::ConnGuard;

use crate::cluster::StorageMode;
use crate::worker::Worker;

/// Identifier of a submitted I/O job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub usize);

/// Outcome of a finished job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Logical bytes transferred (not multiplied by replication).
    pub bytes: u64,
    /// Submission time.
    pub start: SimTime,
    /// Completion time (equal to `start` for failed jobs).
    pub end: SimTime,
    /// Failure reason, if the job could not finish.
    pub failed: Option<String>,
}

impl JobReport {
    /// Mean throughput in bytes/s.
    pub fn throughput_bps(&self) -> f64 {
        let secs = self.end.secs_since(self.start);
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }

    /// Mean throughput in MB/s (binary MB, as the paper reports).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bps() / (1 << 20) as f64
    }
}

/// Events surfaced to drivers (benchmarks, the compute framework).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A submitted job finished (successfully or not — check its report).
    JobDone(JobId),
    /// A timer scheduled with [`SimCluster::schedule_timer`] fired.
    Timer(u64),
}

enum JobKind {
    Write {
        path: String,
        remaining: u64,
        block_size: u64,
        client: ClientLocation,
        current: Option<(Block, Vec<Location>)>,
    },
    Read {
        path: String,
        offset: u64,
        len: u64,
        client: ClientLocation,
        in_flight: u64,
    },
    /// A raw network transfer (shuffle traffic) or a pure delay (CPU).
    Opaque,
}

/// Timer tokens at or above this value are reserved for internal use
/// (delay jobs); user tokens passed to [`SimCluster::schedule_timer`] must
/// stay below it.
const DELAY_TOKEN_BASE: u64 = 1 << 62;

struct Job {
    kind: JobKind,
    bytes_total: u64,
    start: SimTime,
    end: Option<SimTime>,
    failed: Option<String>,
}

/// The simulated cluster.
///
/// ```
/// use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
/// use octopus_core::SimCluster;
///
/// let mut config = ClusterConfig::paper_cluster_scaled(0.01);
/// config.block_size = MB;
/// let mut sim = SimCluster::new(config).unwrap();
/// sim.submit_write("/f", 10 * MB, ReplicationVector::msh(0, 0, 3),
///                  ClientLocation::OffCluster).unwrap();
/// let report = &sim.run_to_completion()[0];
/// // A 3-replica HDD pipeline runs at one HDD's write rate (~126 MB/s).
/// assert!((report.throughput_mbps() - 126.3).abs() < 5.0);
/// ```
pub struct SimCluster {
    master: Arc<Master>,
    workers: Vec<Arc<Worker>>,
    net: SimNet,
    nic_in: Vec<ResourceId>,
    nic_out: Vec<ResourceId>,
    /// Per-rack `(uplink out, uplink in)` resources when the config models
    /// oversubscribed top-of-rack switches.
    rack_uplinks: HashMap<RackId, (ResourceId, ResourceId)>,
    media_write: HashMap<MediaId, ResourceId>,
    media_read: HashMap<MediaId, ResourceId>,
    jobs: Vec<Job>,
    flow_jobs: HashMap<FlowId, JobId>,
    flow_guards: HashMap<FlowId, Vec<ConnGuard>>,
    repl_flows: HashMap<FlowId, (Block, Location)>,
    bytes_written: u64,
    bytes_read: u64,
}

impl SimCluster {
    /// Builds a simulated cluster from configuration. Workers use
    /// metadata-only stores; device/NIC rates come from the config.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        config.validate()?;
        let workers = crate::cluster::build_workers_for(&config, &StorageMode::Simulated)?;
        let rack_uplink_bps = config.rack_uplink_bps;
        let master = Arc::new(Master::new(config)?);
        let mut net = SimNet::new();
        let mut nic_in = Vec::new();
        let mut nic_out = Vec::new();
        let mut media_write = HashMap::new();
        let mut media_read = HashMap::new();
        let mut rack_uplinks = HashMap::new();
        for w in &workers {
            nic_in.push(net.add_resource(&format!("{}_in", w.id()), w.net_bps()));
            nic_out.push(net.add_resource(&format!("{}_out", w.id()), w.net_bps()));
            for m in w.media() {
                let (wr, rd) = m.throughput();
                media_write.insert(m.id, net.add_resource(&format!("{}_w", m.id), wr));
                media_read.insert(m.id, net.add_resource(&format!("{}_r", m.id), rd));
            }
            if let Some(bps) = rack_uplink_bps {
                rack_uplinks.entry(w.rack()).or_insert_with(|| {
                    (
                        net.add_resource(&format!("{}_up_out", w.rack()), bps),
                        net.add_resource(&format!("{}_up_in", w.rack()), bps),
                    )
                });
            }
        }
        let sim = Self {
            master,
            workers,
            net,
            nic_in,
            nic_out,
            rack_uplinks,
            media_write,
            media_read,
            jobs: Vec::new(),
            flow_jobs: HashMap::new(),
            flow_guards: HashMap::new(),
            repl_flows: HashMap::new(),
            bytes_written: 0,
            bytes_read: 0,
        };
        for w in &sim.workers {
            sim.master.register_worker(w.id(), w.rack(), w.net_bps(), 0);
        }
        sim.push_heartbeats();
        Ok(sim)
    }

    /// The master (for namespace operations and tier reports).
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Finished-job report.
    pub fn report(&self, job: JobId) -> Option<JobReport> {
        let j = self.jobs.get(job.0)?;
        Some(JobReport {
            job,
            bytes: j.bytes_total,
            start: j.start,
            end: j.end.unwrap_or(j.start),
            failed: j.failed.clone(),
        })
    }

    /// Reports for all jobs, submission order.
    pub fn reports(&self) -> Vec<JobReport> {
        (0..self.jobs.len()).filter_map(|i| self.report(JobId(i))).collect()
    }

    /// Whether every submitted job has finished.
    pub fn all_jobs_done(&self) -> bool {
        self.jobs.iter().all(|j| j.end.is_some())
    }

    fn push_heartbeats(&self) {
        let now_ms = self.net.now().as_millis();
        for w in &self.workers {
            let (stats, net_conn) = w.heartbeat_stats();
            let _ = self.master.heartbeat(w.id(), stats, net_conn, now_ms);
        }
    }

    /// Schedules a timer surfacing `SimEvent::Timer(token)` after `secs`.
    /// Tokens at or above `1 << 62` are reserved for internal use.
    pub fn schedule_timer(&mut self, secs: f64, token: u64) {
        assert!(token < DELAY_TOKEN_BASE, "timer tokens >= 2^62 are reserved");
        self.net.schedule_after(secs, token);
    }

    /// Creates a file and submits a job writing `bytes` to it.
    pub fn submit_write(
        &mut self,
        path: &str,
        bytes: u64,
        rv: ReplicationVector,
        client: ClientLocation,
    ) -> Result<JobId> {
        let status = self.master.create_file(path, rv, None)?;
        let id = JobId(self.jobs.len());
        self.jobs.push(Job {
            kind: JobKind::Write {
                path: path.to_string(),
                remaining: bytes,
                block_size: status.block_size,
                client,
                current: None,
            },
            bytes_total: bytes,
            start: self.net.now(),
            end: None,
            failed: None,
        });
        self.advance_write_job(id);
        Ok(id)
    }

    /// Submits a job reading the whole file.
    pub fn submit_read(&mut self, path: &str, client: ClientLocation) -> Result<JobId> {
        let status = self.master.status(path)?;
        let id = JobId(self.jobs.len());
        self.jobs.push(Job {
            kind: JobKind::Read {
                path: path.to_string(),
                offset: 0,
                len: status.len,
                client,
                in_flight: 0,
            },
            bytes_total: status.len,
            start: self.net.now(),
            end: None,
            failed: None,
        });
        self.advance_read_job(id);
        Ok(id)
    }

    /// Appends the network resources of one hop `from → to` to a flow
    /// path: sender NIC out, (cross-rack uplinks when modelled), receiver
    /// NIC in. `from = None` means an off-cluster endpoint reached through
    /// the core (only the destination rack's uplink applies).
    fn push_hop(&self, from: Option<WorkerId>, to: Option<WorkerId>, res: &mut Vec<ResourceId>) {
        if let Some(f) = from {
            res.push(self.nic_out[f.0 as usize]);
        }
        if !self.rack_uplinks.is_empty() {
            let rack_of = |w: WorkerId| self.workers[w.0 as usize].rack();
            let fr = from.map(rack_of);
            let tr = to.map(rack_of);
            if fr != tr {
                if let Some(r) = fr {
                    res.push(self.rack_uplinks[&r].0);
                }
                if let Some(r) = tr {
                    res.push(self.rack_uplinks[&r].1);
                }
            }
        }
        if let Some(t) = to {
            res.push(self.nic_in[t.0 as usize]);
        }
    }

    fn finish_job(&mut self, id: JobId, failed: Option<String>) {
        let now = self.net.now();
        let j = &mut self.jobs[id.0];
        j.end = Some(now);
        j.failed = failed;
    }

    /// Starts the next block write of a write job; finishes the job when
    /// nothing remains.
    fn advance_write_job(&mut self, id: JobId) {
        let (path, len, client) = {
            let j = &mut self.jobs[id.0];
            let JobKind::Write { path, remaining, block_size, client, current } = &mut j.kind
            else {
                unreachable!("advance_write_job on a read job")
            };
            debug_assert!(current.is_none());
            if *remaining == 0 {
                let path = path.clone();
                self.finish_job(id, None);
                if let Err(e) = self.master.complete_file(&path) {
                    self.jobs[id.0].failed = Some(e.to_string());
                }
                return;
            }
            let len = (*remaining).min(*block_size);
            *remaining -= len;
            (path.clone(), len, *client)
        };

        let (block, pipeline) = match self.master.add_block(&path, len, client) {
            Ok(x) => x,
            Err(e) => {
                self.finish_job(id, Some(e.to_string()));
                return;
            }
        };

        // Build the pipeline flow: client → W1 → W2 → … with media writes.
        let mut res: Vec<ResourceId> = Vec::new();
        let mut guards: Vec<ConnGuard> = Vec::new();
        let mut prev: Option<WorkerId> = match client {
            ClientLocation::OnWorker(w) => Some(w),
            ClientLocation::OffCluster => None,
        };
        for loc in &pipeline {
            let widx = loc.worker.0 as usize;
            if prev != Some(loc.worker) {
                self.push_hop(prev, Some(loc.worker), &mut res);
                if let Some(p) = prev {
                    guards.push(self.workers[p.0 as usize].connect_net());
                }
                guards.push(self.workers[widx].connect_net());
            }
            res.push(self.media_write[&loc.media]);
            guards.push(self.workers[widx].medium(loc.media).expect("pipeline media").connect());
            prev = Some(loc.worker);
        }
        let flow = self.net.start_flow(len as f64, res);
        self.flow_jobs.insert(flow, id);
        self.flow_guards.insert(flow, guards);
        if let JobKind::Write { current, .. } = &mut self.jobs[id.0].kind {
            *current = Some((block, pipeline));
        }
        self.push_heartbeats();
    }

    /// Starts the next block read of a read job.
    fn advance_read_job(&mut self, id: JobId) {
        let (path, offset, len, client) = {
            let j = &self.jobs[id.0];
            let JobKind::Read { path, offset, len, client, .. } = &j.kind else {
                unreachable!("advance_read_job on a write job")
            };
            if *offset >= *len {
                self.finish_job(id, None);
                return;
            }
            (path.clone(), *offset, *len, *client)
        };

        // Fetch the ordering for the next block only — the retrieval
        // policy re-evaluates live load for every block (§4.2).
        let lbs = match self.master.get_file_block_locations(&path, offset, 1, client) {
            Ok(l) => l,
            Err(e) => {
                self.finish_job(id, Some(e.to_string()));
                return;
            }
        };
        let Some(lb) = lbs.into_iter().next() else {
            self.finish_job(id, Some(format!("no block at offset {offset} of {path}")));
            return;
        };
        let Some(loc) = lb.locations.first().copied() else {
            self.finish_job(id, Some(format!("block {} has no replicas", lb.block.id)));
            return;
        };
        if let JobKind::Read { offset, in_flight, .. } = &mut self.jobs[id.0].kind {
            *offset = lb.end().min(len);
            *in_flight = lb.block.len;
        }

        let src = loc.worker.0 as usize;
        let mut res = vec![self.media_read[&loc.media]];
        let mut guards =
            vec![self.workers[src].medium(loc.media).expect("replica media").connect()];
        let local = matches!(client, ClientLocation::OnWorker(w) if w == loc.worker);
        if !local {
            let dst = match client {
                ClientLocation::OnWorker(c) => Some(c),
                ClientLocation::OffCluster => None,
            };
            self.push_hop(Some(loc.worker), dst, &mut res);
            guards.push(self.workers[src].connect_net());
            if let Some(c) = dst {
                guards.push(self.workers[c.0 as usize].connect_net());
            }
        }
        let flow = self.net.start_flow(lb.block.len as f64, res);
        self.flow_jobs.insert(flow, id);
        self.flow_guards.insert(flow, guards);
        self.push_heartbeats();
    }

    /// Submits a job reading exactly one block: the block overlapping
    /// `offset` in `path`. Used by compute frameworks whose tasks process
    /// one block each.
    pub fn submit_block_read(
        &mut self,
        path: &str,
        offset: u64,
        client: ClientLocation,
    ) -> Result<JobId> {
        let lbs = self.master.get_file_block_locations(path, offset, 1, client)?;
        let Some(lb) = lbs.first() else {
            return Err(FsError::InvalidArgument(format!("no block at offset {offset} of {path}")));
        };
        let id = JobId(self.jobs.len());
        self.jobs.push(Job {
            kind: JobKind::Read {
                path: path.to_string(),
                offset: lb.offset,
                len: lb.end(),
                client,
                in_flight: 0,
            },
            bytes_total: lb.block.len,
            start: self.net.now(),
            end: None,
            failed: None,
        });
        self.advance_read_job(id);
        Ok(id)
    }

    /// Submits a raw network transfer of `bytes` from one worker to
    /// another (shuffle traffic). Same-node transfers complete at memory
    /// speed (no NIC traversal).
    pub fn submit_transfer(&mut self, from: WorkerId, to: WorkerId, bytes: u64) -> JobId {
        let id = JobId(self.jobs.len());
        self.jobs.push(Job {
            kind: JobKind::Opaque,
            bytes_total: bytes,
            start: self.net.now(),
            end: None,
            failed: None,
        });
        let mut res = Vec::new();
        let mut guards = Vec::new();
        if from != to {
            self.push_hop(Some(from), Some(to), &mut res);
            guards.push(self.workers[from.0 as usize].connect_net());
            guards.push(self.workers[to.0 as usize].connect_net());
        }
        let flow = self.net.start_flow(bytes as f64, res); // empty path ⇒ instant
        self.flow_jobs.insert(flow, id);
        self.flow_guards.insert(flow, guards);
        self.push_heartbeats();
        id
    }

    /// Submits a job that completes after `secs` of virtual time (CPU
    /// work). CPU contention is modelled by the caller through slot
    /// scheduling, not by the simulator.
    pub fn submit_delay(&mut self, secs: f64) -> JobId {
        let id = JobId(self.jobs.len());
        self.jobs.push(Job {
            kind: JobKind::Opaque,
            bytes_total: 0,
            start: self.net.now(),
            end: None,
            failed: None,
        });
        self.net.schedule_after(secs, DELAY_TOKEN_BASE + id.0 as u64);
        id
    }

    /// Runs one replication scan and launches flows for the copy tasks
    /// (deletions apply immediately). Returns the number of tasks started.
    pub fn pump_replication(&mut self) -> usize {
        let tasks = self.master.replication_scan();
        let n = tasks.len();
        for t in tasks {
            match t {
                ReplicationTask::Copy { block, sources, target } => {
                    let Some(src) = sources.first() else {
                        self.master.abort_replica(block, target);
                        continue;
                    };
                    let sw = src.worker.0 as usize;
                    let tw = target.worker.0 as usize;
                    let mut res = vec![self.media_read[&src.media]];
                    let mut guards =
                        vec![self.workers[sw].medium(src.media).expect("source media").connect()];
                    if src.worker != target.worker {
                        self.push_hop(Some(src.worker), Some(target.worker), &mut res);
                        guards.push(self.workers[sw].connect_net());
                        guards.push(self.workers[tw].connect_net());
                    }
                    res.push(self.media_write[&target.media]);
                    guards.push(
                        self.workers[tw].medium(target.media).expect("target media").connect(),
                    );
                    let flow = self.net.start_flow(block.len as f64, res);
                    self.flow_guards.insert(flow, guards);
                    self.repl_flows.insert(flow, (block, target));
                }
                ReplicationTask::Delete { block, location } => {
                    let w = location.worker.0 as usize;
                    let _ = self.workers[w].delete_block(location.media, block.id);
                }
            }
        }
        self.push_heartbeats();
        n
    }

    /// Number of replication copy flows still in flight.
    pub fn replication_in_flight(&self) -> usize {
        self.repl_flows.len()
    }

    /// Processes simulator events until one is worth surfacing (a job
    /// completion or a user timer). Returns `None` when the simulation has
    /// fully drained.
    pub fn next_sim_event(&mut self) -> Option<SimEvent> {
        loop {
            let e = self.net.next_event()?;
            match e.kind {
                EventKind::Timer(token) if token >= DELAY_TOKEN_BASE => {
                    let job = JobId((token - DELAY_TOKEN_BASE) as usize);
                    self.finish_job(job, None);
                    return Some(SimEvent::JobDone(job));
                }
                EventKind::Timer(token) => return Some(SimEvent::Timer(token)),
                EventKind::FlowDone(f) => {
                    self.flow_guards.remove(&f);
                    if let Some((block, target)) = self.repl_flows.remove(&f) {
                        self.complete_replica_write(block, target);
                        self.push_heartbeats();
                        continue;
                    }
                    let Some(job) = self.flow_jobs.remove(&f) else { continue };
                    self.complete_job_flow(job);
                    self.push_heartbeats();
                    if self.jobs[job.0].end.is_some() {
                        return Some(SimEvent::JobDone(job));
                    }
                }
            }
        }
    }

    fn complete_replica_write(&mut self, block: Block, target: Location) {
        let w = target.worker.0 as usize;
        let data = BlockData::Synthetic { len: block.len, seed: block.id.0 };
        match self.workers[w].write_block(target.media, block, &data) {
            Ok(()) => {
                let _ = self.master.commit_replica(block, target);
            }
            Err(_) => self.master.abort_replica(block, target),
        }
    }

    fn complete_job_flow(&mut self, id: JobId) {
        if matches!(self.jobs[id.0].kind, JobKind::Opaque) {
            self.finish_job(id, None);
            return;
        }
        let is_write = matches!(self.jobs[id.0].kind, JobKind::Write { .. });
        if is_write {
            let current = {
                let JobKind::Write { current, .. } = &mut self.jobs[id.0].kind else {
                    unreachable!()
                };
                current.take()
            };
            if let Some((block, pipeline)) = current {
                let data = BlockData::Synthetic { len: block.len, seed: block.id.0 };
                for loc in pipeline {
                    let w = loc.worker.0 as usize;
                    match self.workers[w].write_block(loc.media, block, &data) {
                        Ok(()) => {
                            let _ = self.master.commit_replica(block, loc);
                        }
                        Err(_) => self.master.abort_replica(block, loc),
                    }
                }
                self.bytes_written += block.len;
            }
            self.advance_write_job(id);
        } else {
            if let JobKind::Read { in_flight, .. } = &mut self.jobs[id.0].kind {
                self.bytes_read += *in_flight;
                *in_flight = 0;
            }
            self.advance_read_job(id);
        }
    }

    /// Drives the simulation until every submitted job completes. Returns
    /// the job reports.
    pub fn run_to_completion(&mut self) -> Vec<JobReport> {
        while !self.all_jobs_done() {
            if self.next_sim_event().is_none() {
                break;
            }
        }
        self.reports()
    }

    /// Drives the simulation to completion, invoking `sampler(now)` every
    /// `interval_secs` of virtual time (for time-series figures). The
    /// sampler may inspect the master through a pre-cloned `Arc`.
    pub fn run_with_sampler(
        &mut self,
        interval_secs: f64,
        mut sampler: impl FnMut(SimTime),
    ) -> Vec<JobReport> {
        const SAMPLE_TOKEN: u64 = DELAY_TOKEN_BASE - 1;
        self.schedule_timer(interval_secs, SAMPLE_TOKEN);
        while !self.all_jobs_done() {
            match self.next_sim_event() {
                Some(SimEvent::Timer(SAMPLE_TOKEN)) => {
                    sampler(self.now());
                    if !self.all_jobs_done() {
                        self.schedule_timer(interval_secs, SAMPLE_TOKEN);
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        self.reports()
    }

    /// Runs replication rounds until no more tasks are produced and all
    /// copy flows have drained (used after `setReplication` to realize
    /// moves/copies — §5).
    pub fn settle_replication(&mut self) -> Result<()> {
        loop {
            let started = self.pump_replication();
            if started == 0 && self.repl_flows.is_empty() {
                return Ok(());
            }
            while !self.repl_flows.is_empty() {
                if self.next_sim_event().is_none() && !self.repl_flows.is_empty() {
                    return Err(FsError::Internal(
                        "replication flows pending but simulator drained".into(),
                    ));
                }
            }
        }
    }

    /// Direct access to a worker (diagnostics/tests).
    pub fn worker(&self, id: WorkerId) -> &Arc<Worker> {
        &self.workers[id.0 as usize]
    }

    /// Logical bytes written by completed block writes so far (not
    /// multiplied by replication). Used by time-series experiments.
    pub fn logical_bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Logical bytes delivered by completed block reads so far.
    pub fn logical_bytes_read(&self) -> u64 {
        self.bytes_read
    }
}
