//! OctopusFS — a distributed file system with tiered storage management.
//!
//! This crate is the system facade: it assembles the master
//! ([`octopus_master`]), workers ([`octopus_storage`]), and the management
//! policies ([`octopus_policies`]) into a running file system and exposes
//! the client API of the paper's Table 1.
//!
//! Two deployment shapes share all control-plane code:
//!
//! - [`Cluster`]: a real in-process cluster — workers store actual bytes
//!   (heap or disk), the client pipelines real data through them, checksums
//!   are verified end to end. Used by applications, examples, and tests.
//! - [`SimCluster`]: the same master/policies driven by the
//!   [`octopus_simnet`] flow simulator — every transfer becomes a max-min
//!   fair flow over calibrated device/NIC resources and time is virtual.
//!   Used by the benchmark harness to reproduce the paper's experiments at
//!   40 GB scale in milliseconds.
//!
//! # Quickstart
//!
//! ```
//! use octopus_core::Cluster;
//! use octopus_common::{ClusterConfig, ReplicationVector, ClientLocation};
//!
//! let config = ClusterConfig::test_cluster(4, 64 << 20, 1 << 20);
//! let cluster = Cluster::start(config).unwrap();
//! let client = cluster.client(ClientLocation::OffCluster);
//!
//! client.mkdir("/demo").unwrap();
//! // One replica in memory, two on HDDs: the paper's ⟨1,0,2⟩.
//! let rv = ReplicationVector::msh(1, 0, 2);
//! client.write_file("/demo/hello", b"tiered storage!", rv).unwrap();
//! assert_eq!(client.read_file("/demo/hello").unwrap(), b"tiered storage!");
//! ```

pub mod cache;
pub mod client;
pub mod cluster;
pub mod federation;
pub mod net;
pub mod sim;
pub mod worker;

pub use cache::{CacheAction, CacheManager};
pub use client::{Client, FileReader, FileWriter};
pub use cluster::{build_single_worker, Cluster, StorageMode};
pub use federation::{FederatedClient, Federation};
pub use net::{NetCluster, RemoteFs};
pub use sim::{JobId, JobReport, SimCluster, SimEvent};
pub use worker::Worker;
