//! The worker runtime (paper §2.2): owns the node's storage media, serves
//! block reads/writes, and produces heartbeat statistics and block reports.

use std::sync::atomic::Ordering;
use std::sync::atomic::{AtomicBool, AtomicU32};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus_common::metrics::{GaugeGuard, Labels, MetricsRegistry};
use octopus_common::trace::TraceCollector;
use octopus_common::{
    Block, BlockData, BlockId, BlockTouches, FsError, HeatRecorder, MediaId, MediaStats, RackId,
    Result, SeriesPoint, SeriesRing, TierId, WorkerId,
};
use octopus_storage::{ConnGuard, Media, MediaManager};

/// One active I/O span against one medium: counted in the medium's
/// `NrConn` (feeding heartbeats and thereby §3.2 placement) and mirrored
/// in the `worker_media_io_conn` gauge. Held for the *full* service span
/// of a request — transfer included — not just the store operation, so
/// heartbeats observe real contention rather than probe-instant noise.
pub struct MediaIo {
    _conn: ConnGuard,
    _gauge: GaugeGuard,
}

/// One worker node.
pub struct Worker {
    manager: MediaManager,
    net_conns: Arc<AtomicU32>,
    net_bps: f64,
    emulate_bps: AtomicBool,
    metrics: MetricsRegistry,
    trace: TraceCollector,
    heat: HeatRecorder,
    series: SeriesRing,
}

impl Worker {
    /// Assembles a worker from already-constructed media.
    pub fn new(worker: WorkerId, rack: RackId, media: Vec<Arc<Media>>, net_bps: f64) -> Self {
        Self {
            manager: MediaManager::new(worker, rack, media),
            net_conns: Arc::new(AtomicU32::new(0)),
            net_bps,
            emulate_bps: AtomicBool::new(false),
            metrics: MetricsRegistry::new(),
            trace: TraceCollector::new(format!("worker-{}", worker.0)),
            heat: HeatRecorder::new(octopus_common::heat::DEFAULT_HEAT_EPOCHS),
            series: SeriesRing::new(
                octopus_common::series::DEFAULT_SERIES_INTERVAL_MS,
                octopus_common::series::DEFAULT_SERIES_POINTS,
            ),
        }
    }

    /// The worker's metrics registry (`worker_*` counters/gauges, stamped
    /// with this worker's id so merged cluster snapshots stay
    /// distinguishable).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The worker's trace collector (spans for data-server RPCs serviced
    /// by this worker, node-stamped `worker-<id>`).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    fn labels(&self) -> Labels {
        Labels::worker(self.id())
    }

    /// This worker's id.
    pub fn id(&self) -> WorkerId {
        self.manager.worker()
    }

    /// This worker's rack.
    pub fn rack(&self) -> RackId {
        self.manager.rack()
    }

    /// NIC bandwidth, bytes/s.
    pub fn net_bps(&self) -> f64 {
        self.net_bps
    }

    /// The worker's media.
    pub fn media(&self) -> &[Arc<Media>] {
        self.manager.media()
    }

    /// Looks up one medium.
    pub fn medium(&self, id: MediaId) -> Result<&Arc<Media>> {
        self.manager.get(id)
    }

    /// Opens a network connection accounting guard (one per active remote
    /// transfer touching this node).
    pub fn connect_net(&self) -> ConnGuard {
        ConnGuard::acquire(&self.net_conns)
    }

    /// Current active network connections.
    pub fn net_conn_count(&self) -> u32 {
        self.net_conns.load(Ordering::Relaxed)
    }

    /// Opens an I/O-connection span against a medium. The caller holds the
    /// returned guard for the duration of the transfer it serves (an RPC
    /// service span, an in-process block copy); [`Worker::write_block`] /
    /// [`Worker::read_block`] do *not* count connections themselves, so a
    /// span covers the whole transfer exactly once.
    pub fn media_io(&self, media: MediaId) -> Result<MediaIo> {
        let m = self.manager.get(media)?;
        let gauge = self
            .metrics
            .gauge("worker_media_io_conn", self.labels().with_tier(m.tier))
            .inc_scoped();
        Ok(MediaIo { _conn: m.connect(), _gauge: gauge })
    }

    /// Enables device-throughput emulation (see
    /// `ClusterConfig::emulate_media_bps`): data servers pace each served
    /// transfer to the medium's configured rates via
    /// [`Worker::transfer_pacing`].
    pub fn set_emulate_media_bps(&self, on: bool) {
        self.emulate_bps.store(on, Ordering::Relaxed);
    }

    /// How long serving a `len`-byte transfer against `media` should take
    /// at the medium's nominal device throughput, or `None` when emulation
    /// is off. Data servers sleep this long while holding the transfer's
    /// [`Worker::media_io`] span, so loopback deployments exhibit the
    /// per-tier bandwidths and NrConn contention the paper's evaluation
    /// assumes of real devices.
    pub fn transfer_pacing(&self, media: MediaId, len: u64, write: bool) -> Option<Duration> {
        if !self.emulate_bps.load(Ordering::Relaxed) {
            return None;
        }
        let m = self.manager.get(media).ok()?;
        let (write_bps, read_bps) = m.throughput();
        let bps = if write { write_bps } else { read_bps };
        if bps <= 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64(len as f64 / bps))
    }

    /// Stores a replica on the given medium. Connection accounting is the
    /// caller's via [`Worker::media_io`].
    pub fn write_block(&self, media: MediaId, block: Block, data: &BlockData) -> Result<()> {
        let m = self.manager.get(media)?;
        let labels = self.labels().with_tier(m.tier);
        let start = Instant::now();
        let out = m.store.put(block, data);
        self.metrics.observe_since("worker_write_us", labels, start);
        if out.is_ok() {
            self.metrics.add("worker_write_bytes_total", labels, block.len);
            self.heat.touch_write(block.id);
        }
        out
    }

    /// Reads a block from the given medium, verifying its checksum.
    pub fn read_block(&self, media: MediaId, block: BlockId) -> Result<BlockData> {
        let m = self.manager.get(media)?;
        let labels = self.labels().with_tier(m.tier);
        let start = Instant::now();
        let out = m.store.get(block);
        self.metrics.observe_since("worker_read_us", labels, start);
        if let Ok(d) = &out {
            self.metrics.add("worker_read_bytes_total", labels, d.len());
            self.heat.touch_read(block);
        }
        out
    }

    /// Reads a block from whichever local medium holds it.
    pub fn read_block_any(&self, block: BlockId) -> Result<(MediaId, BlockData)> {
        let m =
            self.manager.find_block(block).ok_or_else(|| FsError::NotFound(block.to_string()))?;
        Ok((m.id, self.read_block(m.id, block)?))
    }

    /// Deletes a replica.
    pub fn delete_block(&self, media: MediaId, block: BlockId) -> Result<()> {
        self.manager.get(media)?.store.delete(block)
    }

    /// The CRC-32 recorded when the replica was stored (served alongside
    /// remote reads so clients can verify the bytes they received).
    pub fn stored_checksum(&self, media: MediaId, block: BlockId) -> Result<u32> {
        self.manager.get(media)?.store.verify(block)
    }

    /// Deletes every local replica of `block` (a master-directed
    /// invalidation from a block-report reply), returning how many were
    /// dropped.
    pub fn invalidate_block(&self, block: BlockId) -> u32 {
        let mut dropped = 0;
        for m in self.manager.media() {
            if m.store.contains(block) && m.store.delete(block).is_ok() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Whether any local medium holds the block.
    pub fn contains(&self, block: BlockId) -> bool {
        self.manager.find_block(block).is_some()
    }

    /// Heartbeat payload: per-media statistics plus the NIC connection
    /// count.
    pub fn heartbeat_stats(&self) -> (Vec<MediaStats>, u32) {
        (self.manager.stats(), self.net_conn_count())
    }

    /// The worker's block access-heat recorder (touched by
    /// [`Worker::read_block`] / [`Worker::write_block`]).
    pub fn heat(&self) -> &HeatRecorder {
        &self.heat
    }

    /// Closes the current heat epoch and returns its per-block touch
    /// counts, sorted by block id — the heartbeat piggyback payload.
    pub fn drain_heat_epoch(&self) -> Vec<BlockTouches> {
        self.heat.drain_epoch()
    }

    /// Samples the worker's local time-series ring if its interval elapsed:
    /// per-medium remaining bytes plus NIC and I/O connection counts.
    pub fn sample_series(&self, now_ms: u64) -> bool {
        self.series.maybe_sample(now_ms, || {
            let mut values: Vec<(String, i64)> =
                vec![("net_conn".to_string(), self.net_conn_count() as i64)];
            let mut io_conn = 0i64;
            for m in self.manager.stats() {
                values.push((format!("media{}_remaining_bytes", m.media.0), m.remaining as i64));
                io_conn += m.nr_conn as i64;
            }
            values.push(("io_conn".to_string(), io_conn));
            values
        })
    }

    /// The sampled local time series, oldest first.
    pub fn series_points(&self) -> Vec<SeriesPoint> {
        self.series.points()
    }

    /// Series points evicted by ring wrap, for scrape-time drop counters.
    pub fn series_dropped(&self) -> u64 {
        self.series.dropped()
    }

    /// Block report payload: every block on every medium (paper §5).
    pub fn block_report(&self) -> Vec<(Block, MediaId)> {
        let mut out = Vec::new();
        for m in self.manager.media() {
            for info in m.store.blocks() {
                out.push((info.block, m.id));
            }
        }
        out
    }

    /// Verifies every stored block's checksum, returning the corrupt ones
    /// (the periodic scrubber of §5).
    pub fn scrub(&self) -> Vec<(BlockId, MediaId)> {
        let mut corrupt = Vec::new();
        for m in self.manager.media() {
            for info in m.store.blocks() {
                if m.store.verify(info.block.id).is_err() {
                    corrupt.push((info.block.id, m.id));
                }
            }
        }
        self.metrics.inc("worker_scrub_runs_total", self.labels());
        self.metrics.add("worker_scrub_corrupt_total", self.labels(), corrupt.len() as u64);
        corrupt
    }

    /// Total bytes stored.
    pub fn used(&self) -> u64 {
        self.manager.used()
    }

    /// The tier of one medium.
    pub fn tier_of(&self, media: MediaId) -> Result<TierId> {
        Ok(self.manager.get(media)?.tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::GenStamp;
    use octopus_storage::{BlockStore, MemoryStore};

    fn worker() -> Worker {
        let media = (0..2)
            .map(|i| {
                Arc::new(Media::new(
                    MediaId(i),
                    TierId(i as u8),
                    Arc::new(MemoryStore::new(1 << 20)),
                    1e8,
                    2e8,
                ))
            })
            .collect();
        Worker::new(WorkerId(3), RackId(1), media, 1e9)
    }

    fn blk(id: u64, len: u64) -> Block {
        Block { id: BlockId(id), gen: GenStamp(0), len }
    }

    #[test]
    fn write_read_delete() {
        let w = worker();
        let data = BlockData::generate_real(1024, 7);
        w.write_block(MediaId(0), blk(1, 1024), &data).unwrap();
        assert!(w.contains(BlockId(1)));
        assert_eq!(w.read_block(MediaId(0), BlockId(1)).unwrap(), data);
        let (m, d) = w.read_block_any(BlockId(1)).unwrap();
        assert_eq!(m, MediaId(0));
        assert_eq!(d, data);
        w.delete_block(MediaId(0), BlockId(1)).unwrap();
        assert!(!w.contains(BlockId(1)));
    }

    #[test]
    fn heartbeat_and_report() {
        let w = worker();
        w.write_block(MediaId(1), blk(2, 100), &BlockData::generate_real(100, 2)).unwrap();
        let (stats, net_conn) = w.heartbeat_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(net_conn, 0);
        assert_eq!(stats[1].remaining, (1 << 20) - 100);
        let report = w.block_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].1, MediaId(1));
        assert_eq!(report[0].0.id, BlockId(2));
    }

    #[test]
    fn net_conn_guard() {
        let w = worker();
        let g1 = w.connect_net();
        let g2 = w.connect_net();
        assert_eq!(w.net_conn_count(), 2);
        drop(g1);
        drop(g2);
        assert_eq!(w.net_conn_count(), 0);
    }

    #[test]
    fn scrub_finds_corruption() {
        let mem = Arc::new(MemoryStore::new(1 << 20));
        let store: Arc<dyn BlockStore> = mem.clone();
        let media: Vec<Arc<Media>> =
            vec![Arc::new(Media::new(MediaId(0), TierId(0), store, 1e8, 1e8))];
        let w = Worker::new(WorkerId(0), RackId(0), media, 1e9);
        w.write_block(MediaId(0), blk(1, 64), &BlockData::generate_real(64, 1)).unwrap();
        assert!(w.scrub().is_empty());
        mem.corrupt(BlockId(1)).unwrap();
        assert_eq!(w.scrub(), vec![(BlockId(1), MediaId(0))]);
    }
}
