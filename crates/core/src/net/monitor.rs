//! The networked replication monitor: executes the master's §5 tasks by
//! RPC — copies via the target worker's `Replicate` handler, deletions via
//! `DeleteBlock` — and drives scrub rounds across the fleet.

use std::collections::HashMap;
use std::net::SocketAddr;

use octopus_common::{Result, WorkerId};
use octopus_master::{Master, ReplicationTask};

use super::proto::{WorkerRequest, WorkerResponse};
use super::worker_server::call_worker;

/// Snapshot of worker data-server addresses.
pub type Addrs = HashMap<WorkerId, SocketAddr>;

/// Runs one replication scan and executes the tasks over RPC. Returns the
/// number of tasks attempted.
pub fn run_replication_round(master: &Master, addrs: &Addrs) -> Result<usize> {
    let tasks = master.replication_scan();
    let n = tasks.len();
    for task in tasks {
        match task {
            ReplicationTask::Copy { block, sources, target } => {
                let addr = addrs.get(&target.worker).copied();
                match addr {
                    Some(a) => {
                        if call_worker(a, &WorkerRequest::Replicate(block, sources, target.media))
                            .is_err()
                        {
                            master.abort_replica(block, target);
                        }
                    }
                    None => master.abort_replica(block, target),
                }
            }
            ReplicationTask::Delete { block, location } => {
                if let Some(a) = addrs.get(&location.worker).copied() {
                    let _ = call_worker(a, &WorkerRequest::DeleteBlock(location.media, block.id));
                }
            }
        }
    }
    Ok(n)
}

/// Asks every registered worker to scrub its replicas. Returns the total
/// number of corrupt replicas found (and dropped) fleet-wide.
pub fn run_scrub_round(addrs: &Addrs) -> Result<u32> {
    let mut total = 0;
    for (_, addr) in addrs.iter().map(|(w, a)| (*w, *a)).collect::<Vec<_>>() {
        if let Ok(WorkerResponse::Scrubbed(n)) = call_worker(addr, &WorkerRequest::Scrub) {
            total += n;
        }
    }
    Ok(total)
}
