//! The networked replication monitor: executes the master's §5 tasks by
//! RPC — copies via the target worker's `Replicate` handler, deletions via
//! `DeleteBlock` — and drives scrub rounds across the fleet.
//!
//! Failure handling (the silent-swallowing bugs this module used to have):
//!
//! - A failed `Copy` aborts the pending replica at the master, so the next
//!   scan re-schedules it (unchanged behaviour).
//! - A failed `Delete` **reinstates** the replica in the master's block
//!   map ([`octopus_master::Master::reinstate_replica`]): the scan removed
//!   the location before the RPC ran, so dropping the error would leave
//!   the master believing the excess replica was gone while the bytes
//!   still sit on the worker until its next block report. Reinstating
//!   keeps the block visibly over-replicated and the next round re-issues
//!   the delete.
//! - Scrub distinguishes a *clean* worker from an *unreachable* one
//!   ([`ScrubStatus`]); an unreachable worker no longer masquerades as "0
//!   corrupt replicas".
//!
//! Tasks are grouped by the worker that executes them and the per-worker
//! batches run concurrently on scoped threads, so one dead worker costs
//! its own RPC deadline budget — not a serial stall of every other
//! worker's tasks.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use octopus_common::log_warn;
use octopus_common::metrics::Labels;
use octopus_common::trace::TraceContext;
use octopus_common::{Location, Result, WorkerId};
use octopus_master::{
    AutoTierConfig, Master, MigrationDecision, MigrationDirection, ReplicationTask,
};
use octopus_policies::TierClassifier;

use super::proto::{WorkerRequest, WorkerResponse};
use super::worker_server::call_worker;

/// Snapshot of worker data-server addresses.
pub type Addrs = HashMap<WorkerId, SocketAddr>;

/// Tally of one replication round's task executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationOutcome {
    /// Tasks the scan produced.
    pub attempted: usize,
    /// Copies that reached the target worker and committed.
    pub copies_ok: usize,
    /// Copies that failed (aborted at the master; rescheduled next scan).
    pub copies_failed: usize,
    /// Deletes acknowledged by the hosting worker.
    pub deletes_ok: usize,
    /// Deletes that failed (replica reinstated; re-issued next scan).
    pub deletes_failed: usize,
}

impl ReplicationOutcome {
    /// Whether every task executed successfully.
    pub fn all_ok(&self) -> bool {
        self.copies_failed == 0 && self.deletes_failed == 0
    }
}

/// One worker's scrub outcome in a [`ScrubRound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubStatus {
    /// The worker scrubbed and found nothing.
    Clean,
    /// The worker scrubbed and dropped this many corrupt replicas.
    Corrupt(u32),
    /// The worker could not be reached (or errored) — its replicas are
    /// *unverified*, which is not the same as healthy.
    Unreachable,
}

/// Fleet-wide scrub results, per worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubRound {
    /// Outcome per scrubbed worker.
    pub workers: Vec<(WorkerId, ScrubStatus)>,
}

impl ScrubRound {
    /// Total corrupt replicas dropped by reachable workers.
    pub fn corrupt_total(&self) -> u32 {
        self.workers
            .iter()
            .map(|(_, s)| match s {
                ScrubStatus::Corrupt(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Workers that could not be scrubbed this round.
    pub fn unreachable(&self) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|(_, s)| matches!(s, ScrubStatus::Unreachable))
            .map(|(w, _)| *w)
            .collect()
    }
}

/// Executes one task against its worker, compensating at the master on
/// failure. Returns whether the task succeeded; the caller tallies into a
/// [`ReplicationOutcome`].
fn run_one_task(
    master: &Master,
    addr: Option<SocketAddr>,
    task: &ReplicationTask,
    ctx: Option<TraceContext>,
) -> bool {
    match task {
        ReplicationTask::Copy { block, sources, target } => {
            // Scoped threads don't inherit the round's thread-local
            // span stack, so the parent context travels explicitly.
            let mut span = ctx.map(|c| master.trace().child_of("monitor.copy", c));
            if let Some(s) = span.as_mut() {
                s.annotate("block", block.id);
                s.annotate("target", target.worker);
                s.annotate("tier", target.tier);
            }
            let ok = addr.is_some_and(|a| {
                call_worker(a, &WorkerRequest::Replicate(*block, sources.clone(), target.media))
                    .is_ok()
            });
            if !ok {
                log_warn!(
                    target: "net::monitor",
                    "msg=\"replication copy failed\" block={} target={}",
                    block.id,
                    target.worker
                );
                master.abort_replica(*block, *target);
            }
            ok
        }
        ReplicationTask::Delete { block, location } => {
            let mut span = ctx.map(|c| master.trace().child_of("monitor.delete", c));
            if let Some(s) = span.as_mut() {
                s.annotate("block", block.id);
                s.annotate("target", location.worker);
            }
            // `NotFound` counts as done: a retried delete whose first
            // reply was lost has already removed the replica.
            let ok = addr.is_some_and(|a| {
                match call_worker(a, &WorkerRequest::DeleteBlock(location.media, block.id)) {
                    Ok(_) => true,
                    Err(octopus_common::FsError::NotFound(_)) => true,
                    Err(_) => false,
                }
            });
            if !ok {
                log_warn!(
                    target: "net::monitor",
                    "msg=\"replication delete failed, reinstating\" block={} worker={}",
                    block.id,
                    location.worker
                );
                // The scan already dropped the location; a failed (or
                // unaddressable) delete means the bytes still exist —
                // put the replica back so the next scan retries.
                master.reinstate_replica(*block, *location);
            }
            ok
        }
    }
}

/// Folds one task's result into an outcome tally.
fn tally(out: &mut ReplicationOutcome, task: &ReplicationTask, ok: bool) {
    match (task, ok) {
        (ReplicationTask::Copy { .. }, true) => out.copies_ok += 1,
        (ReplicationTask::Copy { .. }, false) => out.copies_failed += 1,
        (ReplicationTask::Delete { .. }, true) => out.deletes_ok += 1,
        (ReplicationTask::Delete { .. }, false) => out.deletes_failed += 1,
    }
}

/// Executes one task batch against its worker, sequentially (tasks for
/// one worker share its data server; concurrency lives across workers).
fn run_worker_batch(
    master: &Master,
    addr: Option<SocketAddr>,
    tasks: Vec<ReplicationTask>,
    ctx: Option<TraceContext>,
) -> ReplicationOutcome {
    let mut out = ReplicationOutcome::default();
    for task in tasks {
        let ok = run_one_task(master, addr, &task, ctx);
        tally(&mut out, &task, ok);
    }
    out
}

/// The worker whose data server executes a task.
fn executing_worker(task: &ReplicationTask) -> WorkerId {
    match task {
        ReplicationTask::Copy { target: Location { worker, .. }, .. } => *worker,
        ReplicationTask::Delete { location: Location { worker, .. }, .. } => *worker,
    }
}

/// Runs one replication scan and executes the tasks over RPC, one
/// concurrent batch per executing worker (a dead worker's connect timeout
/// bounds only its own batch). Failures are counted — and compensated at
/// the master — rather than swallowed.
pub fn run_replication_round(master: &Master, addrs: &Addrs) -> Result<ReplicationOutcome> {
    let mut round_span = master.trace().root_or_child("monitor.replication_round");
    let ctx = Some(round_span.context());
    let tasks = master.replication_scan();
    let attempted = tasks.len();
    round_span.annotate("tasks", attempted);

    let mut by_worker: HashMap<WorkerId, Vec<ReplicationTask>> = HashMap::new();
    for task in tasks {
        by_worker.entry(executing_worker(&task)).or_default().push(task);
    }

    let mut total = ReplicationOutcome { attempted, ..Default::default() };
    let outcomes: Vec<ReplicationOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = by_worker
            .into_iter()
            .map(|(w, batch)| {
                let addr = addrs.get(&w).copied();
                s.spawn(move || run_worker_batch(master, addr, batch, ctx))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    });
    for o in outcomes {
        total.copies_ok += o.copies_ok;
        total.copies_failed += o.copies_failed;
        total.deletes_ok += o.deletes_ok;
        total.deletes_failed += o.deletes_failed;
    }

    let m = master.metrics();
    m.add("master_replication_copy_failures_total", Labels::NONE, total.copies_failed as u64);
    m.add("master_replication_delete_failures_total", Labels::NONE, total.deletes_failed as u64);
    Ok(total)
}

/// Asks every registered worker to scrub its replicas, reporting each
/// worker's outcome individually — an unreachable worker surfaces as
/// [`ScrubStatus::Unreachable`] instead of being counted as clean.
pub fn run_scrub_round(master: &Master, addrs: &Addrs) -> Result<ScrubRound> {
    let round_span = master.trace().root_or_child("monitor.scrub_round");
    let ctx = round_span.context();
    let mut round = ScrubRound::default();
    let mut targets: Vec<(WorkerId, SocketAddr)> = addrs.iter().map(|(w, a)| (*w, *a)).collect();
    targets.sort_by_key(|(w, _)| *w);
    let results: Vec<(WorkerId, ScrubStatus)> = std::thread::scope(|s| {
        let handles: Vec<_> = targets
            .into_iter()
            .map(|(w, addr)| {
                s.spawn(move || {
                    let mut span = master.trace().child_of("monitor.scrub", ctx);
                    span.annotate("worker", w);
                    let status = match call_worker(addr, &WorkerRequest::Scrub) {
                        Ok(WorkerResponse::Scrubbed(0)) => ScrubStatus::Clean,
                        Ok(WorkerResponse::Scrubbed(n)) => ScrubStatus::Corrupt(n),
                        Ok(_) | Err(_) => ScrubStatus::Unreachable,
                    };
                    if matches!(status, ScrubStatus::Unreachable) {
                        log_warn!(
                            target: "net::monitor",
                            "msg=\"scrub unreachable\" worker={w}"
                        );
                        span.annotate("error", "unreachable");
                    }
                    (w, status)
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    });
    round.workers = results;
    round.workers.sort_by_key(|(w, _)| *w);

    let m = master.metrics();
    m.inc("master_scrub_rounds_total", Labels::NONE);
    for (w, status) in &round.workers {
        if matches!(status, ScrubStatus::Unreachable) {
            m.inc("master_scrub_unreachable_total", Labels::worker(*w));
        }
    }
    Ok(round)
}

/// What one auto-tiering round planned and executed.
#[derive(Debug, Clone, Default)]
pub struct MigrationRound {
    /// The planner's decisions (vector edits installed this round).
    pub planned: Vec<MigrationDecision>,
    /// How many of them promote toward Memory.
    pub promoted: usize,
    /// How many demote away from it.
    pub demoted: usize,
    /// Execution tally for the round's copy/delete tasks.
    pub outcome: ReplicationOutcome,
    /// Bytes moved by successful copies.
    pub bytes_copied: u64,
    /// Total time this round slept to honour the bandwidth cap.
    pub paced: Duration,
}

/// Runs one auto-tiering round over RPC: plans migrations
/// ([`Master::autotier_scan`]), then executes the resulting replication
/// tasks **sequentially with paced copies** so the round's aggregate copy
/// throughput stays at or below `cfg.max_copy_bps`. Pacing is the
/// execution-side half of the bandwidth bound (the planner's per-round
/// caps are the other): after each copy the round sleeps until the
/// cumulative bytes-per-elapsed ratio is back under the cap, so a
/// migration burst cannot starve foreground traffic. On the workers the
/// copies additionally ride the `Replicate` handler's per-medium
/// `media_io` guard, serializing against foreground I/O per device.
///
/// Any replication repair work pending at the same moment executes inside
/// the same paced loop — it is all background §5 traffic, and the cap is
/// deliberately shared.
pub fn run_migration_round(
    master: &Master,
    addrs: &Addrs,
    classifier: &dyn TierClassifier,
    cfg: &AutoTierConfig,
) -> Result<MigrationRound> {
    let mut round_span = master.trace().root_or_child("monitor.migration_round");
    let ctx = Some(round_span.context());

    let planned = master.autotier_scan(classifier, cfg);
    let promoted = planned.iter().filter(|d| d.direction == MigrationDirection::Promote).count();
    let demoted = planned.len() - promoted;
    round_span.annotate("planned", planned.len());

    let tasks = master.replication_scan();
    let mut round = MigrationRound {
        outcome: ReplicationOutcome { attempted: tasks.len(), ..Default::default() },
        promoted,
        demoted,
        planned,
        ..Default::default()
    };
    let started = Instant::now();
    for task in tasks {
        let addr = addrs.get(&executing_worker(&task)).copied();
        let ok = run_one_task(master, addr, &task, ctx);
        tally(&mut round.outcome, &task, ok);
        if let (ReplicationTask::Copy { block, .. }, true) = (&task, ok) {
            round.bytes_copied += block.len;
            if cfg.max_copy_bps > 0 {
                // Sleep until cumulative-bytes / elapsed ≤ max_copy_bps.
                let target =
                    Duration::from_secs_f64(round.bytes_copied as f64 / cfg.max_copy_bps as f64);
                let elapsed = started.elapsed();
                if elapsed < target {
                    std::thread::sleep(target - elapsed);
                    round.paced += target - elapsed;
                }
            }
        }
    }

    let elapsed = started.elapsed().as_secs_f64();
    let m = master.metrics();
    m.add("master_migration_bytes_total", Labels::NONE, round.bytes_copied);
    m.add("master_migration_paced_ms_total", Labels::NONE, round.paced.as_millis() as u64);
    if round.bytes_copied > 0 && elapsed > 0.0 {
        m.gauge("master_migration_round_bps", Labels::NONE)
            .set((round.bytes_copied as f64 / elapsed) as i64);
    }
    round_span.annotate("bytes", round.bytes_copied);
    Ok(round)
}
