//! [`RemoteFs`]: the Table 1 client API over the network.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use bytes::Bytes;

use octopus_common::checksum::crc32;
use octopus_common::log_warn;
use octopus_common::metrics::{Labels, MetricsRegistry, MetricsSnapshot};
use octopus_common::trace::{self, TraceCollector, TraceContext, TraceSnapshot};
use octopus_common::{
    Block, BlockData, BlockId, ClientLocation, ClusterStatusReport, DecisionEvent, DirEntry,
    FileStatus, FsError, HeatInfo, HotFile, LocatedBlock, Location, ReplicationVector, Result,
    RpcConfig, SeriesPoint, StorageTierReport, WorkerId, DEFAULT_IO_WINDOW,
};

use super::proto::{MasterRequest, MasterResponse, WorkerRequest, WorkerResponse};
use super::rpc::{self, RpcClient};
use super::worker_server::AddressMap;

static NEXT_HOLDER: AtomicU64 = AtomicU64::new(1 << 32);

/// How many placements a single block write tries before giving up; each
/// failed attempt adds that pipeline's first worker to the exclusion list
/// of the next `AddBlock` (§3.1 pipeline recovery).
const MAX_PIPELINE_ATTEMPTS: usize = 4;

/// Default end-to-end latency above which a read/write emits a structured
/// slow-request line (overridable via `OCTOPUS_SLOW_REQUEST_MS` or
/// [`RemoteFs::with_slow_request_threshold_ms`]).
const DEFAULT_SLOW_REQUEST_MS: u64 = 1000;

fn default_slow_request_ms() -> u64 {
    std::env::var("OCTOPUS_SLOW_REQUEST_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_SLOW_REQUEST_MS)
}

/// The `OCTOPUS_IO_WINDOW` override, when set to a positive integer. The
/// environment wins over `ClusterConfig::io_window` so one process can be
/// re-windowed without editing cluster config (bench sweeps, triage).
pub(crate) fn env_io_window() -> Option<u32> {
    std::env::var("OCTOPUS_IO_WINDOW").ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n >= 1)
}

/// Per-worker metrics-scrape bookkeeping: how often the scrape failed and
/// when it last succeeded, so unreachable workers are *visible* in the
/// merged snapshot instead of silently absent.
#[derive(Default, Clone, Copy)]
pub(crate) struct ScrapeState {
    pub(crate) errors: u64,
    pub(crate) last_ok: Option<Instant>,
}

/// A networked OctopusFS client.
#[derive(Clone)]
pub struct RemoteFs {
    master: SocketAddr,
    workers: AddressMap,
    location: ClientLocation,
    holder: u64,
    rpc: Arc<RpcClient>,
    slow_ms: u64,
    window: usize,
    scrapes: Arc<Mutex<HashMap<WorkerId, ScrapeState>>>,
}

impl RemoteFs {
    /// Creates a client against the given master, with `workers` resolving
    /// data-server addresses.
    pub fn new(master: SocketAddr, workers: AddressMap, location: ClientLocation) -> Self {
        Self {
            master,
            workers,
            location,
            holder: NEXT_HOLDER.fetch_add(1, Ordering::Relaxed),
            rpc: Arc::clone(rpc::shared()),
            slow_ms: default_slow_request_ms(),
            window: env_io_window().unwrap_or(DEFAULT_IO_WINDOW) as usize,
            scrapes: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Overrides the I/O window: how many blocks of one transfer are kept
    /// in flight concurrently. `1` restores the fully serial data path;
    /// values are clamped to at least 1. The `OCTOPUS_IO_WINDOW`
    /// environment variable seeds the default.
    pub fn with_io_window(mut self, window: u32) -> Self {
        self.window = window.max(1) as usize;
        self
    }

    /// The configured I/O window.
    pub fn io_window(&self) -> u32 {
        self.window as u32
    }

    /// Overrides the slow-request log threshold (milliseconds). `0` logs
    /// every read/write; `u64::MAX` disables the log.
    pub fn with_slow_request_threshold_ms(mut self, ms: u64) -> Self {
        self.slow_ms = ms;
        self
    }

    /// Replaces the RPC deadlines/retry budget with a dedicated client
    /// (tests use [`RpcConfig::fast_test`] to detect failures quickly).
    pub fn with_rpc_config(mut self, cfg: RpcConfig) -> Self {
        self.rpc = Arc::new(RpcClient::new(cfg));
        self
    }

    /// Connects to a master by address alone, fetching the worker
    /// data-server addresses from its registry (daemon deployments).
    pub fn connect(master: SocketAddr, location: ClientLocation) -> Result<Self> {
        let client = Self::new(
            master,
            std::sync::Arc::new(parking_lot::RwLock::new(Default::default())),
            location,
        );
        client.refresh_workers()?;
        Ok(client)
    }

    /// Re-fetches the worker address registry from the master.
    pub fn refresh_workers(&self) -> Result<()> {
        match self.call(MasterRequest::WorkerAddresses)? {
            MasterResponse::Addresses(list) => {
                let mut map = self.workers.write();
                for (w, a) in list {
                    if let Ok(mut it) = std::net::ToSocketAddrs::to_socket_addrs(a.as_str()) {
                        if let Some(sa) = it.next() {
                            map.insert(w, sa);
                        }
                    }
                }
                Ok(())
            }
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Snapshot of this client's metrics: the `rpc_client_*` series of the
    /// underlying [`RpcClient`] plus the `client_*` recovery/failover
    /// counters the read and write paths record into the same registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.rpc.metrics().snapshot()
    }

    /// This client's trace collector (request root spans plus per-attempt
    /// transport spans).
    pub fn trace(&self) -> &TraceCollector {
        self.rpc.trace()
    }

    /// The master's registry alone, over one `Metrics` RPC — no worker
    /// fan-out. The fast path for `status`/`perf` views that only read
    /// `master_*` and `lock_*` series; one slow worker cannot stall them.
    pub fn master_metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        match self.call(MasterRequest::Metrics)? {
            MasterResponse::Metrics(s) => Ok(s),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Cluster-wide metrics: the master's registry plus every reachable
    /// worker's (both over the idempotent `Metrics` RPC), merged with this
    /// client's own series. Unreachable workers are skipped so scraping
    /// does not fail because one node is down — but every skip is counted
    /// in `metrics_scrape_errors_total{worker=…}`, and
    /// `metrics_scrape_age_ms{worker=…}` reports how stale each worker's
    /// contribution is, so a silent blind spot cannot form.
    pub fn cluster_metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        let mut snap = match self.call(MasterRequest::Metrics)? {
            MasterResponse::Metrics(s) => s,
            r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
        };
        let targets: Vec<(WorkerId, SocketAddr)> =
            self.workers.read().iter().map(|(w, a)| (*w, *a)).collect();
        let mut scrapes = self.scrapes.lock().unwrap();
        for (w, addr) in targets {
            let state = scrapes.entry(w).or_default();
            match self.call_worker(addr, &WorkerRequest::Metrics) {
                Ok(WorkerResponse::Metrics(s)) => {
                    state.last_ok = Some(Instant::now());
                    snap.merge(s);
                }
                _ => {
                    state.errors += 1;
                    log_warn!(
                        target: "net::client",
                        "msg=\"metrics scrape failed\" worker={w} errors={}",
                        state.errors
                    );
                }
            }
        }
        snap.merge(scrape_visibility(&scrapes));
        drop(scrapes);
        snap.merge(self.metrics_snapshot());
        Ok(snap)
    }

    /// Cluster-wide trace snapshot: the master's collector, every
    /// reachable worker's, and this client's own spans merged into one
    /// assembly (the trace analogue of
    /// [`RemoteFs::cluster_metrics_snapshot`]).
    pub fn cluster_trace_snapshot(&self) -> Result<TraceSnapshot> {
        let mut snap = match self.call(MasterRequest::Trace)? {
            MasterResponse::Trace(s) => s,
            r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
        };
        let targets: Vec<SocketAddr> = self.workers.read().values().copied().collect();
        for addr in targets {
            if let Ok(WorkerResponse::Trace(s)) = self.call_worker(addr, &WorkerRequest::Trace) {
                snap.merge(s);
            }
        }
        snap.merge(self.trace().snapshot());
        Ok(snap)
    }

    /// Access-heat summary of one file (the master-side EWMA fed by
    /// heartbeat-piggybacked worker touch counts).
    pub fn heat(&self, path: &str) -> Result<HeatInfo> {
        match self.call(MasterRequest::Heat(path.into()))? {
            MasterResponse::Heat(h) => Ok(h),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Every retained placement/retrieval/removal decision event for a
    /// block, oldest first.
    pub fn explain_placement(&self, block: BlockId) -> Result<Vec<DecisionEvent>> {
        match self.call(MasterRequest::ExplainPlacement(block))? {
            MasterResponse::Decisions(d) => Ok(d),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// The `n` most recent auto-tiering migration decisions, oldest first
    /// (`octofs-remote migrations`).
    pub fn migrations(&self, n: u32) -> Result<Vec<DecisionEvent>> {
        match self.call(MasterRequest::Migrations(n))? {
            MasterResponse::Decisions(d) => Ok(d),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// The master's one-stop cluster status report.
    pub fn cluster_status(&self) -> Result<ClusterStatusReport> {
        match self.call(MasterRequest::ClusterStatus)? {
            MasterResponse::ClusterStatus(s) => Ok(s),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// The `k` hottest files, hottest first.
    pub fn hot_files(&self, k: u32) -> Result<Vec<HotFile>> {
        match self.call(MasterRequest::HotFiles(k))? {
            MasterResponse::HotFiles(h) => Ok(h),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// The master's sampled time series (per-tier capacity gauges and
    /// cluster counts), oldest first.
    pub fn master_series(&self) -> Result<Vec<SeriesPoint>> {
        match self.call(MasterRequest::Series)? {
            MasterResponse::Series(s) => Ok(s),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// One worker's sampled local time series, oldest first.
    pub fn worker_series(&self, worker: WorkerId) -> Result<Vec<SeriesPoint>> {
        let addr = self.worker_addr(worker)?;
        match self.call_worker(addr, &WorkerRequest::Series)? {
            WorkerResponse::Series(s) => Ok(s),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    fn call(&self, req: MasterRequest) -> Result<MasterResponse> {
        self.rpc.call_master(self.master, &req)
    }

    /// Emits one structured warn line when an end-to-end request exceeded
    /// the slow threshold, with its trace id (stamped by the logger from
    /// the still-active root span) and per-stage breakdown.
    fn maybe_log_slow(&self, op: &str, path: &str, start: Instant, stages: &[(&str, u64)]) {
        let total_ms = start.elapsed().as_millis() as u64;
        if total_ms < self.slow_ms {
            return;
        }
        let mut breakdown = String::new();
        for (name, us) in stages {
            breakdown.push_str(&format!(" {name}_us={us}"));
        }
        log_warn!(
            target: "net::client",
            "msg=\"slow request\" op={op} path={path} total_ms={total_ms}{breakdown}"
        );
    }

    fn call_worker(&self, addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
        self.rpc.call_worker(addr, req)
    }

    fn worker_addr(&self, w: WorkerId) -> Result<SocketAddr> {
        self.workers.read().get(&w).copied().ok_or_else(|| FsError::UnknownWorker(w.to_string()))
    }

    /// Creates a directory and parents.
    pub fn mkdir(&self, path: &str) -> Result<()> {
        self.call(MasterRequest::Mkdir(path.into())).map(|_| ())
    }

    /// Status of a path.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        match self.call(MasterRequest::Status(path.into()))? {
            MasterResponse::Status(s) => Ok(s),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Lists a directory.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>> {
        match self.call(MasterRequest::List(path.into()))? {
            MasterResponse::Entries(e) => Ok(e),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Renames a file or directory.
    pub fn rename(&self, src: &str, dst: &str) -> Result<()> {
        self.call(MasterRequest::Rename(src.into(), dst.into())).map(|_| ())
    }

    /// Deletes a path, invalidating replicas at the workers.
    pub fn delete(&self, path: &str, recursive: bool) -> Result<()> {
        let dropped = match self.call(MasterRequest::Delete(path.into(), recursive))? {
            MasterResponse::Dropped(d) => d,
            r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
        };
        // Best-effort: a worker that is down misses its invalidation here,
        // but the master has already dropped the blocks from the block map,
        // so the replica is purged by the worker's next block report.
        for (block, loc) in dropped {
            if let Ok(addr) = self.worker_addr(loc.worker) {
                let _ = self.call_worker(addr, &WorkerRequest::DeleteBlock(loc.media, block));
            }
        }
        Ok(())
    }

    /// `setReplication` (Table 1).
    pub fn set_replication(&self, path: &str, rv: ReplicationVector) -> Result<ReplicationVector> {
        match self.call(MasterRequest::SetReplication(path.into(), rv))? {
            MasterResponse::Vector(v) => Ok(v),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// `getFileBlockLocations` (Table 1).
    pub fn get_file_block_locations(
        &self,
        path: &str,
        start: u64,
        len: u64,
    ) -> Result<Vec<LocatedBlock>> {
        match self.call(MasterRequest::GetBlockLocations(path.into(), start, len, self.location))? {
            MasterResponse::Located(l) => Ok(l),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// `getStorageTierReports` (Table 1).
    pub fn get_storage_tier_reports(&self) -> Result<Vec<StorageTierReport>> {
        match self.call(MasterRequest::TierReports)? {
            MasterResponse::Reports(r) => Ok(r),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Creates `path` and writes `data` through worker pipelines (§3.1).
    pub fn write_file(&self, path: &str, data: &[u8], rv: ReplicationVector) -> Result<()> {
        let start = Instant::now();
        let mut span = self.trace().root_or_child("client.write_file");
        span.annotate("path", path);
        span.annotate("bytes", data.len());

        let stage = Instant::now();
        let status =
            match self.call(MasterRequest::CreateFile(path.into(), rv, None, self.holder))? {
                MasterResponse::Status(s) => s,
                r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
            };
        let create_us = stage.elapsed().as_micros() as u64;
        let block_size = status.block_size as usize;
        // Zero-length files have no blocks: `chunks` is empty and the file
        // is closed immediately below.
        let stage = Instant::now();
        let chunks: Vec<Bytes> =
            data.chunks(block_size.max(1)).map(Bytes::copy_from_slice).collect();
        if chunks.len() <= 1 || self.window == 1 {
            for chunk in chunks {
                self.write_one_block(path, chunk)?;
            }
        } else {
            self.write_blocks_windowed(path, chunks, span.context())?;
        }
        let blocks_us = stage.elapsed().as_micros() as u64;
        self.rpc.metrics().add("client_write_bytes_total", Labels::NONE, data.len() as u64);
        let stage = Instant::now();
        let out = self.call(MasterRequest::CompleteFile(path.into(), self.holder)).map(|_| ());
        let complete_us = stage.elapsed().as_micros() as u64;
        self.maybe_log_slow(
            "write",
            path,
            start,
            &[("create", create_us), ("blocks", blocks_us), ("complete", complete_us)],
        );
        out
    }

    /// Writes one block through a worker pipeline, recovering from stage
    /// failures (§3.1): when the pipeline's entry worker fails with a
    /// transport error, the partially-written block is abandoned at the
    /// master and a fresh placement is requested that excludes every
    /// worker a previous attempt already failed on.
    fn write_one_block(&self, path: &str, payload: Bytes) -> Result<()> {
        let mut span = trace::child("client.write_block");
        let len = payload.len() as u64;
        if let Some(s) = span.as_mut() {
            s.annotate("bytes", len);
        }
        let mut excluded: Vec<WorkerId> = Vec::new();
        let mut last_err = FsError::PlacementFailed(format!("no pipeline attempted for {path}"));
        for attempt in 0..MAX_PIPELINE_ATTEMPTS {
            if let (Some(s), true) = (span.as_mut(), attempt > 0) {
                s.annotate("retry", attempt);
            }
            let (block, pipeline) = match self.call(MasterRequest::AddBlock(
                path.into(),
                len,
                self.location,
                self.holder,
                excluded.clone(),
            ))? {
                MasterResponse::Allocated(b, p) => (b, p),
                r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
            };
            let Some((first, rest)) = pipeline.split_first() else {
                return Err(FsError::PlacementFailed(format!("empty pipeline for {path}")));
            };
            let attempt = self.worker_addr(first.worker).and_then(|addr| {
                self.call_worker(
                    addr,
                    &WorkerRequest::WriteBlock(
                        block,
                        first.media,
                        rest.to_vec(),
                        BlockData::Real(payload.clone()),
                    ),
                )
            });
            match attempt {
                Ok(WorkerResponse::Stored(locs)) if !locs.is_empty() => return Ok(()),
                Ok(WorkerResponse::Stored(_)) => {
                    last_err = FsError::BlockUnavailable(format!(
                        "no pipeline stage stored block {}",
                        block.id
                    ));
                }
                Ok(r) => return Err(FsError::Io(format!("unexpected response {r:?}"))),
                Err(e) if e.is_retryable() => last_err = e,
                Err(e) => return Err(e),
            }
            // The entry worker failed (or nothing was stored): release the
            // allocated block so the file has no dangling last block, then
            // re-request placement avoiding the failed worker.
            log_warn!(
                target: "net::client",
                "msg=\"pipeline recovery\" path={path} block={} failed_worker={} err=\"{last_err}\"",
                block.id,
                first.worker
            );
            self.rpc.metrics().inc("client_pipeline_recoveries_total", Labels::NONE);
            let _ = self.call(MasterRequest::AbandonBlock(path.into(), block, self.holder));
            excluded.push(first.worker);
        }
        Err(last_err)
    }

    /// Writes `chunks` through up to `window` concurrent pipelines.
    ///
    /// Block order is the file's byte order (the master's ordering
    /// invariant — see `Master::reassign_block_as`), so `AddBlock` calls
    /// go through a turnstile that admits them strictly in chunk order
    /// while the transfers themselves overlap. Recovery from a failed
    /// pipeline stage uses `ReassignBlock` rather than the serial path's
    /// abandon-and-reallocate: a mid-file block must keep its slot.
    ///
    /// First-error cancellation: one failed block stops further blocks
    /// from being issued, in-flight transfers drain, and every reserved
    /// block from the tail down to the first incomplete slot is abandoned
    /// in reverse order — the file is left with exactly its completed
    /// prefix of blocks and the first error is returned.
    fn write_blocks_windowed(
        &self,
        path: &str,
        chunks: Vec<Bytes>,
        ctx: TraceContext,
    ) -> Result<()> {
        let n = chunks.len();
        let window = self.window.min(n);
        let sched = WriteScheduler::new();
        // Per-chunk outcome, written by the owning worker thread only:
        // the reserved block (AddBlock succeeded) and whether its transfer
        // completed. Reserved slots form a contiguous prefix because the
        // turnstile serializes AddBlock in chunk order.
        let states: Vec<Mutex<(Option<Block>, bool)>> =
            (0..n).map(|_| Mutex::new((None, false))).collect();
        std::thread::scope(|scope| {
            for _ in 0..window {
                scope.spawn(|| loop {
                    let i = sched.next.fetch_add(1, Ordering::SeqCst);
                    if i >= n || sched.is_cancelled() {
                        break;
                    }
                    // Scoped threads have no span on their TLS stack: the
                    // explicit context handoff keeps every per-block span
                    // (and everything nested under it) in the write's
                    // trace, as siblings under the root.
                    let mut bspan = self.trace().child_of("client.write_block", ctx);
                    bspan.annotate("index", i);
                    bspan.annotate("bytes", chunks[i].len());
                    if !sched.await_turn(i) {
                        break;
                    }
                    let alloc = self.call(MasterRequest::AddBlock(
                        path.into(),
                        chunks[i].len() as u64,
                        self.location,
                        self.holder,
                        Vec::new(),
                    ));
                    let (block, pipeline) = match alloc {
                        Ok(MasterResponse::Allocated(b, p)) => (b, p),
                        Ok(r) => {
                            sched.fail(FsError::Io(format!("unexpected response {r:?}")));
                            break;
                        }
                        Err(e) => {
                            sched.fail(e);
                            break;
                        }
                    };
                    // The slot is reserved: later chunks may allocate now,
                    // while this thread runs the (long) transfer.
                    sched.advance_turn();
                    states[i].lock().unwrap().0 = Some(block);
                    match self.transfer_block(path, block, pipeline, &chunks[i]) {
                        Ok(()) => states[i].lock().unwrap().1 = true,
                        Err(e) => {
                            bspan.annotate("error", &e);
                            sched.fail(e);
                            break;
                        }
                    }
                });
            }
        });
        let Some(err) = sched.take_error() else { return Ok(()) };
        // Cleanly abandon the tail: from the last reserved block down to
        // the first incomplete slot, in reverse order (the namespace only
        // removes last blocks). Completed blocks above a failed one are
        // sacrificed — their replicas become unknown to the master and are
        // purged via block reports — leaving the file's completed prefix.
        let outcomes: Vec<(Option<Block>, bool)> =
            states.iter().map(|s| *s.lock().unwrap()).collect();
        let first_incomplete =
            outcomes.iter().position(|(b, done)| b.is_none() || !done).unwrap_or(n);
        for (block, _) in outcomes[first_incomplete..].iter().rev() {
            if let Some(block) = block {
                let _ = self.call(MasterRequest::AbandonBlock(path.into(), *block, self.holder));
            }
        }
        Err(err)
    }

    /// Transfers one already-allocated block through its pipeline,
    /// recovering from retryable entry-stage failures by re-placing the
    /// block in its slot (`ReassignBlock`) with the failed workers
    /// excluded — the §3.1 recovery loop of [`RemoteFs::write_one_block`]
    /// adapted to blocks that may no longer be the file's last.
    fn transfer_block(
        &self,
        path: &str,
        block: Block,
        mut pipeline: Vec<Location>,
        payload: &Bytes,
    ) -> Result<()> {
        let mut excluded: Vec<WorkerId> = Vec::new();
        let mut last_err = FsError::PlacementFailed(format!("no pipeline attempted for {path}"));
        for attempt in 0..MAX_PIPELINE_ATTEMPTS {
            if attempt > 0 {
                pipeline = match self.call(MasterRequest::ReassignBlock(
                    path.into(),
                    block,
                    self.location,
                    self.holder,
                    excluded.clone(),
                ))? {
                    MasterResponse::Allocated(_, p) => p,
                    r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
                };
            }
            let Some((first, rest)) = pipeline.split_first() else {
                return Err(FsError::PlacementFailed(format!("empty pipeline for {path}")));
            };
            let outcome = self.worker_addr(first.worker).and_then(|addr| {
                self.call_worker(
                    addr,
                    &WorkerRequest::WriteBlock(
                        block,
                        first.media,
                        rest.to_vec(),
                        BlockData::Real(payload.clone()),
                    ),
                )
            });
            match outcome {
                Ok(WorkerResponse::Stored(locs)) if !locs.is_empty() => return Ok(()),
                Ok(WorkerResponse::Stored(_)) => {
                    last_err = FsError::BlockUnavailable(format!(
                        "no pipeline stage stored block {}",
                        block.id
                    ));
                }
                Ok(r) => return Err(FsError::Io(format!("unexpected response {r:?}"))),
                Err(e) if e.is_retryable() => last_err = e,
                Err(e) => return Err(e),
            }
            log_warn!(
                target: "net::client",
                "msg=\"pipeline recovery\" path={path} block={} failed_worker={} err=\"{last_err}\"",
                block.id,
                first.worker
            );
            self.rpc.metrics().inc("client_pipeline_recoveries_total", Labels::NONE);
            excluded.push(first.worker);
        }
        Err(last_err)
    }

    /// Reads a whole file, failing over across replicas (§4.1).
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        let start = Instant::now();
        let mut span = self.trace().root_or_child("client.read_file");
        span.annotate("path", path);

        let stage = Instant::now();
        let status = self.status(path)?;
        if status.is_dir {
            return Err(FsError::IsADirectory(path.into()));
        }
        let blocks = self.get_file_block_locations(path, 0, u64::MAX)?;
        let locate_us = stage.elapsed().as_micros() as u64;
        let stage = Instant::now();
        let mut out = Vec::with_capacity(status.len as usize);
        if blocks.len() <= 1 || self.window == 1 {
            for lb in blocks {
                out.extend_from_slice(&self.read_block(&lb)?);
            }
        } else {
            for b in self.read_blocks_windowed(&blocks, span.context())? {
                out.extend_from_slice(&b);
            }
        }
        let blocks_us = stage.elapsed().as_micros() as u64;
        span.annotate("bytes", out.len());
        self.rpc.metrics().add("client_read_bytes_total", Labels::NONE, out.len() as u64);
        self.maybe_log_slow("read", path, start, &[("locate", locate_us), ("blocks", blocks_us)]);
        Ok(out)
    }

    /// Reads `blocks` with up to `window` fetches in flight; blocks
    /// complete out of order into their slots and are returned in block
    /// (byte) order. Each fetch keeps the full per-replica checksum
    /// failover of [`RemoteFs::read_block`]; the first failed block
    /// cancels the fan-out and its error is returned.
    fn read_blocks_windowed(
        &self,
        blocks: &[LocatedBlock],
        ctx: TraceContext,
    ) -> Result<Vec<Bytes>> {
        let n = blocks.len();
        let window = self.window.min(n);
        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let first_err: Mutex<Option<FsError>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<Bytes>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..window {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n || cancelled.load(Ordering::SeqCst) {
                        break;
                    }
                    // Explicit context handoff (scoped threads carry no
                    // TLS span): the per-block spans — and the replica
                    // failover spans nested under them — stay in the
                    // read's trace as siblings under the root.
                    let mut bspan = self.trace().child_of("client.read_block", ctx);
                    bspan.annotate("index", i);
                    bspan.annotate("block", blocks[i].block.id);
                    match self.read_block(&blocks[i]) {
                        Ok(b) => *slots[i].lock().unwrap() = Some(b),
                        Err(e) => {
                            bspan.annotate("error", &e);
                            let mut err = first_err.lock().unwrap();
                            if err.is_none() {
                                *err = Some(e);
                            }
                            cancelled.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(e) = first_err.lock().unwrap().take() {
            return Err(e);
        }
        let out: Vec<Bytes> = slots
            .iter()
            .map(|s| s.lock().unwrap().take())
            .collect::<Option<_>>()
            .ok_or_else(|| FsError::Internal("parallel read left an unfilled slot".into()))?;
        Ok(out)
    }

    fn read_block(&self, lb: &LocatedBlock) -> Result<Bytes> {
        let mut last_err = FsError::BlockUnavailable(format!("{}: no replicas", lb.block.id));
        for (i, loc) in lb.locations.iter().enumerate() {
            // One span per replica attempt: failovers become sibling spans
            // under the read's root, annotated with the replica index.
            let mut rep_span = trace::child("client.read_replica");
            if let Some(s) = rep_span.as_mut() {
                s.annotate("block", lb.block.id);
                s.annotate("replica", i);
                s.annotate("worker", loc.worker);
                s.annotate("tier", loc.tier);
            }
            let attempt = self.worker_addr(loc.worker).and_then(|addr| {
                self.call_worker(addr, &WorkerRequest::ReadBlock(loc.media, lb.block.id))
            });
            match attempt {
                Ok(WorkerResponse::Data(BlockData::Real(b), sum))
                    if b.len() as u64 == lb.block.len =>
                {
                    // Verify against the checksum recorded at write time:
                    // catches both a corrupt replica and bytes damaged in
                    // flight; either way the next replica is tried (§4.1).
                    let verify = trace::child("client.checksum");
                    let actual = crc32(&b);
                    drop(verify);
                    if actual == sum {
                        return Ok(b);
                    }
                    log_warn!(
                        target: "net::client",
                        "msg=\"checksum failover\" block={} replica={i} worker={}",
                        lb.block.id,
                        loc.worker
                    );
                    self.rpc.metrics().inc("client_checksum_failovers_total", Labels::NONE);
                    last_err = FsError::ChecksumMismatch { expected: sum, actual };
                    if let Some(s) = rep_span.as_mut() {
                        s.annotate("error", "checksum mismatch");
                    }
                }
                Ok(WorkerResponse::Data(d, _)) => {
                    last_err = FsError::BlockUnavailable(format!(
                        "{}: replica length {} != {}",
                        lb.block.id,
                        d.len(),
                        lb.block.len
                    ));
                }
                Ok(r) => last_err = FsError::Io(format!("unexpected response {r:?}")),
                Err(e) => {
                    if let Some(s) = rep_span.as_mut() {
                        s.annotate("error", &e);
                    }
                    last_err = e;
                }
            }
            // A further location exists: this failure becomes a failover.
            if i + 1 < lb.locations.len() {
                self.rpc.metrics().inc("client_replica_failovers_total", Labels::NONE);
            }
        }
        Err(last_err)
    }
}

/// Coordination state of one windowed write: a work counter handing out
/// chunk indices, a turnstile admitting `AddBlock` calls strictly in chunk
/// order (the master appends blocks in call order — the file's byte
/// layout), and first-error cancellation.
struct WriteScheduler {
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// The chunk index whose `AddBlock` may run now.
    turn: Mutex<usize>,
    turn_cv: Condvar,
    cancelled: AtomicBool,
    /// The first error; later failures are dropped (the first is what the
    /// caller acts on, matching the serial path's early return).
    error: Mutex<Option<FsError>>,
}

impl WriteScheduler {
    fn new() -> Self {
        Self {
            next: AtomicUsize::new(0),
            turn: Mutex::new(0),
            turn_cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// Blocks until chunk `index` may issue its `AddBlock`. Returns false
    /// when the write was cancelled instead (a failed thread never
    /// advances the turn; it wakes the waiters through `fail`).
    fn await_turn(&self, index: usize) -> bool {
        let mut turn = self.turn.lock().unwrap();
        loop {
            if self.cancelled.load(Ordering::SeqCst) {
                return false;
            }
            if *turn == index {
                return true;
            }
            turn = self.turn_cv.wait(turn).unwrap();
        }
    }

    /// Admits the next chunk's `AddBlock` (called once the current one is
    /// allocated, before its transfer runs).
    fn advance_turn(&self) {
        let mut turn = self.turn.lock().unwrap();
        *turn += 1;
        self.turn_cv.notify_all();
    }

    /// Records the first error and cancels the write: no new chunks are
    /// claimed, turnstile waiters wake and exit. Notifying under the turn
    /// lock closes the missed-wakeup race with `await_turn`.
    fn fail(&self, e: FsError) {
        {
            let mut err = self.error.lock().unwrap();
            if err.is_none() {
                *err = Some(e);
            }
        }
        let _turn = self.turn.lock().unwrap();
        self.cancelled.store(true, Ordering::SeqCst);
        self.turn_cv.notify_all();
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    fn take_error(&self) -> Option<FsError> {
        self.error.lock().unwrap().take()
    }
}

/// Renders the scrape bookkeeping as metric samples:
/// `metrics_scrape_errors_total{worker=…}` (cumulative failed scrapes) and
/// `metrics_scrape_age_ms{worker=…}` (time since the last successful
/// scrape; `-1` when the worker has never been scraped successfully).
pub(crate) fn scrape_visibility(scrapes: &HashMap<WorkerId, ScrapeState>) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    for (w, state) in scrapes {
        let labels = Labels::worker(*w);
        reg.add("metrics_scrape_errors_total", labels, state.errors);
        let age_ms = state.last_ok.map(|t| t.elapsed().as_millis() as i64).unwrap_or(-1);
        reg.gauge("metrics_scrape_age_ms", labels).set(age_ms);
    }
    reg.snapshot()
}
