//! [`RemoteFs`]: the Table 1 client API over the network.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use octopus_common::checksum::crc32;
use octopus_common::metrics::{Labels, MetricsSnapshot};
use octopus_common::{
    BlockData, ClientLocation, DirEntry, FileStatus, FsError, LocatedBlock, ReplicationVector,
    Result, RpcConfig, StorageTierReport, WorkerId,
};

use super::proto::{MasterRequest, MasterResponse, WorkerRequest, WorkerResponse};
use super::rpc::{self, RpcClient};
use super::worker_server::AddressMap;

static NEXT_HOLDER: AtomicU64 = AtomicU64::new(1 << 32);

/// How many placements a single block write tries before giving up; each
/// failed attempt adds that pipeline's first worker to the exclusion list
/// of the next `AddBlock` (§3.1 pipeline recovery).
const MAX_PIPELINE_ATTEMPTS: usize = 4;

/// A networked OctopusFS client.
#[derive(Clone)]
pub struct RemoteFs {
    master: SocketAddr,
    workers: AddressMap,
    location: ClientLocation,
    holder: u64,
    rpc: Arc<RpcClient>,
}

impl RemoteFs {
    /// Creates a client against the given master, with `workers` resolving
    /// data-server addresses.
    pub fn new(master: SocketAddr, workers: AddressMap, location: ClientLocation) -> Self {
        Self {
            master,
            workers,
            location,
            holder: NEXT_HOLDER.fetch_add(1, Ordering::Relaxed),
            rpc: Arc::clone(rpc::shared()),
        }
    }

    /// Replaces the RPC deadlines/retry budget with a dedicated client
    /// (tests use [`RpcConfig::fast_test`] to detect failures quickly).
    pub fn with_rpc_config(mut self, cfg: RpcConfig) -> Self {
        self.rpc = Arc::new(RpcClient::new(cfg));
        self
    }

    /// Connects to a master by address alone, fetching the worker
    /// data-server addresses from its registry (daemon deployments).
    pub fn connect(master: SocketAddr, location: ClientLocation) -> Result<Self> {
        let client = Self::new(
            master,
            std::sync::Arc::new(parking_lot::RwLock::new(Default::default())),
            location,
        );
        client.refresh_workers()?;
        Ok(client)
    }

    /// Re-fetches the worker address registry from the master.
    pub fn refresh_workers(&self) -> Result<()> {
        match self.call(MasterRequest::WorkerAddresses)? {
            MasterResponse::Addresses(list) => {
                let mut map = self.workers.write();
                for (w, a) in list {
                    if let Ok(mut it) = std::net::ToSocketAddrs::to_socket_addrs(a.as_str()) {
                        if let Some(sa) = it.next() {
                            map.insert(w, sa);
                        }
                    }
                }
                Ok(())
            }
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Snapshot of this client's metrics: the `rpc_client_*` series of the
    /// underlying [`RpcClient`] plus the `client_*` recovery/failover
    /// counters the read and write paths record into the same registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.rpc.metrics().snapshot()
    }

    /// Cluster-wide metrics: the master's registry plus every reachable
    /// worker's (both over the idempotent `Metrics` RPC), merged with this
    /// client's own series. Unreachable workers are skipped — scraping
    /// must not fail because one node is down.
    pub fn cluster_metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        let mut snap = match self.call(MasterRequest::Metrics)? {
            MasterResponse::Metrics(s) => s,
            r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
        };
        let addrs: Vec<SocketAddr> = self.workers.read().values().copied().collect();
        for addr in addrs {
            if let Ok(WorkerResponse::Metrics(s)) = self.call_worker(addr, &WorkerRequest::Metrics)
            {
                snap.merge(s);
            }
        }
        snap.merge(self.metrics_snapshot());
        Ok(snap)
    }

    fn call(&self, req: MasterRequest) -> Result<MasterResponse> {
        self.rpc.call_master(self.master, &req)
    }

    fn call_worker(&self, addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
        self.rpc.call_worker(addr, req)
    }

    fn worker_addr(&self, w: WorkerId) -> Result<SocketAddr> {
        self.workers.read().get(&w).copied().ok_or_else(|| FsError::UnknownWorker(w.to_string()))
    }

    /// Creates a directory and parents.
    pub fn mkdir(&self, path: &str) -> Result<()> {
        self.call(MasterRequest::Mkdir(path.into())).map(|_| ())
    }

    /// Status of a path.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        match self.call(MasterRequest::Status(path.into()))? {
            MasterResponse::Status(s) => Ok(s),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Lists a directory.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>> {
        match self.call(MasterRequest::List(path.into()))? {
            MasterResponse::Entries(e) => Ok(e),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Renames a file or directory.
    pub fn rename(&self, src: &str, dst: &str) -> Result<()> {
        self.call(MasterRequest::Rename(src.into(), dst.into())).map(|_| ())
    }

    /// Deletes a path, invalidating replicas at the workers.
    pub fn delete(&self, path: &str, recursive: bool) -> Result<()> {
        let dropped = match self.call(MasterRequest::Delete(path.into(), recursive))? {
            MasterResponse::Dropped(d) => d,
            r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
        };
        // Best-effort: a worker that is down misses its invalidation here,
        // but the master has already dropped the blocks from the block map,
        // so the replica is purged by the worker's next block report.
        for (block, loc) in dropped {
            if let Ok(addr) = self.worker_addr(loc.worker) {
                let _ = self.call_worker(addr, &WorkerRequest::DeleteBlock(loc.media, block));
            }
        }
        Ok(())
    }

    /// `setReplication` (Table 1).
    pub fn set_replication(&self, path: &str, rv: ReplicationVector) -> Result<ReplicationVector> {
        match self.call(MasterRequest::SetReplication(path.into(), rv))? {
            MasterResponse::Vector(v) => Ok(v),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// `getFileBlockLocations` (Table 1).
    pub fn get_file_block_locations(
        &self,
        path: &str,
        start: u64,
        len: u64,
    ) -> Result<Vec<LocatedBlock>> {
        match self.call(MasterRequest::GetBlockLocations(path.into(), start, len, self.location))? {
            MasterResponse::Located(l) => Ok(l),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// `getStorageTierReports` (Table 1).
    pub fn get_storage_tier_reports(&self) -> Result<Vec<StorageTierReport>> {
        match self.call(MasterRequest::TierReports)? {
            MasterResponse::Reports(r) => Ok(r),
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Creates `path` and writes `data` through worker pipelines (§3.1).
    pub fn write_file(&self, path: &str, data: &[u8], rv: ReplicationVector) -> Result<()> {
        let status =
            match self.call(MasterRequest::CreateFile(path.into(), rv, None, self.holder))? {
                MasterResponse::Status(s) => s,
                r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
            };
        let block_size = status.block_size as usize;
        // Zero-length files have no blocks: the loop body never runs and
        // the file is closed immediately below.
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + block_size).min(data.len());
            let chunk = Bytes::copy_from_slice(&data[offset..end]);
            self.write_one_block(path, chunk)?;
            offset = end;
        }
        self.rpc.metrics().add("client_write_bytes_total", Labels::NONE, data.len() as u64);
        self.call(MasterRequest::CompleteFile(path.into(), self.holder)).map(|_| ())
    }

    /// Writes one block through a worker pipeline, recovering from stage
    /// failures (§3.1): when the pipeline's entry worker fails with a
    /// transport error, the partially-written block is abandoned at the
    /// master and a fresh placement is requested that excludes every
    /// worker a previous attempt already failed on.
    fn write_one_block(&self, path: &str, payload: Bytes) -> Result<()> {
        let len = payload.len() as u64;
        let mut excluded: Vec<WorkerId> = Vec::new();
        let mut last_err = FsError::PlacementFailed(format!("no pipeline attempted for {path}"));
        for _ in 0..MAX_PIPELINE_ATTEMPTS {
            let (block, pipeline) = match self.call(MasterRequest::AddBlock(
                path.into(),
                len,
                self.location,
                self.holder,
                excluded.clone(),
            ))? {
                MasterResponse::Allocated(b, p) => (b, p),
                r => return Err(FsError::Io(format!("unexpected response {r:?}"))),
            };
            let Some((first, rest)) = pipeline.split_first() else {
                return Err(FsError::PlacementFailed(format!("empty pipeline for {path}")));
            };
            let attempt = self.worker_addr(first.worker).and_then(|addr| {
                self.call_worker(
                    addr,
                    &WorkerRequest::WriteBlock(
                        block,
                        first.media,
                        rest.to_vec(),
                        BlockData::Real(payload.clone()),
                    ),
                )
            });
            match attempt {
                Ok(WorkerResponse::Stored(locs)) if !locs.is_empty() => return Ok(()),
                Ok(WorkerResponse::Stored(_)) => {
                    last_err = FsError::BlockUnavailable(format!(
                        "no pipeline stage stored block {}",
                        block.id
                    ));
                }
                Ok(r) => return Err(FsError::Io(format!("unexpected response {r:?}"))),
                Err(e) if e.is_retryable() => last_err = e,
                Err(e) => return Err(e),
            }
            // The entry worker failed (or nothing was stored): release the
            // allocated block so the file has no dangling last block, then
            // re-request placement avoiding the failed worker.
            self.rpc.metrics().inc("client_pipeline_recoveries_total", Labels::NONE);
            let _ = self.call(MasterRequest::AbandonBlock(path.into(), block, self.holder));
            excluded.push(first.worker);
        }
        Err(last_err)
    }

    /// Reads a whole file, failing over across replicas (§4.1).
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        let status = self.status(path)?;
        if status.is_dir {
            return Err(FsError::IsADirectory(path.into()));
        }
        let blocks = self.get_file_block_locations(path, 0, u64::MAX)?;
        let mut out = Vec::with_capacity(status.len as usize);
        for lb in blocks {
            out.extend_from_slice(&self.read_block(&lb)?);
        }
        self.rpc.metrics().add("client_read_bytes_total", Labels::NONE, out.len() as u64);
        Ok(out)
    }

    fn read_block(&self, lb: &LocatedBlock) -> Result<Bytes> {
        let mut last_err = FsError::BlockUnavailable(format!("{}: no replicas", lb.block.id));
        for (i, loc) in lb.locations.iter().enumerate() {
            let attempt = self.worker_addr(loc.worker).and_then(|addr| {
                self.call_worker(addr, &WorkerRequest::ReadBlock(loc.media, lb.block.id))
            });
            match attempt {
                Ok(WorkerResponse::Data(BlockData::Real(b), sum))
                    if b.len() as u64 == lb.block.len =>
                {
                    // Verify against the checksum recorded at write time:
                    // catches both a corrupt replica and bytes damaged in
                    // flight; either way the next replica is tried (§4.1).
                    if crc32(&b) == sum {
                        return Ok(b);
                    }
                    self.rpc.metrics().inc("client_checksum_failovers_total", Labels::NONE);
                    last_err = FsError::ChecksumMismatch { expected: sum, actual: crc32(&b) };
                }
                Ok(WorkerResponse::Data(d, _)) => {
                    last_err = FsError::BlockUnavailable(format!(
                        "{}: replica length {} != {}",
                        lb.block.id,
                        d.len(),
                        lb.block.len
                    ));
                }
                Ok(r) => last_err = FsError::Io(format!("unexpected response {r:?}")),
                Err(e) => last_err = e,
            }
            // A further location exists: this failure becomes a failover.
            if i + 1 < lb.locations.len() {
                self.rpc.metrics().inc("client_replica_failovers_total", Labels::NONE);
            }
        }
        Err(last_err)
    }
}
