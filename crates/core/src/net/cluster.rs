//! [`NetCluster`]: boots a full networked deployment on loopback — one
//! master RPC server, one data server per worker, and real heartbeat
//! threads — from a [`ClusterConfig`].

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::RwLock;

use octopus_common::{log_warn, ClientLocation, ClusterConfig, Result, WorkerId};
use octopus_master::Master;

use super::client::RemoteFs;
use super::master_server::MasterServer;
use super::proto::{MasterRequest, MasterResponse};
use super::worker_server::{call_master, AddressMap, WorkerServer};
use crate::cluster::{build_workers_for, StorageMode};
use crate::worker::Worker;

/// Heartbeats between full block reports in the background threads.
const BEATS_PER_REPORT: u64 = 8;

/// A running networked cluster (loopback TCP).
pub struct NetCluster {
    master: Arc<Master>,
    master_server: MasterServer,
    worker_servers: Vec<Option<WorkerServer>>,
    workers: Vec<Arc<Worker>>,
    addrs: AddressMap,
    heartbeat_ms: u64,
    io_window: u32,
    epoch: Instant,
    hb_stops: Vec<Arc<AtomicBool>>,
    hb_threads: Vec<Option<JoinHandle<()>>>,
    autotier_stop: Option<Arc<AtomicBool>>,
    autotier_thread: Option<JoinHandle<()>>,
    scrapes: Mutex<HashMap<WorkerId, super::client::ScrapeState>>,
}

/// Sends one full block report for `w` and applies the master's
/// invalidation reply (replicas the master no longer tracks — e.g. a
/// delete the worker missed while offline, §5). Returns replicas dropped.
fn report_blocks(master_addr: SocketAddr, w: &Worker) -> Result<u32> {
    let mut dropped = 0;
    if let MasterResponse::Invalidate(stale) =
        call_master(master_addr, &MasterRequest::BlockReport(w.id(), w.block_report()))?
    {
        for b in stale {
            dropped += w.invalidate_block(b);
        }
    }
    Ok(dropped)
}

/// Spawns one background heartbeat thread, with a periodic block report
/// every [`BEATS_PER_REPORT`] beats.
fn spawn_heartbeat(
    master_addr: SocketAddr,
    w: Arc<Worker>,
    epoch: Instant,
    heartbeat_ms: u64,
    stop: Arc<AtomicBool>,
) -> Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("octopus-{}-hb", w.id()))
        .spawn(move || {
            let mut beats = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(heartbeat_ms));
                let now_ms = epoch.elapsed().as_millis() as u64;
                let (stats, conns) = w.heartbeat_stats();
                // Piggyback the drained heat epoch and sample the local
                // series on the same cadence — no extra RPC, no extra
                // thread.
                let touches = w.drain_heat_epoch();
                w.sample_series(now_ms);
                let _ = call_master(
                    master_addr,
                    &MasterRequest::Heartbeat(w.id(), stats, conns, now_ms, touches),
                );
                beats += 1;
                if beats.is_multiple_of(BEATS_PER_REPORT) {
                    let _ = report_blocks(master_addr, &w);
                }
            }
        })
        .map_err(|e| octopus_common::FsError::Io(e.to_string()))
}

impl NetCluster {
    /// Starts the deployment: master server, one data server per worker,
    /// registration, first heartbeats, and background heartbeat threads.
    pub fn start(config: ClusterConfig) -> Result<Self> {
        Self::start_with_mode(config, StorageMode::InMemory)
    }

    /// Starts with a specific storage mode (e.g. on-disk stores).
    pub fn start_with_mode(config: ClusterConfig, mode: StorageMode) -> Result<Self> {
        config.validate()?;
        let heartbeat_ms = config.heartbeat_ms;
        let io_window = config.io_window;
        let emulate_media_bps = config.emulate_media_bps;
        let workers = build_workers_for(&config, &mode)?;
        if emulate_media_bps {
            for w in &workers {
                w.set_emulate_media_bps(true);
            }
        }
        let master = Arc::new(Master::new(config)?);
        let master_server = MasterServer::spawn(Arc::clone(&master))?;
        let master_addr = master_server.addr();

        let addrs: AddressMap = Arc::new(RwLock::new(HashMap::new()));
        let mut worker_servers = Vec::with_capacity(workers.len());
        for w in &workers {
            let server = WorkerServer::spawn(Arc::clone(w), master_addr, Arc::clone(&addrs))?;
            addrs.write().insert(w.id(), server.addr());
            worker_servers.push(Some(server));
        }

        // Register + first heartbeat + block report over real RPC.
        let epoch = Instant::now();
        for w in &workers {
            let my_addr = addrs.read()[&w.id()].to_string();
            call_master(
                master_addr,
                &MasterRequest::RegisterWorker(w.id(), w.rack(), w.net_bps(), 0, my_addr),
            )?;
            let (stats, conns) = w.heartbeat_stats();
            call_master(master_addr, &MasterRequest::Heartbeat(w.id(), stats, conns, 0, vec![]))?;
            call_master(master_addr, &MasterRequest::BlockReport(w.id(), w.block_report()))?;
        }

        // Background heartbeat threads, one stop flag each so a single
        // worker can be taken down (fault tests) without pausing the rest.
        let mut hb_stops = Vec::with_capacity(workers.len());
        let mut hb_threads = Vec::with_capacity(workers.len());
        for w in &workers {
            let stop = Arc::new(AtomicBool::new(false));
            let handle = spawn_heartbeat(
                master_addr,
                Arc::clone(w),
                epoch,
                heartbeat_ms,
                Arc::clone(&stop),
            )?;
            hb_stops.push(stop);
            hb_threads.push(Some(handle));
        }

        Ok(Self {
            master,
            master_server,
            worker_servers,
            workers,
            addrs,
            heartbeat_ms,
            io_window,
            epoch,
            hb_stops,
            hb_threads,
            autotier_stop: None,
            autotier_thread: None,
            scrapes: Mutex::new(HashMap::new()),
        })
    }

    /// The master's RPC address.
    pub fn master_addr(&self) -> SocketAddr {
        self.master_server.addr()
    }

    /// Data-server address of a worker.
    pub fn worker_addr(&self, id: WorkerId) -> Option<SocketAddr> {
        self.addrs.read().get(&id).copied()
    }

    /// Direct access to the master (administration/diagnostics).
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// Direct access to the workers (diagnostics).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// A networked client at the given location. The client's I/O window
    /// comes from the cluster config unless `OCTOPUS_IO_WINDOW` overrides
    /// it ([`RemoteFs::with_io_window`] re-windows a single client).
    pub fn client(&self, location: ClientLocation) -> RemoteFs {
        let window = super::client::env_io_window().unwrap_or(self.io_window);
        RemoteFs::new(self.master_addr(), Arc::clone(&self.addrs), location).with_io_window(window)
    }

    /// Advances the master's failure detector to the cluster's current
    /// clock, returning workers newly declared dead (their replicas become
    /// re-replication candidates).
    pub fn tick(&self) -> Vec<WorkerId> {
        self.master.tick(self.epoch.elapsed().as_millis() as u64)
    }

    /// Runs one replication round over RPC (§5) — see
    /// [`super::monitor::run_replication_round`].
    pub fn run_replication_round(&self) -> Result<super::monitor::ReplicationOutcome> {
        let snapshot = self.addrs.read().clone();
        super::monitor::run_replication_round(&self.master, &snapshot)
    }

    /// Runs one fleet-wide scrub round over RPC, reporting per-worker
    /// outcomes (unreachable workers are surfaced, not counted clean).
    pub fn run_scrub_round(&self) -> Result<super::monitor::ScrubRound> {
        let snapshot = self.addrs.read().clone();
        super::monitor::run_scrub_round(&self.master, &snapshot)
    }

    /// Runs one auto-tiering round over RPC with bandwidth-capped copies —
    /// see [`super::monitor::run_migration_round`].
    pub fn run_migration_round(
        &self,
        classifier: &dyn octopus_policies::TierClassifier,
        cfg: &octopus_master::AutoTierConfig,
    ) -> Result<super::monitor::MigrationRound> {
        let snapshot = self.addrs.read().clone();
        super::monitor::run_migration_round(&self.master, &snapshot, classifier, cfg)
    }

    /// Starts the auto-tiering daemon: a background thread that runs one
    /// migration round every `interval_ms`. Idempotent — a second call is
    /// a no-op while a daemon is running. Stopped by
    /// [`NetCluster::stop_autotier`] or [`NetCluster::shutdown`].
    pub fn start_autotier(
        &mut self,
        classifier: Arc<dyn octopus_policies::TierClassifier>,
        cfg: octopus_master::AutoTierConfig,
        interval_ms: u64,
    ) {
        if self.autotier_thread.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let master = Arc::clone(&self.master);
        let addrs = Arc::clone(&self.addrs);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("octopus-autotier".to_string())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let snapshot = addrs.read().clone();
                    if let Err(e) = super::monitor::run_migration_round(
                        &master,
                        &snapshot,
                        classifier.as_ref(),
                        &cfg,
                    ) {
                        log_warn!(
                            target: "net::cluster",
                            "msg=\"autotier round failed\" error={e}"
                        );
                    }
                }
            })
            .expect("spawn autotier thread");
        self.autotier_stop = Some(stop);
        self.autotier_thread = Some(handle);
    }

    /// Stops the auto-tiering daemon, waiting for an in-flight round to
    /// finish. No-op if it is not running.
    pub fn stop_autotier(&mut self) {
        if let Some(stop) = self.autotier_stop.take() {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(h) = self.autotier_thread.take() {
            let _ = h.join();
        }
    }

    /// Merged cluster-wide metrics snapshot: the master's registry, every
    /// reachable worker's registry (fetched over the `Metrics` RPC), and
    /// the process-shared RPC client's `rpc_client_*` / `client_*` series.
    /// Workers that cannot be scraped (killed or unreachable) are skipped
    /// but *counted*: `metrics_scrape_errors_total{worker=…}` and
    /// `metrics_scrape_age_ms{worker=…}` surface the blind spot.
    pub fn metrics_snapshot(&self) -> Result<octopus_common::MetricsSnapshot> {
        use super::proto::{WorkerRequest, WorkerResponse};
        let mut snap = match call_master(self.master_addr(), &MasterRequest::Metrics)? {
            MasterResponse::Metrics(s) => s,
            r => {
                return Err(octopus_common::FsError::Io(format!("unexpected response {r:?}")));
            }
        };
        let mut scrapes = self.scrapes.lock().unwrap();
        for (i, w) in self.workers.iter().enumerate() {
            let state = scrapes.entry(w.id()).or_default();
            let scraped = self.worker_servers[i].is_some()
                && match self.worker_addr(w.id()) {
                    Some(addr) => {
                        match super::worker_server::call_worker(addr, &WorkerRequest::Metrics) {
                            Ok(WorkerResponse::Metrics(s)) => {
                                snap.merge(s);
                                true
                            }
                            _ => false,
                        }
                    }
                    None => false,
                };
            if scraped {
                state.last_ok = Some(Instant::now());
            } else {
                state.errors += 1;
                log_warn!(
                    target: "net::cluster",
                    "msg=\"metrics scrape failed\" worker={} errors={}",
                    w.id(),
                    state.errors
                );
            }
        }
        snap.merge(super::client::scrape_visibility(&scrapes));
        drop(scrapes);
        // The shared pooled client serves servers and default clients alike;
        // merge it once (it is a process-wide singleton, not per worker).
        snap.merge(super::rpc::shared().metrics().snapshot());
        Ok(snap)
    }

    /// Merged cluster-wide trace snapshot: the master's collector, every
    /// reachable worker's, and the process-shared RPC client's spans —
    /// the assembly point for cross-node traces (the `Trace` analogue of
    /// [`NetCluster::metrics_snapshot`]).
    pub fn trace_snapshot(&self) -> Result<octopus_common::TraceSnapshot> {
        use super::proto::{WorkerRequest, WorkerResponse};
        let mut snap = match call_master(self.master_addr(), &MasterRequest::Trace)? {
            MasterResponse::Trace(s) => s,
            r => {
                return Err(octopus_common::FsError::Io(format!("unexpected response {r:?}")));
            }
        };
        for (i, w) in self.workers.iter().enumerate() {
            if self.worker_servers[i].is_none() {
                continue;
            }
            let Some(addr) = self.worker_addr(w.id()) else { continue };
            if let Ok(WorkerResponse::Trace(s)) =
                super::worker_server::call_worker(addr, &WorkerRequest::Trace)
            {
                snap.merge(s);
            }
        }
        snap.merge(super::rpc::shared().trace().snapshot());
        Ok(snap)
    }

    /// Sends a block report for every worker whose server is up and
    /// applies the master's invalidations, returning replicas dropped —
    /// the same reconciliation the heartbeat threads run periodically,
    /// exposed so tests don't have to wait for it.
    pub fn run_block_report_round(&self) -> Result<u32> {
        let mut dropped = 0;
        for (i, w) in self.workers.iter().enumerate() {
            if self.worker_servers[i].is_some() {
                dropped += report_blocks(self.master_addr(), w)?;
            }
        }
        Ok(dropped)
    }

    /// Simulates a worker crash: stops its heartbeats and data server
    /// (severing live connections). The address registry keeps the stale
    /// entry, as a real cluster would until re-registration.
    pub fn kill_worker(&mut self, idx: usize) {
        self.hb_stops[idx].store(true, Ordering::Relaxed);
        if let Some(h) = self.hb_threads[idx].take() {
            let _ = h.join();
        }
        if let Some(mut s) = self.worker_servers[idx].take() {
            s.shutdown();
        }
    }

    /// Restarts a killed worker: new data server (fresh port),
    /// re-registration with the master, a block report (reconciling
    /// anything missed while down), and resumed heartbeats.
    pub fn restart_worker(&mut self, idx: usize) -> Result<()> {
        if self.worker_servers[idx].is_some() {
            return Ok(());
        }
        let w = &self.workers[idx];
        let master_addr = self.master_addr();
        let server = WorkerServer::spawn(Arc::clone(w), master_addr, Arc::clone(&self.addrs))?;
        self.addrs.write().insert(w.id(), server.addr());
        call_master(
            master_addr,
            &MasterRequest::RegisterWorker(
                w.id(),
                w.rack(),
                w.net_bps(),
                0,
                server.addr().to_string(),
            ),
        )?;
        let (stats, conns) = w.heartbeat_stats();
        let now_ms = self.epoch.elapsed().as_millis() as u64;
        call_master(
            master_addr,
            &MasterRequest::Heartbeat(w.id(), stats, conns, now_ms, w.drain_heat_epoch()),
        )?;
        report_blocks(master_addr, w)?;
        self.worker_servers[idx] = Some(server);
        let stop = Arc::new(AtomicBool::new(false));
        self.hb_threads[idx] = Some(spawn_heartbeat(
            master_addr,
            Arc::clone(w),
            self.epoch,
            self.heartbeat_ms,
            Arc::clone(&stop),
        )?);
        self.hb_stops[idx] = stop;
        Ok(())
    }

    /// Stops heartbeats and servers.
    pub fn shutdown(&mut self) {
        self.stop_autotier();
        for stop in &self.hb_stops {
            stop.store(true, Ordering::Relaxed);
        }
        for h in self.hb_threads.iter_mut().filter_map(Option::take) {
            let _ = h.join();
        }
        for mut s in self.worker_servers.iter_mut().filter_map(Option::take) {
            s.shutdown();
        }
        self.master_server.shutdown();
    }
}

impl Drop for NetCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
