//! [`NetCluster`]: boots a full networked deployment on loopback — one
//! master RPC server, one data server per worker, and real heartbeat
//! threads — from a [`ClusterConfig`].

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::RwLock;

use octopus_common::{ClientLocation, ClusterConfig, Result, WorkerId};
use octopus_master::Master;

use super::client::RemoteFs;
use super::master_server::MasterServer;
use super::proto::MasterRequest;
use super::worker_server::{call_master, AddressMap, WorkerServer};
use crate::cluster::{build_workers_for, StorageMode};
use crate::worker::Worker;

/// A running networked cluster (loopback TCP).
pub struct NetCluster {
    master: Arc<Master>,
    master_server: MasterServer,
    worker_servers: Vec<WorkerServer>,
    workers: Vec<Arc<Worker>>,
    addrs: AddressMap,
    hb_stop: Arc<AtomicBool>,
    hb_threads: Vec<JoinHandle<()>>,
}

impl NetCluster {
    /// Starts the deployment: master server, one data server per worker,
    /// registration, first heartbeats, and background heartbeat threads.
    pub fn start(config: ClusterConfig) -> Result<Self> {
        Self::start_with_mode(config, StorageMode::InMemory)
    }

    /// Starts with a specific storage mode (e.g. on-disk stores).
    pub fn start_with_mode(config: ClusterConfig, mode: StorageMode) -> Result<Self> {
        config.validate()?;
        let heartbeat_ms = config.heartbeat_ms;
        let workers = build_workers_for(&config, &mode)?;
        let master = Arc::new(Master::new(config)?);
        let master_server = MasterServer::spawn(Arc::clone(&master))?;
        let master_addr = master_server.addr();

        let addrs: AddressMap = Arc::new(RwLock::new(HashMap::new()));
        let mut worker_servers = Vec::with_capacity(workers.len());
        for w in &workers {
            let server =
                WorkerServer::spawn(Arc::clone(w), master_addr, Arc::clone(&addrs))?;
            addrs.write().insert(w.id(), server.addr());
            worker_servers.push(server);
        }

        // Register + first heartbeat + block report over real RPC.
        let epoch = Instant::now();
        for w in &workers {
            let my_addr = addrs.read()[&w.id()].to_string();
            call_master(
                master_addr,
                &MasterRequest::RegisterWorker(w.id(), w.rack(), w.net_bps(), 0, my_addr),
            )?;
            let (stats, conns) = w.heartbeat_stats();
            call_master(master_addr, &MasterRequest::Heartbeat(w.id(), stats, conns, 0))?;
            call_master(master_addr, &MasterRequest::BlockReport(w.id(), w.block_report()))?;
        }

        // Background heartbeat threads.
        let hb_stop = Arc::new(AtomicBool::new(false));
        let mut hb_threads = Vec::new();
        for w in &workers {
            let w = Arc::clone(w);
            let stop = Arc::clone(&hb_stop);
            let handle = std::thread::Builder::new()
                .name(format!("octopus-{}-hb", w.id()))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(std::time::Duration::from_millis(heartbeat_ms));
                        let now_ms = epoch.elapsed().as_millis() as u64;
                        let (stats, conns) = w.heartbeat_stats();
                        let _ = call_master(
                            master_addr,
                            &MasterRequest::Heartbeat(w.id(), stats, conns, now_ms),
                        );
                    }
                })
                .map_err(|e| octopus_common::FsError::Io(e.to_string()))?;
            hb_threads.push(handle);
        }

        Ok(Self {
            master,
            master_server,
            worker_servers,
            workers,
            addrs,
            hb_stop,
            hb_threads,
        })
    }

    /// The master's RPC address.
    pub fn master_addr(&self) -> SocketAddr {
        self.master_server.addr()
    }

    /// Data-server address of a worker.
    pub fn worker_addr(&self, id: WorkerId) -> Option<SocketAddr> {
        self.addrs.read().get(&id).copied()
    }

    /// Direct access to the master (administration/diagnostics).
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// Direct access to the workers (diagnostics).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// A networked client at the given location.
    pub fn client(&self, location: ClientLocation) -> RemoteFs {
        RemoteFs::new(self.master_addr(), Arc::clone(&self.addrs), location)
    }

    /// Runs one replication round over RPC (§5) — see
    /// [`super::monitor::run_replication_round`].
    pub fn run_replication_round(&self) -> Result<usize> {
        let snapshot = self.addrs.read().clone();
        super::monitor::run_replication_round(&self.master, &snapshot)
    }

    /// Runs one fleet-wide scrub round over RPC.
    pub fn run_scrub_round(&self) -> Result<u32> {
        let snapshot = self.addrs.read().clone();
        super::monitor::run_scrub_round(&snapshot)
    }

    /// Stops heartbeats and servers.
    pub fn shutdown(&mut self) {
        self.hb_stop.store(true, Ordering::Relaxed);
        for h in self.hb_threads.drain(..) {
            let _ = h.join();
        }
        for s in &mut self.worker_servers {
            s.shutdown();
        }
        self.master_server.shutdown();
    }
}

impl Drop for NetCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
