//! The networked deployment mode: the same master, workers, and policies
//! as the in-process [`crate::Cluster`], but wired over TCP with a
//! hand-rolled RPC protocol — the shape the paper's system actually runs
//! in (§2: clients talk to the master for metadata and stream block data
//! through worker-to-worker pipelines).
//!
//! - [`proto`]: request/response message types over the
//!   [`octopus_common::wire`] codec, plus the gather/scatter
//!   [`proto::FramePayload`] that lets block bytes ride as shared slices;
//! - [`frame`]: length-prefixed message framing over a TCP stream — the
//!   legacy unframed form plus the multiplexed `[len][request id][payload]`
//!   form every RPC now uses;
//! - [`server`]: [`server::ServerCore`], the shared multiplexed server
//!   runtime — per-connection demux readers feeding a bounded dispatch
//!   pool with class-based admission, per-connection in-flight caps, a
//!   bounded accept loop, and idle-connection reaping;
//! - [`master_server`] / [`worker_server`]: the master and worker request
//!   dispatchers mounted on that core, around the existing
//!   [`octopus_master::Master`] and [`crate::Worker`];
//! - [`client`]: [`RemoteFs`], the Table 1 client API over the network,
//!   including the worker-to-worker write pipeline (§3.1) and read
//!   failover (§4.1);
//! - [`cluster`]: [`NetCluster`], which boots a master and N workers on
//!   loopback ports with real heartbeat threads;
//! - [`rpc`]: [`RpcClient`], the multiplexing, deadline-bounded transport
//!   every networked call goes through — few connections per peer, an
//!   in-flight map keyed by request id, and absolute per-call deadlines;
//! - [`faults`]: deterministic fault injection at the servers' response
//!   boundary, driving the failover test suite.

pub mod backup;
pub mod client;
pub mod cluster;
pub mod faults;
pub mod frame;
pub mod master_server;
pub mod monitor;
pub mod proto;
pub mod rpc;
pub mod server;
pub mod worker_server;

pub use backup::NetBackup;
pub use client::RemoteFs;
pub use cluster::NetCluster;
pub use faults::FaultAction;
pub use master_server::MasterServer;
pub use monitor::{MigrationRound, ReplicationOutcome, ScrubRound, ScrubStatus};
pub use rpc::RpcClient;
pub use worker_server::WorkerServer;
