//! [`RpcClient`]: multiplexed, deadline-bounded TCP RPC with bounded
//! retries.
//!
//! Calls to one peer share a small set of connections (at most
//! [`RpcConfig::conns_per_peer`]) instead of checking dedicated sockets in
//! and out of a pool. Every request frame carries a unique id; a demux
//! reader thread per connection routes each response frame to the waiting
//! caller through an in-flight map, so any number of calls overlap on one
//! socket and responses may return in any order.
//!
//! Every call observes an *absolute* deadline: `read_timeout_ms` of
//! wall-clock measured from the moment the request is fully written,
//! covering however many socket reads the response takes. A server that
//! trickles one byte per syscall (slow-loris) fails the call at the same
//! deadline a silent server does — per-syscall read timeouts, which such a
//! server can reset indefinitely, are not used on the receive path.
//!
//! Backpressure: at most [`RpcConfig::max_inflight_per_peer`] calls may be
//! outstanding to one peer; the next caller *blocks* (bounded by the
//! call's own deadline budget) until a slot frees, so a storm of callers
//! degrades to queueing instead of unbounded socket/memory growth.
//!
//! Retry semantics follow the keep-alive rules of HTTP clients:
//!
//! - A send failure on a *reused* connection is the stale keep-alive race
//!   (the server closed it while idle); the request cannot have executed,
//!   so another connection is tried without consuming the retry budget.
//! - A receive failure (including a deadline expiry) is ambiguous — the
//!   request may have executed — so it is retried only for idempotent
//!   requests; non-idempotent requests surface the transport error to the
//!   caller, who owns recovery (e.g. the client pipeline re-requests
//!   placement after a failed `WriteBlock`).
//! - Connect failures and failures on fresh connections retry up to
//!   `max_retries` with exponential backoff plus jitter.
//!
//! Application-level errors ([`FsError::is_retryable`] = false) never
//! retry: they are deterministic for a given cluster state.
//!
//! Block payloads are written as shared [`bytes::Bytes`] segments and
//! decoded as views into the received frame (see
//! [`super::proto::FramePayload`]); the client never copies a block
//! between the caller and the socket.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex};
use std::time::{Duration, Instant};

use octopus_common::metrics::{Gauge, Labels, MetricsRegistry};
use octopus_common::trace::{self, TraceCollector};
use octopus_common::wire::encode;
use octopus_common::{FsError, Result, RpcConfig};

use super::frame::{read_mux_frame, write_mux_frame};
use super::proto::{
    decode_result_bytes, encode_worker_frame, FramePayload, MasterRequest, MasterResponse,
    WorkerRequest, WorkerResponse,
};

/// Which phase of the round trip failed — determines retry eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Send,
    Receive,
}

/// Where a waiting call stands.
enum SlotState {
    Waiting,
    Done(bytes::Bytes),
    Failed(FsError),
}

/// One in-flight call: the caller parks on `cv` until the demux reader
/// (or connection teardown) resolves `state`.
struct CallSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl CallSlot {
    fn new() -> Self {
        Self { state: Mutex::new(SlotState::Waiting), cv: Condvar::new() }
    }

    fn resolve(&self, to: SlotState) {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, SlotState::Waiting) {
            *st = to;
            self.cv.notify_all();
        }
    }
}

/// One multiplexed connection: a writer half serialized by a mutex, an
/// in-flight map the demux reader resolves slots through, and a spare
/// stream handle for severing the socket without waiting on the writer.
struct MuxConn {
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    slots: Mutex<HashMap<u64, Arc<CallSlot>>>,
    dead: AtomicBool,
    /// Whether any call has completed on this connection; send failures on
    /// a seasoned connection are the stale keep-alive race (free retry).
    seasoned: AtomicBool,
}

impl MuxConn {
    /// Tears the connection down exactly once: marks it dead (the owner of
    /// the false→true transition also releases the gauge count), severs
    /// the socket (unblocking the reader), and fails every waiting call.
    fn kill(&self, gauge: &Gauge, err: &FsError) {
        if !self.dead.swap(true, Ordering::AcqRel) {
            gauge.add(-1);
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        let drained: Vec<_> = {
            let mut slots = self.slots.lock().unwrap();
            slots.drain().map(|(_, s)| s).collect()
        };
        for slot in drained {
            slot.resolve(SlotState::Failed(err.clone()));
        }
    }
}

/// Per-peer state: the connection set and the in-flight counting
/// semaphore.
struct Peer {
    conns: Mutex<Vec<Arc<MuxConn>>>,
    rr: AtomicU64,
    inflight: Mutex<u32>,
    inflight_cv: Condvar,
}

/// RAII release of one per-peer in-flight slot.
struct Permit {
    peer: Arc<Peer>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut n = self.peer.inflight.lock().unwrap();
        *n = n.saturating_sub(1);
        self.peer.inflight_cv.notify_one();
    }
}

/// A multiplexing RPC client. Cheap to share (`Arc`); all state is
/// internal.
pub struct RpcClient {
    cfg: RpcConfig,
    peers: Mutex<HashMap<SocketAddr, Arc<Peer>>>,
    next_id: AtomicU64,
    /// Deterministic jitter state (a splitmix64 walk); no RNG dependency.
    jitter: AtomicU64,
    metrics: MetricsRegistry,
    trace: TraceCollector,
}

impl RpcClient {
    /// A client with the given deadlines and retry budget.
    pub fn new(cfg: RpcConfig) -> Self {
        Self {
            cfg,
            peers: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            jitter: AtomicU64::new(0x243F_6A88_85A3_08D3),
            metrics: MetricsRegistry::new(),
            trace: TraceCollector::new("client"),
        }
    }

    /// The client's configuration.
    pub fn config(&self) -> &RpcConfig {
        &self.cfg
    }

    /// This client's metrics registry (`rpc_client_*` plus the `client_*`
    /// counters recorded by `RemoteFs` instances using this client).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This client's trace collector. `RemoteFs` roots request spans
    /// here; per-attempt transport spans nest under whatever span is
    /// active on the calling thread.
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// One typed round trip to the master.
    pub fn call_master(&self, addr: SocketAddr, req: &MasterRequest) -> Result<MasterResponse> {
        let payload = FramePayload::small(encode(req));
        let frame = self.call_labeled(addr, &payload, req.is_idempotent(), req.name())?;
        decode_result_bytes::<MasterResponse>(&frame)
    }

    /// One typed round trip to a worker data server. `WriteBlock` payloads
    /// travel as shared byte segments (never copied into the frame).
    pub fn call_worker(&self, addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
        let payload = encode_worker_frame(req);
        let frame = self.call_labeled(addr, &payload, req.is_idempotent(), req.name())?;
        decode_result_bytes::<WorkerResponse>(&frame)
    }

    /// Sends one request payload and returns the raw response payload,
    /// applying multiplexing, deadlines, and the retry policy.
    pub fn call_raw(&self, addr: SocketAddr, payload: &[u8], idempotent: bool) -> Result<Vec<u8>> {
        let payload = FramePayload::small(payload.to_vec());
        Ok(self.call_labeled(addr, &payload, idempotent, "raw")?.to_vec())
    }

    fn call_labeled(
        &self,
        addr: SocketAddr,
        payload: &FramePayload,
        idempotent: bool,
        request_type: &'static str,
    ) -> Result<bytes::Bytes> {
        let labels = Labels::req(request_type);
        self.metrics.inc("rpc_client_requests_total", labels);
        let start = Instant::now();
        let out = self.attempt_loop(addr, payload, idempotent, labels, request_type);
        self.metrics.observe_since("rpc_client_request_us", labels, start);
        if matches!(out, Err(FsError::Timeout(_))) {
            self.metrics.inc("rpc_client_timeouts_total", labels);
        }
        if out.is_err() {
            self.metrics.inc("rpc_client_failures_total", labels);
        }
        out
    }

    fn attempt_loop(
        &self,
        addr: SocketAddr,
        payload: &FramePayload,
        idempotent: bool,
        labels: Labels,
        request_type: &'static str,
    ) -> Result<bytes::Bytes> {
        let peer = self.peer(addr);
        let _permit = self.acquire(&peer)?;
        let mut last_err = FsError::Unreachable(format!("{addr}: no attempt made"));
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.metrics.inc("rpc_client_retries_total", labels);
                std::thread::sleep(self.backoff(attempt));
            }

            // One transport span per attempt: retries become sibling spans
            // under the caller's span, and the backoff gap between them
            // shows up as the parent's self time in the critical path.
            // Untraced calls (no active span) skip both the span and the
            // envelope, so receivers keep decoding bare payloads.
            let mut span = trace::child(format!("rpc.{request_type}"));
            let envelope = span.as_mut().map(|s| {
                s.annotate("peer", addr);
                s.annotate("attempt", attempt);
                trace::wrap_envelope(&s.context(), &[])
            });
            let fail = |span: &mut Option<trace::SpanGuard>, e: &FsError| {
                if let Some(s) = span.as_mut() {
                    s.annotate("error", e);
                }
            };

            // Existing connections first. A send failure on a seasoned
            // connection is the stale keep-alive race — the request never
            // left, so trying the next connection is free. Each failure
            // kills its connection, so this loop is bounded by the
            // connection cap.
            loop {
                let (conn, fresh) = match self.conn_for(&peer, addr) {
                    Ok(c) => c,
                    Err(e) => {
                        fail(&mut span, &e);
                        last_err = e;
                        break;
                    }
                };
                match self.round_trip(&conn, payload, envelope.as_deref()) {
                    Ok(frame) => return Ok(frame),
                    Err((Stage::Send, e)) => {
                        let free = !fresh && conn.seasoned.load(Ordering::Acquire);
                        conn.kill(&self.conn_gauge(), &e);
                        self.forget(&peer, &conn);
                        if free {
                            // Every later exit path records its own error,
                            // so this one needs no bookkeeping.
                            continue;
                        }
                        fail(&mut span, &e);
                        last_err = e;
                        break;
                    }
                    Err((Stage::Receive, e)) => {
                        fail(&mut span, &e);
                        if !idempotent {
                            return Err(e);
                        }
                        last_err = e;
                        break;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// One request/response exchange over an established connection: frame
    /// the segments under the writer lock, then wait on the call slot for
    /// the absolute deadline.
    fn round_trip(
        &self,
        conn: &MuxConn,
        payload: &FramePayload,
        envelope: Option<&[u8]>,
    ) -> std::result::Result<bytes::Bytes, (Stage, FsError)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(CallSlot::new());
        conn.slots.lock().unwrap().insert(id, Arc::clone(&slot));

        let sent = (|| {
            let mut w = conn.writer.lock().unwrap();
            w.set_write_timeout(Some(Duration::from_millis(self.cfg.write_timeout_ms.max(1))))?;
            let mut segs: Vec<&[u8]> = Vec::with_capacity(4);
            if let Some(env) = envelope {
                segs.push(env);
            }
            segs.extend(payload.segs());
            write_mux_frame(&mut *w, id, &segs)
        })();
        if let Err(e) = sent {
            conn.slots.lock().unwrap().remove(&id);
            return Err((Stage::Send, e));
        }

        // Absolute deadline: the full wall-clock budget for the response,
        // regardless of how many socket reads deliver it.
        let deadline = Instant::now() + Duration::from_millis(self.cfg.read_timeout_ms.max(1));
        let mut st = slot.state.lock().unwrap();
        loop {
            match &*st {
                SlotState::Done(frame) => {
                    let frame = frame.clone();
                    drop(st);
                    conn.seasoned.store(true, Ordering::Release);
                    return Ok(frame);
                }
                SlotState::Failed(e) => {
                    let e = e.clone();
                    drop(st);
                    return Err((Stage::Receive, e));
                }
                SlotState::Waiting => {
                    let now = Instant::now();
                    if now >= deadline {
                        drop(st);
                        conn.slots.lock().unwrap().remove(&id);
                        return Err((
                            Stage::Receive,
                            FsError::Timeout(format!(
                                "no response within {}ms",
                                self.cfg.read_timeout_ms
                            )),
                        ));
                    }
                    let (guard, _) = slot.cv.wait_timeout(st, deadline - now).unwrap();
                    st = guard;
                }
            }
        }
    }

    /// Closes every connection to a peer (the peer restarted, tests).
    /// Synchronous: the connection gauge reflects the eviction on return.
    pub fn evict(&self, addr: SocketAddr) {
        let peer = self.peers.lock().unwrap().get(&addr).cloned();
        if let Some(peer) = peer {
            let conns: Vec<_> = peer.conns.lock().unwrap().drain(..).collect();
            let err = FsError::Unreachable("connection evicted".into());
            for conn in conns {
                conn.kill(&self.conn_gauge(), &err);
            }
        }
    }

    fn peer(&self, addr: SocketAddr) -> Arc<Peer> {
        Arc::clone(self.peers.lock().unwrap().entry(addr).or_insert_with(|| {
            Arc::new(Peer {
                conns: Mutex::new(Vec::new()),
                rr: AtomicU64::new(0),
                inflight: Mutex::new(0),
                inflight_cv: Condvar::new(),
            })
        }))
    }

    /// Blocks until a per-peer in-flight slot frees, bounded by the call's
    /// own write+read budget so a wedged peer cannot park callers forever.
    fn acquire(&self, peer: &Arc<Peer>) -> Result<Permit> {
        let cap = self.cfg.max_inflight_per_peer.max(1);
        let budget = self.cfg.write_timeout_ms.saturating_add(self.cfg.read_timeout_ms).max(1);
        let deadline = Instant::now() + Duration::from_millis(budget);
        let mut n = peer.inflight.lock().unwrap();
        while *n >= cap {
            let now = Instant::now();
            if now >= deadline {
                return Err(FsError::Timeout(format!(
                    "peer in-flight cap ({cap}) saturated for {budget}ms"
                )));
            }
            let (guard, _) = peer.inflight_cv.wait_timeout(n, deadline - now).unwrap();
            n = guard;
        }
        *n += 1;
        drop(n);
        Ok(Permit { peer: Arc::clone(peer) })
    }

    /// Picks a connection for one attempt: a live idle connection if any,
    /// else a new one while under the per-peer cap, else round-robin over
    /// the busy ones (they multiplex). Returns whether the connection was
    /// freshly opened (send failures on it then consume retry budget).
    fn conn_for(&self, peer: &Peer, addr: SocketAddr) -> Result<(Arc<MuxConn>, bool)> {
        {
            let mut conns = peer.conns.lock().unwrap();
            conns.retain(|c| !c.dead.load(Ordering::Acquire));
            if let Some(c) = conns.iter().find(|c| c.slots.lock().unwrap().is_empty()) {
                return Ok((Arc::clone(c), false));
            }
            if !conns.is_empty() && conns.len() >= self.cfg.conns_per_peer.max(1) as usize {
                let i = peer.rr.fetch_add(1, Ordering::Relaxed) as usize % conns.len();
                return Ok((Arc::clone(&conns[i]), false));
            }
        }
        // Connect outside the lock. Under a connect race several callers
        // may reach here at once; the losers fold back onto an existing
        // connection so the per-peer cap stays hard.
        let conn = self.connect(addr)?;
        let mut conns = peer.conns.lock().unwrap();
        conns.retain(|c| !c.dead.load(Ordering::Acquire));
        if conns.len() >= self.cfg.conns_per_peer.max(1) as usize {
            let i = peer.rr.fetch_add(1, Ordering::Relaxed) as usize % conns.len();
            let existing = Arc::clone(&conns[i]);
            drop(conns);
            conn.kill(&self.conn_gauge(), &FsError::Unreachable("surplus connection".into()));
            return Ok((existing, false));
        }
        conns.push(Arc::clone(&conn));
        Ok((conn, true))
    }

    fn forget(&self, peer: &Peer, conn: &Arc<MuxConn>) {
        peer.conns.lock().unwrap().retain(|c| !Arc::ptr_eq(c, conn));
    }

    fn conn_gauge(&self) -> Gauge {
        self.metrics.gauge("rpc_client_pooled_connections", Labels::NONE)
    }

    /// Opens a connection and starts its demux reader thread. The reader
    /// has *no* socket read timeout: it blocks until frames arrive or the
    /// socket dies; call deadlines are enforced by the waiting callers.
    fn connect(&self, addr: SocketAddr) -> Result<Arc<MuxConn>> {
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.cfg.connect_timeout_ms.max(1)),
        )?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let reader = stream.try_clone()?;
        let conn = Arc::new(MuxConn {
            stream,
            writer: Mutex::new(writer),
            slots: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            seasoned: AtomicBool::new(false),
        });
        self.conn_gauge().add(1);
        let gauge = self.conn_gauge();
        let demux = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("octopus-rpc-demux".into())
            .spawn(move || {
                let mut stream = reader;
                while let Ok(Some((id, frame))) = read_mux_frame(&mut stream) {
                    let slot = demux.slots.lock().unwrap().remove(&id);
                    if let Some(slot) = slot {
                        slot.resolve(SlotState::Done(bytes::Bytes::from(frame)));
                    }
                    // A response with no waiter timed out; drop it.
                }
                demux.kill(&gauge, &FsError::Unreachable("server closed the connection".into()));
            })
            .map_err(|e| FsError::Io(e.to_string()))?;
        Ok(conn)
    }

    /// `min(base << (attempt-1), max)` plus up to 50% deterministic jitter,
    /// so synchronized retry storms decorrelate.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base_ms.max(1);
        let exp = base.checked_shl(attempt.saturating_sub(1).min(16)).unwrap_or(u64::MAX);
        let capped = exp.min(self.cfg.backoff_max_ms.max(base));
        let mut z = self.jitter.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = if capped / 2 == 0 { 0 } else { z % (capped / 2) };
        Duration::from_millis(capped + jitter)
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        // Sever every connection so demux reader threads exit instead of
        // blocking on sockets nobody will write to again.
        let peers: Vec<_> = self.peers.lock().unwrap().drain().map(|(_, p)| p).collect();
        let err = FsError::Unreachable("client dropped".into());
        for peer in peers {
            let conns: Vec<_> = peer.conns.lock().unwrap().drain(..).collect();
            for conn in conns {
                conn.kill(&self.conn_gauge(), &err);
            }
        }
    }
}

/// The process-wide default client (default [`RpcConfig`]), shared by the
/// servers' internal calls (replica commits, pipeline forwarding) and by
/// clients that do not configure their own deadlines.
pub fn shared() -> &'static Arc<RpcClient> {
    static SHARED: LazyLock<Arc<RpcClient>> =
        LazyLock::new(|| Arc::new(RpcClient::new(RpcConfig::default())));
    &SHARED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::time::Instant;

    fn fast() -> RpcConfig {
        RpcConfig::fast_test()
    }

    /// Serves one connection in the mux format: echo every frame back
    /// under its own request id.
    fn mux_echo(mut s: TcpStream) {
        while let Ok(Some((id, frame))) = read_mux_frame(&mut s) {
            if write_mux_frame(&mut s, id, &[&frame]).is_err() {
                break;
            }
        }
    }

    #[test]
    fn connect_refused_is_unreachable_and_bounded() {
        // Bind then drop: the port is closed, connects are refused fast.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = RpcClient::new(fast());
        let start = Instant::now();
        let err = client.call_raw(addr, b"x", true).unwrap_err();
        assert!(matches!(err, FsError::Unreachable(_)), "got {err:?}");
        // 3 attempts with ≤30ms backoff each must finish well under the
        // worst-case deadline budget.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn read_deadline_fires_on_silent_server() {
        // A server that accepts one connection and stays silent past the
        // client's read deadline.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let conn = listener.accept().unwrap().0; // keep open, never reply
            std::thread::sleep(Duration::from_millis(900));
            drop(conn);
        });
        let cfg = RpcConfig { max_retries: 0, read_timeout_ms: 300, ..fast() };
        let deadline = Duration::from_millis(cfg.read_timeout_ms);
        let client = RpcClient::new(cfg);
        let start = Instant::now();
        let err = client.call_raw(addr, b"ping", true).unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, FsError::Timeout(_)), "got {err:?}");
        assert!(elapsed >= deadline - Duration::from_millis(50));
        assert!(elapsed < deadline + Duration::from_millis(500), "hung for {elapsed:?}");
        handle.join().unwrap();
    }

    #[test]
    fn trickling_server_fails_at_the_absolute_deadline() {
        // Slow-loris: the server dribbles the response one byte at a time,
        // each byte well inside a per-syscall timeout. Only an absolute
        // per-call deadline catches it — with per-read timeouts the trickle
        // resets the clock forever and the call "succeeds" seconds late.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let Ok(Some((id, _))) = read_mux_frame(&mut s) else { return };
            // A valid 40-byte-payload response frame, trickled.
            let mut resp = Vec::new();
            resp.extend_from_slice(&(8u32 + 40).to_le_bytes());
            resp.extend_from_slice(&id.to_le_bytes());
            resp.extend_from_slice(&[0u8; 40]);
            for b in resp {
                if s.write_all(&[b]).is_err() || s.flush().is_err() {
                    return; // client gave up and severed the socket
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });
        let cfg = RpcConfig { max_retries: 0, read_timeout_ms: 300, ..fast() };
        let budget = Duration::from_millis(cfg.read_timeout_ms);
        let client = RpcClient::new(cfg);
        let start = Instant::now();
        let err = client.call_raw(addr, b"ping", true).unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, FsError::Timeout(_)), "got {err:?}");
        assert!(elapsed >= budget - Duration::from_millis(50));
        assert!(elapsed < budget + Duration::from_millis(500), "evaded deadline: {elapsed:?}");
        client.evict(addr); // sever so the trickling server exits promptly
        handle.join().unwrap();
    }

    #[test]
    fn sequential_calls_reuse_one_connection() {
        // An echo server that counts accepted connections.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&accepted);
        let handle = std::thread::spawn(move || {
            while let Ok((s, _)) = listener.accept() {
                counter.fetch_add(1, Ordering::SeqCst);
                let done = std::thread::spawn(move || mux_echo(s));
                if counter.load(Ordering::SeqCst) >= 1 {
                    let _ = done.join();
                    break; // serve one connection to completion, then stop
                }
            }
        });
        let client = RpcClient::new(fast());
        for i in 0..5u8 {
            let resp = client.call_raw(addr, &[i], true).unwrap();
            assert_eq!(resp, vec![i]);
        }
        assert_eq!(accepted.load(Ordering::SeqCst), 1, "calls must reuse one connection");
        client.evict(addr);
        handle.join().unwrap();
    }

    #[test]
    fn stale_connection_recovers_for_idempotent() {
        // First connection serves one frame then closes (going stale under
        // the client); an idempotent call afterwards must still succeed.
        // Depending on timing the staleness surfaces at the send stage
        // (free retry) or the receive stage (one budgeted retry) — both
        // must end in success on the fresh connection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Connection 1: one frame, then close.
            let (mut s, _) = listener.accept().unwrap();
            let (id, frame) = read_mux_frame(&mut s).unwrap().unwrap();
            write_mux_frame(&mut s, id, &[&frame]).unwrap();
            drop(s);
            // Connection 2: serve until the client is done.
            let (s, _) = listener.accept().unwrap();
            mux_echo(s);
        });
        let client = RpcClient::new(RpcConfig { max_retries: 1, ..fast() });
        assert_eq!(client.call_raw(addr, b"a", true).unwrap(), b"a");
        // Give the server time to close connection 1 under our feet.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(client.call_raw(addr, b"b", true).unwrap(), b"b");
        client.evict(addr);
        handle.join().unwrap();
    }

    #[test]
    fn half_written_response_is_unreachable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 64];
            let _ = s.read(&mut sink);
            // Claim 100 bytes, deliver 10, die.
            let _ = s.write_all(&100u32.to_le_bytes());
            let _ = s.write_all(&[7u8; 10]);
        });
        let client = RpcClient::new(RpcConfig { max_retries: 0, ..fast() });
        let err = client.call_raw(addr, b"req", true).unwrap_err();
        assert!(matches!(err, FsError::Unreachable(_) | FsError::Timeout(_)), "got {err:?}");
        handle.join().unwrap();
    }

    #[test]
    fn connections_accounted_under_concurrency() {
        // An echo server accepting any number of connections.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            listener.set_nonblocking(true).unwrap();
            let mut conns = Vec::new();
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false).ok();
                        conns.push(std::thread::spawn(move || mux_echo(s)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            drop(conns);
        });

        // 8 threads hammer one peer: every call must round-trip its own
        // payload (no cross-caller response mixups through the demux), and
        // afterwards the connection gauge must equal the number of live
        // multiplexed connections (≤ the per-peer cap).
        let client = Arc::new(RpcClient::new(fast()));
        std::thread::scope(|scope| {
            for t in 0..8u8 {
                let client = Arc::clone(&client);
                scope.spawn(move || {
                    for i in 0..20u8 {
                        let payload = [t, i, t ^ i];
                        let resp = client.call_raw(addr, &payload, true).unwrap();
                        assert_eq!(resp, payload);
                    }
                });
            }
        });
        let cap = client.config().conns_per_peer as i64;
        let pooled = client.metrics().snapshot().gauge("rpc_client_pooled_connections");
        assert!(pooled >= 1, "at least one connection must be open, got {pooled}");
        assert!(pooled <= cap, "connection cap exceeded: {pooled} > {cap}");
        client.evict(addr);
        let after = client.metrics().snapshot().gauge("rpc_client_pooled_connections");
        assert_eq!(after, 0, "evict must release every accounted connection");
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn backoff_is_bounded_by_config() {
        let client = RpcClient::new(RpcConfig { backoff_base_ms: 8, backoff_max_ms: 50, ..fast() });
        for attempt in 1..10 {
            let d = client.backoff(attempt);
            assert!(d >= Duration::from_millis(8));
            assert!(d <= Duration::from_millis(50 + 25), "attempt {attempt}: {d:?}");
        }
    }
}
