//! [`RpcClient`]: pooled, deadline-bounded TCP RPC with bounded retries.
//!
//! Every call observes three configurable deadlines (connect, write, read —
//! [`RpcConfig`]), so no RPC can hang past its budget. Connections are
//! pooled per peer and reused across calls (the servers keep connections
//! open between frames), which removes the connect-per-call latency the
//! first networked implementation paid.
//!
//! Retry semantics follow the keep-alive rules of HTTP clients:
//!
//! - A send failure on a *pooled* connection is the stale keep-alive race
//!   (the server closed it while idle); the request cannot have executed,
//!   so the next connection is tried without consuming the retry budget.
//! - A receive failure is ambiguous — the request may have executed — so
//!   it is retried only for idempotent requests; non-idempotent requests
//!   surface the transport error to the caller, who owns recovery (e.g.
//!   the client pipeline re-requests placement after a failed
//!   `WriteBlock`).
//! - Connect failures and failures on fresh connections retry up to
//!   `max_retries` with exponential backoff plus jitter.
//!
//! Application-level errors ([`FsError::is_retryable`] = false) never
//! retry: they are deterministic for a given cluster state.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::{Duration, Instant};

use octopus_common::metrics::{Labels, MetricsRegistry};
use octopus_common::trace::{self, TraceCollector};
use octopus_common::wire::encode;
use octopus_common::{FsError, Result, RpcConfig};

use super::frame::{read_frame, write_frame};
use super::proto::{decode_result, MasterRequest, MasterResponse, WorkerRequest, WorkerResponse};

/// Connections kept per peer; beyond this, finished connections close.
/// Sized to the largest client I/O window the bench sweeps, so a fully
/// parallel transfer reuses pooled connections instead of reconnecting.
const POOL_PER_PEER: usize = 8;

/// Stripes of the connection pool. Concurrent block transfers from one
/// client (the parallel data path) checkout/checkin on different peers;
/// sharding the pool lock by peer address keeps them from serializing on
/// one global mutex.
const POOL_SHARDS: usize = 8;

/// Which phase of the round trip failed — determines retry eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Send,
    Receive,
}

/// A pooled RPC client. Cheap to share (`Arc`); all state is internal.
pub struct RpcClient {
    cfg: RpcConfig,
    pool: [Mutex<HashMap<SocketAddr, Vec<TcpStream>>>; POOL_SHARDS],
    /// Deterministic jitter state (an splitmix64 walk); no RNG dependency.
    jitter: AtomicU64,
    metrics: MetricsRegistry,
    trace: TraceCollector,
}

impl RpcClient {
    /// A client with the given deadlines and retry budget.
    pub fn new(cfg: RpcConfig) -> Self {
        Self {
            cfg,
            pool: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            jitter: AtomicU64::new(0x243F_6A88_85A3_08D3),
            metrics: MetricsRegistry::new(),
            trace: TraceCollector::new("client"),
        }
    }

    /// The pool stripe owning `addr`'s connections.
    fn shard(&self, addr: SocketAddr) -> &Mutex<HashMap<SocketAddr, Vec<TcpStream>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        addr.hash(&mut h);
        &self.pool[(h.finish() as usize) % POOL_SHARDS]
    }

    /// The client's configuration.
    pub fn config(&self) -> &RpcConfig {
        &self.cfg
    }

    /// This client's metrics registry (`rpc_client_*` plus the `client_*`
    /// counters recorded by `RemoteFs` instances using this client).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This client's trace collector. `RemoteFs` roots request spans
    /// here; per-attempt transport spans nest under whatever span is
    /// active on the calling thread.
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// One typed round trip to the master.
    pub fn call_master(&self, addr: SocketAddr, req: &MasterRequest) -> Result<MasterResponse> {
        let frame = self.call_labeled(addr, &encode(req), req.is_idempotent(), req.name())?;
        decode_result::<MasterResponse>(&frame)
    }

    /// One typed round trip to a worker data server.
    pub fn call_worker(&self, addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
        let frame = self.call_labeled(addr, &encode(req), req.is_idempotent(), req.name())?;
        decode_result::<WorkerResponse>(&frame)
    }

    /// Sends one request frame and returns the raw response frame,
    /// applying pooling, deadlines, and the retry policy.
    pub fn call_raw(&self, addr: SocketAddr, payload: &[u8], idempotent: bool) -> Result<Vec<u8>> {
        self.call_labeled(addr, payload, idempotent, "raw")
    }

    fn call_labeled(
        &self,
        addr: SocketAddr,
        payload: &[u8],
        idempotent: bool,
        request_type: &'static str,
    ) -> Result<Vec<u8>> {
        let labels = Labels::req(request_type);
        self.metrics.inc("rpc_client_requests_total", labels);
        let start = Instant::now();
        let out = self.attempt_loop(addr, payload, idempotent, labels, request_type);
        self.metrics.observe_since("rpc_client_request_us", labels, start);
        if matches!(out, Err(FsError::Timeout(_))) {
            self.metrics.inc("rpc_client_timeouts_total", labels);
        }
        if out.is_err() {
            self.metrics.inc("rpc_client_failures_total", labels);
        }
        out
    }

    fn attempt_loop(
        &self,
        addr: SocketAddr,
        payload: &[u8],
        idempotent: bool,
        labels: Labels,
        request_type: &'static str,
    ) -> Result<Vec<u8>> {
        let mut last_err = FsError::Unreachable(format!("{addr}: no attempt made"));
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.metrics.inc("rpc_client_retries_total", labels);
                std::thread::sleep(self.backoff(attempt));
            }

            // One transport span per attempt: retries become sibling spans
            // under the caller's span, and the backoff gap between them
            // shows up as the parent's self time in the critical path.
            // Untraced calls (no active span) skip both the span and the
            // envelope, so old-format receivers keep decoding bare frames.
            let mut span = trace::child(format!("rpc.{request_type}"));
            let enveloped;
            let wire_payload: &[u8] = match span.as_mut() {
                Some(s) => {
                    s.annotate("peer", addr);
                    s.annotate("attempt", attempt);
                    enveloped = trace::wrap_envelope(&s.context(), payload);
                    &enveloped
                }
                None => payload,
            };
            let fail = |span: &mut Option<trace::SpanGuard>, e: &FsError| {
                if let Some(s) = span.as_mut() {
                    s.annotate("error", e);
                }
            };

            // Pooled connections first. A send failure here is the stale
            // keep-alive race — the request never left, so trying the next
            // connection (or a fresh one) is free.
            let mut receive_failed_pooled = false;
            while let Some(mut stream) = self.checkout(addr) {
                match self.round_trip(&mut stream, wire_payload) {
                    Ok(frame) => {
                        self.checkin(addr, stream);
                        return Ok(frame);
                    }
                    Err((Stage::Send, e)) => last_err = e,
                    Err((Stage::Receive, e)) => {
                        fail(&mut span, &e);
                        if !idempotent {
                            return Err(e);
                        }
                        last_err = e;
                        receive_failed_pooled = true;
                        break;
                    }
                }
            }
            if receive_failed_pooled {
                // The request may have executed; the backoff before the
                // next (idempotent) attempt starts a fresh connection.
                continue;
            }

            // Fresh connection.
            let mut stream = match self.connect(addr) {
                Ok(s) => s,
                Err(e) => {
                    fail(&mut span, &e);
                    last_err = e;
                    continue;
                }
            };
            match self.round_trip(&mut stream, wire_payload) {
                Ok(frame) => {
                    self.checkin(addr, stream);
                    return Ok(frame);
                }
                Err((Stage::Receive, e)) if !idempotent => {
                    fail(&mut span, &e);
                    return Err(e);
                }
                Err((_, e)) => {
                    fail(&mut span, &e);
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Closes every pooled connection (a peer restarted, tests).
    pub fn evict(&self, addr: SocketAddr) {
        if let Some(conns) = self.shard(addr).lock().unwrap().remove(&addr) {
            self.metrics
                .gauge("rpc_client_pooled_connections", Labels::NONE)
                .add(-(conns.len() as i64));
        }
    }

    fn connect(&self, addr: SocketAddr) -> Result<TcpStream> {
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.cfg.connect_timeout_ms.max(1)),
        )?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    fn round_trip(
        &self,
        stream: &mut TcpStream,
        payload: &[u8],
    ) -> std::result::Result<Vec<u8>, (Stage, FsError)> {
        stream
            .set_write_timeout(Some(Duration::from_millis(self.cfg.write_timeout_ms.max(1))))
            .map_err(|e| (Stage::Send, e.into()))?;
        write_frame(stream, payload).map_err(|e| (Stage::Send, e))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(self.cfg.read_timeout_ms.max(1))))
            .map_err(|e| (Stage::Receive, e.into()))?;
        match read_frame(stream) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => {
                Err((Stage::Receive, FsError::Unreachable("server closed the connection".into())))
            }
            Err(e) => Err((Stage::Receive, e)),
        }
    }

    fn checkout(&self, addr: SocketAddr) -> Option<TcpStream> {
        let stream = self.shard(addr).lock().unwrap().get_mut(&addr)?.pop();
        if stream.is_some() {
            self.metrics.gauge("rpc_client_pooled_connections", Labels::NONE).add(-1);
        }
        stream
    }

    fn checkin(&self, addr: SocketAddr, stream: TcpStream) {
        let mut pool = self.shard(addr).lock().unwrap();
        let conns = pool.entry(addr).or_default();
        if conns.len() < POOL_PER_PEER {
            conns.push(stream);
            self.metrics.gauge("rpc_client_pooled_connections", Labels::NONE).add(1);
        }
    }

    /// `min(base << (attempt-1), max)` plus up to 50% deterministic jitter,
    /// so synchronized retry storms decorrelate.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base_ms.max(1);
        let exp = base.checked_shl(attempt.saturating_sub(1).min(16)).unwrap_or(u64::MAX);
        let capped = exp.min(self.cfg.backoff_max_ms.max(base));
        let mut z = self.jitter.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let jitter = if capped / 2 == 0 { 0 } else { z % (capped / 2) };
        Duration::from_millis(capped + jitter)
    }
}

/// The process-wide default client (default [`RpcConfig`]), shared by the
/// servers' internal calls (replica commits, pipeline forwarding) and by
/// clients that do not configure their own deadlines.
pub fn shared() -> &'static Arc<RpcClient> {
    static SHARED: LazyLock<Arc<RpcClient>> =
        LazyLock::new(|| Arc::new(RpcClient::new(RpcConfig::default())));
    &SHARED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::time::Instant;

    fn fast() -> RpcConfig {
        RpcConfig::fast_test()
    }

    #[test]
    fn connect_refused_is_unreachable_and_bounded() {
        // Bind then drop: the port is closed, connects are refused fast.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = RpcClient::new(fast());
        let start = Instant::now();
        let err = client.call_raw(addr, b"x", true).unwrap_err();
        assert!(matches!(err, FsError::Unreachable(_)), "got {err:?}");
        // 3 attempts with ≤30ms backoff each must finish well under the
        // worst-case deadline budget.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn read_deadline_fires_on_silent_server() {
        // A server that accepts one connection and stays silent past the
        // client's read deadline.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let conn = listener.accept().unwrap().0; // keep open, never reply
            std::thread::sleep(Duration::from_millis(900));
            drop(conn);
        });
        let cfg = RpcConfig { max_retries: 0, read_timeout_ms: 300, ..fast() };
        let deadline = Duration::from_millis(cfg.read_timeout_ms);
        let client = RpcClient::new(cfg);
        let start = Instant::now();
        let err = client.call_raw(addr, b"ping", true).unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, FsError::Timeout(_)), "got {err:?}");
        assert!(elapsed >= deadline - Duration::from_millis(50));
        assert!(elapsed < deadline + Duration::from_millis(500), "hung for {elapsed:?}");
        handle.join().unwrap();
    }

    #[test]
    fn pooled_connection_is_reused() {
        // An echo server that counts accepted connections.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&accepted);
        let handle = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                counter.fetch_add(1, Ordering::SeqCst);
                let done = std::thread::spawn(move || {
                    while let Ok(Some(frame)) = read_frame(&mut s) {
                        if write_frame(&mut s, &frame).is_err() {
                            break;
                        }
                    }
                });
                if counter.load(Ordering::SeqCst) >= 1 {
                    let _ = done.join();
                    break; // serve one connection to completion, then stop
                }
            }
        });
        let client = RpcClient::new(fast());
        for i in 0..5u8 {
            let resp = client.call_raw(addr, &[i], true).unwrap();
            assert_eq!(resp, vec![i]);
        }
        assert_eq!(accepted.load(Ordering::SeqCst), 1, "calls must reuse one connection");
        client.evict(addr);
        handle.join().unwrap();
    }

    #[test]
    fn stale_pooled_connection_recovers_for_idempotent() {
        // First connection serves one frame then closes (going stale in
        // the pool); an idempotent call afterwards must still succeed.
        // Depending on kernel timing the staleness surfaces at the send
        // stage (free retry) or the receive stage (one budgeted retry) —
        // both must end in success on the fresh connection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Connection 1: one frame, then close.
            let (mut s, _) = listener.accept().unwrap();
            let f = read_frame(&mut s).unwrap().unwrap();
            write_frame(&mut s, &f).unwrap();
            drop(s);
            // Connection 2: serve until the client is done.
            let (mut s, _) = listener.accept().unwrap();
            while let Ok(Some(f)) = read_frame(&mut s) {
                if write_frame(&mut s, &f).is_err() {
                    break;
                }
            }
        });
        let client = RpcClient::new(RpcConfig { max_retries: 1, ..fast() });
        assert_eq!(client.call_raw(addr, b"a", true).unwrap(), b"a");
        // Give the server time to close connection 1 under our feet.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(client.call_raw(addr, b"b", true).unwrap(), b"b");
        client.evict(addr);
        handle.join().unwrap();
    }

    #[test]
    fn half_written_response_is_unreachable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 64];
            let _ = s.read(&mut sink);
            // Claim 100 bytes, deliver 10, die.
            let _ = s.write_all(&100u32.to_le_bytes());
            let _ = s.write_all(&[7u8; 10]);
        });
        let client = RpcClient::new(RpcConfig { max_retries: 0, ..fast() });
        let err = client.call_raw(addr, b"req", true).unwrap_err();
        assert!(matches!(err, FsError::Unreachable(_) | FsError::Timeout(_)), "got {err:?}");
        handle.join().unwrap();
    }

    #[test]
    fn striped_pool_accounts_connections_under_concurrency() {
        // An echo server accepting any number of connections.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            listener.set_nonblocking(true).unwrap();
            let mut conns = Vec::new();
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false).ok();
                        conns.push(std::thread::spawn(move || {
                            let mut s = s;
                            while let Ok(Some(frame)) = read_frame(&mut s) {
                                if write_frame(&mut s, &frame).is_err() {
                                    break;
                                }
                            }
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            drop(conns);
        });

        // 8 threads hammer one peer: every call must round-trip its own
        // payload (no cross-thread frame interleaving through the pool),
        // and afterwards the pooled-connection gauge must equal the number
        // of streams actually parked in the pool (≤ POOL_PER_PEER).
        let client = Arc::new(RpcClient::new(fast()));
        std::thread::scope(|scope| {
            for t in 0..8u8 {
                let client = Arc::clone(&client);
                scope.spawn(move || {
                    for i in 0..20u8 {
                        let payload = [t, i, t ^ i];
                        let resp = client.call_raw(addr, &payload, true).unwrap();
                        assert_eq!(resp, payload);
                    }
                });
            }
        });
        let pooled = client.metrics().snapshot().gauge("rpc_client_pooled_connections");
        assert!(pooled >= 1, "at least one connection must be parked, got {pooled}");
        assert!(pooled <= POOL_PER_PEER as i64, "pool overfilled: {pooled}");
        client.evict(addr);
        let after = client.metrics().snapshot().gauge("rpc_client_pooled_connections");
        assert_eq!(after, 0, "evict must release every accounted connection");
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn backoff_is_bounded_by_config() {
        let client = RpcClient::new(RpcConfig { backoff_base_ms: 8, backoff_max_ms: 50, ..fast() });
        for attempt in 1..10 {
            let d = client.backoff(attempt);
            assert!(d >= Duration::from_millis(8));
            assert!(d <= Duration::from_millis(50 + 25), "attempt {attempt}: {d:?}");
        }
    }
}
