//! The worker's data server: stores and serves block replicas over TCP,
//! forwarding pipelined writes to the next stage (§3.1) and committing its
//! own replica to the master. Runs on the multiplexed
//! [`super::server::ServerCore`]; block payloads enter and leave as shared
//! [`bytes::Bytes`] views into the received frames (no copy per hop).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use parking_lot::RwLock;

use octopus_common::checksum::crc32;
use octopus_common::log_warn;
use octopus_common::metrics::Labels;
use octopus_common::trace::{self, TraceContext};
use octopus_common::wire::{Wire, WireReader};
use octopus_common::{
    BlockData, BlockId, FsError, Location, MediaId, Result, ServerConfig, WorkerId,
};

use super::proto::{
    classify_worker_request, encode_worker_result_frame, MasterRequest, MasterResponse,
    WorkerRequest, WorkerResponse,
};
use super::server::{Handler, ServerCore};
use crate::worker::Worker;

/// Shared map of worker data-server addresses (for pipeline forwarding).
pub type AddressMap = Arc<RwLock<HashMap<WorkerId, SocketAddr>>>;

/// One RPC round trip to the master, over the process-wide shared client.
pub fn call_master(addr: SocketAddr, req: &MasterRequest) -> Result<MasterResponse> {
    super::rpc::shared().call_master(addr, req)
}

/// One RPC round trip to a worker data server, over the process-wide
/// shared client.
pub fn call_worker(addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
    super::rpc::shared().call_worker(addr, req)
}

/// A running worker data server.
pub struct WorkerServer {
    core: ServerCore,
}

impl WorkerServer {
    /// Binds to `127.0.0.1:0` and starts serving `worker`. `master` is the
    /// master's RPC address (for replica commits); `peers` resolves
    /// pipeline-forwarding targets.
    pub fn spawn(worker: Arc<Worker>, master: SocketAddr, peers: AddressMap) -> Result<Self> {
        Self::spawn_on(worker, master, peers, ("127.0.0.1", 0))
    }

    /// Like [`WorkerServer::spawn`], binding to an explicit address
    /// (daemon deployments with a configured `--listen`).
    pub fn spawn_on(
        worker: Arc<Worker>,
        master: SocketAddr,
        peers: AddressMap,
        bind: impl std::net::ToSocketAddrs,
    ) -> Result<Self> {
        Self::spawn_with(worker, master, peers, bind, ServerConfig::default())
    }

    /// Like [`WorkerServer::spawn_on`] with an explicit server
    /// configuration (tests tune the pool and idle-reap horizon).
    pub fn spawn_with(
        worker: Arc<Worker>,
        master: SocketAddr,
        peers: AddressMap,
        bind: impl std::net::ToSocketAddrs,
        cfg: ServerConfig,
    ) -> Result<Self> {
        let name = format!("octopus-{}", worker.id());
        let handler: Handler = Arc::new(move |frame: bytes::Bytes| {
            let result = (|| {
                let (ctx, body) = trace::unwrap_envelope(&frame)?;
                let offset = frame.len() - body.len();
                let mut r = WireReader::new_shared(&frame, offset);
                let req = WorkerRequest::get(&mut r)?;
                r.expect_finished()?;
                dispatch_traced(&worker, master, &peers, req, ctx)
            })();
            encode_worker_result_frame(&result)
        });
        let core = ServerCore::spawn(bind, &name, cfg, Arc::new(classify_worker_request), handler)?;
        Ok(Self { core })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// Stops the server: the accept loop exits and every open connection
    /// is severed, so in-flight callers fail fast instead of hanging.
    pub fn shutdown(&mut self) {
        self.core.shutdown();
    }
}

fn dispatch_traced(
    worker: &Worker,
    master: SocketAddr,
    peers: &AddressMap,
    req: WorkerRequest,
    ctx: Option<TraceContext>,
) -> Result<WorkerResponse> {
    // Traced requests record a `worker.<Name>` span in this worker's
    // collector; calls this dispatch makes (commit, forward) nest under
    // it via the thread-local span stack.
    let mut span = ctx.map(|c| worker.trace().child_of(format!("worker.{}", req.name()), c));
    if let Some(s) = span.as_mut() {
        s.annotate("worker", worker.id());
    }
    let labels = Labels::worker(worker.id()).with_req(req.name());
    worker.metrics().inc("worker_requests_total", labels);
    let start = std::time::Instant::now();
    let out = dispatch_inner(worker, master, peers, req);
    worker.metrics().observe_since("worker_request_us", labels, start);
    if out.is_err() {
        worker.metrics().inc("worker_request_failures_total", labels);
        if let (Some(s), Err(e)) = (span.as_mut(), &out) {
            s.annotate("error", e);
        }
    }
    out
}

/// Deletes and reports a scrub round's corrupt replicas, returning how
/// many were actually handled. A replica whose medium this worker no
/// longer maps (removed or reconfigured since the scan) is skipped and
/// logged — it must not abort the handling of the *other* corrupt
/// replicas, some of which may already have been deleted.
pub fn scrub_and_report(
    worker: &Worker,
    master: SocketAddr,
    corrupt: Vec<(BlockId, MediaId)>,
) -> u32 {
    let mut handled = 0u32;
    for (block, media) in corrupt {
        let tier = match worker.tier_of(media) {
            Ok(t) => t,
            Err(e) => {
                log_warn!(
                    target: "net::worker_server",
                    "msg=\"corrupt replica on unmapped medium, skipping\" block={block} media={media} err=\"{e}\"",
                );
                worker
                    .metrics()
                    .inc("worker_scrub_unmapped_media_total", Labels::worker(worker.id()));
                continue;
            }
        };
        let loc = Location { worker: worker.id(), media, tier };
        let _ = worker.delete_block(media, block);
        let _ = call_master(master, &MasterRequest::ReportCorrupt(block, loc));
        handled += 1;
    }
    handled
}

fn dispatch_inner(
    worker: &Worker,
    master: SocketAddr,
    peers: &AddressMap,
    req: WorkerRequest,
) -> Result<WorkerResponse> {
    match req {
        WorkerRequest::WriteBlock(block, media, rest, data) => {
            let _net = worker.connect_net();
            // Hold the medium's I/O-connection span across the whole
            // service of this write (store + commit + forward), so the
            // heartbeat `NrConn` the placement policy consumes reflects
            // transfer-duration contention (§3.2).
            let _io = worker.media_io(media)?;
            {
                let mut store_span = trace::child("worker.store");
                if let Some(s) = store_span.as_mut() {
                    s.annotate("block", block.id);
                    s.annotate("bytes", block.len);
                    s.annotate("tier", worker.tier_of(media)?);
                }
                if let Err(e) = worker.write_block(media, block, &data) {
                    // Pipeline recovery re-sends a block whose earlier
                    // store succeeded but whose response was lost (a
                    // severed connection fails every call in flight on
                    // it). Re-storing identical bytes is a no-op; any
                    // other collision is a real error.
                    let idempotent = matches!(&e, FsError::AlreadyExists(_))
                        && worker
                            .stored_checksum(media, block.id)
                            .is_ok_and(|c| c == data.checksum());
                    if !idempotent {
                        return Err(e);
                    }
                }
                if let Some(d) = worker.transfer_pacing(media, block.len, true) {
                    std::thread::sleep(d);
                }
            }
            let my_loc = Location { worker: worker.id(), media, tier: worker.tier_of(media)? };
            // Commit our replica before forwarding, so the master's view
            // converges even if the tail of the pipeline fails.
            call_master(master, &MasterRequest::CommitReplica(block, my_loc))?;
            let mut stored = vec![my_loc];

            if let Some((next, remainder)) = rest.split_first() {
                let fwd_start = std::time::Instant::now();
                let next_addr = peers.read().get(&next.worker).copied();
                let forwarded = next_addr
                    .ok_or_else(|| FsError::UnknownWorker(next.worker.to_string()))
                    .and_then(|addr| {
                        call_worker(
                            addr,
                            &WorkerRequest::WriteBlock(
                                block,
                                next.media,
                                remainder.to_vec(),
                                data.clone(),
                            ),
                        )
                    });
                worker.metrics().observe_since(
                    "worker_pipeline_forward_us",
                    Labels::worker(worker.id()),
                    fwd_start,
                );
                match forwarded {
                    Ok(WorkerResponse::Stored(locs)) => stored.extend(locs),
                    Ok(_) => return Err(FsError::Internal("unexpected forward response".into())),
                    Err(e) => {
                        log_warn!(
                            target: "net::worker_server",
                            "msg=\"pipeline forward failed\" block={} next={} err=\"{e}\"",
                            block.id,
                            next.worker
                        );
                        worker.metrics().inc(
                            "worker_pipeline_forward_failures_total",
                            Labels::worker(worker.id()),
                        );
                        // Downstream failed: release the master's pending
                        // reservations for the unreached stages; the
                        // replication monitor heals the block later (§5).
                        // The master refuses to demote a stage that did
                        // commit (e.g. it stored, committed, and then the
                        // connection died before its ack reached us).
                        for loc in &rest {
                            let _ = call_master(master, &MasterRequest::AbortReplica(block, *loc));
                        }
                    }
                }
            }
            Ok(WorkerResponse::Stored(stored))
        }
        WorkerRequest::ReadBlock(media, block) => {
            let _net = worker.connect_net();
            let _io = worker.media_io(media)?;
            let mut read_span = trace::child("worker.read");
            let data = worker.read_block(media, block)?;
            let sum = worker.stored_checksum(media, block)?;
            if let Some(d) = worker.transfer_pacing(media, data.len(), false) {
                std::thread::sleep(d);
            }
            if let Some(s) = read_span.as_mut() {
                s.annotate("block", block);
                s.annotate("bytes", data.len());
                s.annotate("tier", worker.tier_of(media)?);
            }
            Ok(WorkerResponse::Data(data, sum))
        }
        WorkerRequest::DeleteBlock(media, block) => {
            worker.delete_block(media, block)?;
            Ok(WorkerResponse::Unit)
        }
        WorkerRequest::Replicate(block, sources, media) => {
            let _io = worker.media_io(media)?;
            let mut data = None;
            for src in &sources {
                let Some(addr) = peers.read().get(&src.worker).copied() else { continue };
                if let Ok(WorkerResponse::Data(d, sum)) =
                    call_worker(addr, &WorkerRequest::ReadBlock(src.media, block.id))
                {
                    // Don't propagate a replica damaged in flight; the
                    // next source (or a later round) serves it intact.
                    if let BlockData::Real(bytes) = &d {
                        if crc32(bytes) != sum {
                            continue;
                        }
                    }
                    data = Some(d);
                    break;
                }
            }
            let my_loc = Location { worker: worker.id(), media, tier: worker.tier_of(media)? };
            match data {
                Some(d) => {
                    worker.write_block(media, block, &d)?;
                    call_master(master, &MasterRequest::CommitReplica(block, my_loc))?;
                    Ok(WorkerResponse::Unit)
                }
                None => {
                    log_warn!(
                        target: "net::worker_server",
                        "msg=\"replication found no reachable source\" block={} sources={}",
                        block.id,
                        sources.len()
                    );
                    let _ = call_master(master, &MasterRequest::AbortReplica(block, my_loc));
                    Err(FsError::BlockUnavailable(format!(
                        "{}: no reachable source replica",
                        block.id
                    )))
                }
            }
        }
        WorkerRequest::Scrub => {
            let corrupt = worker.scrub();
            Ok(WorkerResponse::Scrubbed(scrub_and_report(worker, master, corrupt)))
        }
        WorkerRequest::Metrics => {
            // Stamp drop counters at scrape time: spans and series points
            // are dropped inside their rings without a metrics hook of
            // their own.
            worker
                .metrics()
                .counter("trace_spans_dropped_total", Labels::worker(worker.id()))
                .set_max(worker.trace().dropped());
            worker
                .metrics()
                .counter("worker_series_dropped_total", Labels::worker(worker.id()))
                .set_max(worker.series_dropped());
            Ok(WorkerResponse::Metrics(worker.metrics().snapshot()))
        }
        WorkerRequest::Trace => Ok(WorkerResponse::Trace(worker.trace().snapshot())),
        WorkerRequest::Series => Ok(WorkerResponse::Series(worker.series_points())),
    }
}
