//! The worker's data server: stores and serves block replicas over TCP,
//! forwarding pipelined writes to the next stage (§3.1) and committing its
//! own replica to the master.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use parking_lot::RwLock;

use octopus_common::checksum::crc32;
use octopus_common::log_warn;
use octopus_common::metrics::Labels;
use octopus_common::trace::{self, TraceContext};
use octopus_common::wire::decode;
use octopus_common::{BlockData, FsError, Location, Result, WorkerId};

use super::faults;
use super::frame::read_frame;
use super::proto::{encode_result, MasterRequest, MasterResponse, WorkerRequest, WorkerResponse};
use crate::worker::Worker;

/// Shared map of worker data-server addresses (for pipeline forwarding).
pub type AddressMap = Arc<RwLock<HashMap<WorkerId, SocketAddr>>>;

/// One RPC round trip to the master, over the process-wide pooled client.
pub fn call_master(addr: SocketAddr, req: &MasterRequest) -> Result<MasterResponse> {
    super::rpc::shared().call_master(addr, req)
}

/// One RPC round trip to a worker data server, over the process-wide
/// pooled client.
pub fn call_worker(addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
    super::rpc::shared().call_worker(addr, req)
}

/// Open connections accepted by a server, retained so shutdown can sever
/// them (clients observe `Unreachable` instead of hanging).
type ConnSet = Arc<Mutex<Vec<TcpStream>>>;

fn track(conns: &ConnSet, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        let mut set = conns.lock().unwrap();
        // Opportunistically drop entries whose sockets are already gone.
        if set.len() > 32 {
            set.retain(|s| s.peer_addr().is_ok());
        }
        set.push(clone);
    }
}

fn sever(conns: &ConnSet) {
    for s in conns.lock().unwrap().drain(..) {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// A running worker data server.
pub struct WorkerServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: ConnSet,
    handle: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds to `127.0.0.1:0` and starts serving `worker`. `master` is the
    /// master's RPC address (for replica commits); `peers` resolves
    /// pipeline-forwarding targets.
    pub fn spawn(worker: Arc<Worker>, master: SocketAddr, peers: AddressMap) -> Result<Self> {
        Self::spawn_on(worker, master, peers, ("127.0.0.1", 0))
    }

    /// Like [`WorkerServer::spawn`], binding to an explicit address
    /// (daemon deployments with a configured `--listen`).
    pub fn spawn_on(
        worker: Arc<Worker>,
        master: SocketAddr,
        peers: AddressMap,
        bind: impl std::net::ToSocketAddrs,
    ) -> Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let conns: ConnSet = Arc::new(Mutex::new(Vec::new()));
        let conn_set = Arc::clone(&conns);
        let handle = std::thread::Builder::new()
            .name(format!("octopus-{}-data", worker.id()))
            .spawn(move || accept_loop(listener, addr, worker, master, peers, flag, conn_set))
            .map_err(|e| FsError::Io(e.to_string()))?;
        Ok(Self { addr, shutdown, conns, handle: Some(handle) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: the accept loop exits and every open connection
    /// is severed, so in-flight callers fail fast instead of hanging.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        sever(&self.conns);
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    server_addr: SocketAddr,
    worker: Arc<Worker>,
    master: SocketAddr,
    peers: AddressMap,
    shutdown: Arc<AtomicBool>,
    conns: ConnSet,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let worker = Arc::clone(&worker);
                let peers = Arc::clone(&peers);
                let _ = stream.set_nodelay(true);
                track(&conns, &stream);
                let _ = std::thread::Builder::new()
                    .name("octopus-worker-conn".into())
                    .spawn(move || connection_loop(stream, server_addr, worker, master, peers));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(
    mut stream: TcpStream,
    server_addr: SocketAddr,
    worker: Arc<Worker>,
    master: SocketAddr,
    peers: AddressMap,
) {
    let _ = stream.set_nonblocking(false);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let result = trace::unwrap_envelope(&frame).and_then(|(ctx, body)| {
            decode::<WorkerRequest>(body)
                .and_then(|req| dispatch_traced(&worker, master, &peers, req, ctx))
        });
        match faults::write_response(server_addr, &mut stream, &encode_result(&result)) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
    }
}

fn dispatch_traced(
    worker: &Worker,
    master: SocketAddr,
    peers: &AddressMap,
    req: WorkerRequest,
    ctx: Option<TraceContext>,
) -> Result<WorkerResponse> {
    // Traced requests record a `worker.<Name>` span in this worker's
    // collector; calls this dispatch makes (commit, forward) nest under
    // it via the thread-local span stack.
    let mut span = ctx.map(|c| worker.trace().child_of(format!("worker.{}", req.name()), c));
    if let Some(s) = span.as_mut() {
        s.annotate("worker", worker.id());
    }
    let labels = Labels::worker(worker.id()).with_req(req.name());
    worker.metrics().inc("worker_requests_total", labels);
    let start = std::time::Instant::now();
    let out = dispatch_inner(worker, master, peers, req);
    worker.metrics().observe_since("worker_request_us", labels, start);
    if out.is_err() {
        worker.metrics().inc("worker_request_failures_total", labels);
        if let (Some(s), Err(e)) = (span.as_mut(), &out) {
            s.annotate("error", e);
        }
    }
    out
}

fn dispatch_inner(
    worker: &Worker,
    master: SocketAddr,
    peers: &AddressMap,
    req: WorkerRequest,
) -> Result<WorkerResponse> {
    match req {
        WorkerRequest::WriteBlock(block, media, rest, data) => {
            let _net = worker.connect_net();
            // Hold the medium's I/O-connection span across the whole
            // service of this write (store + commit + forward), so the
            // heartbeat `NrConn` the placement policy consumes reflects
            // transfer-duration contention (§3.2).
            let _io = worker.media_io(media)?;
            {
                let mut store_span = trace::child("worker.store");
                if let Some(s) = store_span.as_mut() {
                    s.annotate("block", block.id);
                    s.annotate("bytes", block.len);
                    s.annotate("tier", worker.tier_of(media)?);
                }
                worker.write_block(media, block, &data)?;
                if let Some(d) = worker.transfer_pacing(media, block.len, true) {
                    std::thread::sleep(d);
                }
            }
            let my_loc = Location { worker: worker.id(), media, tier: worker.tier_of(media)? };
            // Commit our replica before forwarding, so the master's view
            // converges even if the tail of the pipeline fails.
            call_master(master, &MasterRequest::CommitReplica(block, my_loc))?;
            let mut stored = vec![my_loc];

            if let Some((next, remainder)) = rest.split_first() {
                let fwd_start = std::time::Instant::now();
                let next_addr = peers.read().get(&next.worker).copied();
                let forwarded = next_addr
                    .ok_or_else(|| FsError::UnknownWorker(next.worker.to_string()))
                    .and_then(|addr| {
                        call_worker(
                            addr,
                            &WorkerRequest::WriteBlock(
                                block,
                                next.media,
                                remainder.to_vec(),
                                data.clone(),
                            ),
                        )
                    });
                worker.metrics().observe_since(
                    "worker_pipeline_forward_us",
                    Labels::worker(worker.id()),
                    fwd_start,
                );
                match forwarded {
                    Ok(WorkerResponse::Stored(locs)) => stored.extend(locs),
                    Ok(_) => return Err(FsError::Internal("unexpected forward response".into())),
                    Err(e) => {
                        log_warn!(
                            target: "net::worker_server",
                            "msg=\"pipeline forward failed\" block={} next={} err=\"{e}\"",
                            block.id,
                            next.worker
                        );
                        worker.metrics().inc(
                            "worker_pipeline_forward_failures_total",
                            Labels::worker(worker.id()),
                        );
                        // Downstream failed: release the master's pending
                        // reservations for the unreached stages; the
                        // replication monitor heals the block later (§5).
                        for loc in &rest {
                            let _ = call_master(master, &MasterRequest::AbortReplica(block, *loc));
                        }
                    }
                }
            }
            Ok(WorkerResponse::Stored(stored))
        }
        WorkerRequest::ReadBlock(media, block) => {
            let _net = worker.connect_net();
            let _io = worker.media_io(media)?;
            let mut read_span = trace::child("worker.read");
            let data = worker.read_block(media, block)?;
            let sum = worker.stored_checksum(media, block)?;
            if let Some(d) = worker.transfer_pacing(media, data.len(), false) {
                std::thread::sleep(d);
            }
            if let Some(s) = read_span.as_mut() {
                s.annotate("block", block);
                s.annotate("bytes", data.len());
                s.annotate("tier", worker.tier_of(media)?);
            }
            Ok(WorkerResponse::Data(data, sum))
        }
        WorkerRequest::DeleteBlock(media, block) => {
            worker.delete_block(media, block)?;
            Ok(WorkerResponse::Unit)
        }
        WorkerRequest::Replicate(block, sources, media) => {
            let _io = worker.media_io(media)?;
            let mut data = None;
            for src in &sources {
                let Some(addr) = peers.read().get(&src.worker).copied() else { continue };
                if let Ok(WorkerResponse::Data(d, sum)) =
                    call_worker(addr, &WorkerRequest::ReadBlock(src.media, block.id))
                {
                    // Don't propagate a replica damaged in flight; the
                    // next source (or a later round) serves it intact.
                    if let BlockData::Real(bytes) = &d {
                        if crc32(bytes) != sum {
                            continue;
                        }
                    }
                    data = Some(d);
                    break;
                }
            }
            let my_loc = Location { worker: worker.id(), media, tier: worker.tier_of(media)? };
            match data {
                Some(d) => {
                    worker.write_block(media, block, &d)?;
                    call_master(master, &MasterRequest::CommitReplica(block, my_loc))?;
                    Ok(WorkerResponse::Unit)
                }
                None => {
                    log_warn!(
                        target: "net::worker_server",
                        "msg=\"replication found no reachable source\" block={} sources={}",
                        block.id,
                        sources.len()
                    );
                    let _ = call_master(master, &MasterRequest::AbortReplica(block, my_loc));
                    Err(FsError::BlockUnavailable(format!(
                        "{}: no reachable source replica",
                        block.id
                    )))
                }
            }
        }
        WorkerRequest::Scrub => {
            let corrupt = worker.scrub();
            let n = corrupt.len() as u32;
            for (block, media) in corrupt {
                let tier = worker.tier_of(media)?;
                let loc = Location { worker: worker.id(), media, tier };
                let _ = worker.delete_block(media, block);
                let _ = call_master(master, &MasterRequest::ReportCorrupt(block, loc));
            }
            Ok(WorkerResponse::Scrubbed(n))
        }
        WorkerRequest::Metrics => Ok(WorkerResponse::Metrics(worker.metrics().snapshot())),
        WorkerRequest::Trace => Ok(WorkerResponse::Trace(worker.trace().snapshot())),
    }
}
