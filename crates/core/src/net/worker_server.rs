//! The worker's data server: stores and serves block replicas over TCP,
//! forwarding pipelined writes to the next stage (§3.1) and committing its
//! own replica to the master.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::RwLock;

use octopus_common::wire::{decode, encode};
use octopus_common::{FsError, Location, Result, WorkerId};

use super::frame::{read_frame, write_frame};
use super::proto::{
    decode_result, encode_result, MasterRequest, MasterResponse, WorkerRequest, WorkerResponse,
};
use crate::worker::Worker;

/// Shared map of worker data-server addresses (for pipeline forwarding).
pub type AddressMap = Arc<RwLock<HashMap<WorkerId, SocketAddr>>>;

/// One RPC round trip to the master.
pub fn call_master(addr: SocketAddr, req: &MasterRequest) -> Result<MasterResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, &encode(req))?;
    let frame = read_frame(&mut stream)?
        .ok_or_else(|| FsError::Io("master closed the connection".into()))?;
    decode_result::<MasterResponse>(&frame)
}

/// One RPC round trip to a worker data server.
pub fn call_worker(addr: SocketAddr, req: &WorkerRequest) -> Result<WorkerResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, &encode(req))?;
    let frame = read_frame(&mut stream)?
        .ok_or_else(|| FsError::Io("worker closed the connection".into()))?;
    decode_result::<WorkerResponse>(&frame)
}

/// A running worker data server.
pub struct WorkerServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds to `127.0.0.1:0` and starts serving `worker`. `master` is the
    /// master's RPC address (for replica commits); `peers` resolves
    /// pipeline-forwarding targets.
    pub fn spawn(worker: Arc<Worker>, master: SocketAddr, peers: AddressMap) -> Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name(format!("octopus-{}-data", worker.id()))
            .spawn(move || accept_loop(listener, worker, master, peers, flag))
            .map_err(|e| FsError::Io(e.to_string()))?;
        Ok(Self { addr, shutdown, handle: Some(handle) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    worker: Arc<Worker>,
    master: SocketAddr,
    peers: AddressMap,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let worker = Arc::clone(&worker);
                let peers = Arc::clone(&peers);
                let _ = stream.set_nodelay(true);
                let _ = std::thread::Builder::new()
                    .name("octopus-worker-conn".into())
                    .spawn(move || connection_loop(stream, worker, master, peers));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(
    mut stream: TcpStream,
    worker: Arc<Worker>,
    master: SocketAddr,
    peers: AddressMap,
) {
    let _ = stream.set_nonblocking(false);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let result = decode::<WorkerRequest>(&frame)
            .and_then(|req| dispatch(&worker, master, &peers, req));
        if write_frame(&mut stream, &encode_result(&result)).is_err() {
            return;
        }
    }
}

fn dispatch(
    worker: &Worker,
    master: SocketAddr,
    peers: &AddressMap,
    req: WorkerRequest,
) -> Result<WorkerResponse> {
    match req {
        WorkerRequest::WriteBlock(block, media, rest, data) => {
            let _net = worker.connect_net();
            worker.write_block(media, block, &data)?;
            let my_loc =
                Location { worker: worker.id(), media, tier: worker.tier_of(media)? };
            // Commit our replica before forwarding, so the master's view
            // converges even if the tail of the pipeline fails.
            call_master(master, &MasterRequest::CommitReplica(block, my_loc))?;
            let mut stored = vec![my_loc];

            if let Some((next, remainder)) = rest.split_first() {
                let next_addr = peers.read().get(&next.worker).copied();
                let forwarded = next_addr
                    .ok_or_else(|| FsError::UnknownWorker(next.worker.to_string()))
                    .and_then(|addr| {
                        call_worker(
                            addr,
                            &WorkerRequest::WriteBlock(
                                block,
                                next.media,
                                remainder.to_vec(),
                                data.clone(),
                            ),
                        )
                    });
                match forwarded {
                    Ok(WorkerResponse::Stored(locs)) => stored.extend(locs),
                    Ok(_) => {
                        return Err(FsError::Internal(
                            "unexpected forward response".into(),
                        ))
                    }
                    Err(_) => {
                        // Downstream failed: release the master's pending
                        // reservations for the unreached stages; the
                        // replication monitor heals the block later (§5).
                        for loc in &rest {
                            let _ =
                                call_master(master, &MasterRequest::AbortReplica(block, *loc));
                        }
                    }
                }
            }
            Ok(WorkerResponse::Stored(stored))
        }
        WorkerRequest::ReadBlock(media, block) => {
            let _net = worker.connect_net();
            Ok(WorkerResponse::Data(worker.read_block(media, block)?))
        }
        WorkerRequest::DeleteBlock(media, block) => {
            worker.delete_block(media, block)?;
            Ok(WorkerResponse::Unit)
        }
        WorkerRequest::Replicate(block, sources, media) => {
            let mut data = None;
            for src in &sources {
                let Some(addr) = peers.read().get(&src.worker).copied() else { continue };
                if let Ok(WorkerResponse::Data(d)) =
                    call_worker(addr, &WorkerRequest::ReadBlock(src.media, block.id))
                {
                    data = Some(d);
                    break;
                }
            }
            let my_loc =
                Location { worker: worker.id(), media, tier: worker.tier_of(media)? };
            match data {
                Some(d) => {
                    worker.write_block(media, block, &d)?;
                    call_master(master, &MasterRequest::CommitReplica(block, my_loc))?;
                    Ok(WorkerResponse::Unit)
                }
                None => {
                    let _ =
                        call_master(master, &MasterRequest::AbortReplica(block, my_loc));
                    Err(FsError::BlockUnavailable(format!(
                        "{}: no reachable source replica",
                        block.id
                    )))
                }
            }
        }
        WorkerRequest::Scrub => {
            let corrupt = worker.scrub();
            let n = corrupt.len() as u32;
            for (block, media) in corrupt {
                let tier = worker.tier_of(media)?;
                let loc = Location { worker: worker.id(), media, tier };
                let _ = worker.delete_block(media, block);
                let _ = call_master(master, &MasterRequest::ReportCorrupt(block, loc));
            }
            Ok(WorkerResponse::Scrubbed(n))
        }
    }
}
