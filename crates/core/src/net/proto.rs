//! RPC message types. Every message implements [`Wire`]; responses are
//! framed as `[status u8][body]` where status 0 carries the response and
//! status 1 carries a [`FsError`] with its variant preserved.

use octopus_common::wire::{Wire, WireReader};
use octopus_common::{
    Block, BlockData, BlockId, BlockTouches, ClientLocation, ClusterStatusReport, DecisionEvent,
    DirEntry, FileStatus, FsError, HeatInfo, HotFile, LocatedBlock, Location, MediaId, MediaStats,
    MetricsSnapshot, RackId, ReplicationVector, Result, SeriesPoint, StorageTierReport,
    TraceSnapshot, WorkerId,
};

/// A request to the master.
#[derive(Debug, Clone, PartialEq)]
pub enum MasterRequest {
    /// `mkdir -p`.
    Mkdir(String),
    /// Create a file; `(path, rv, block_size, lease holder)`.
    CreateFile(String, ReplicationVector, Option<u64>, u64),
    /// Allocate the next block; `(path, len, client location, holder,
    /// excluded workers)`. The exclusion list carries the workers a
    /// client's failed pipeline attempts already hit, so the replacement
    /// placement avoids them (§3.1 recovery).
    AddBlock(String, u64, ClientLocation, u64, Vec<WorkerId>),
    /// A pipeline stage stored its replica.
    CommitReplica(Block, Location),
    /// A pipeline stage failed.
    AbortReplica(Block, Location),
    /// Close a file; `(path, holder)`.
    CompleteFile(String, u64),
    /// Reopen for append; `(path, holder)`.
    AppendFile(String, u64),
    /// `getFileBlockLocations`; `(path, start, len, client location)`.
    GetBlockLocations(String, u64, u64, ClientLocation),
    /// `setReplication`.
    SetReplication(String, ReplicationVector),
    /// Delete; `(path, recursive)`.
    Delete(String, bool),
    /// Rename; `(src, dst)`.
    Rename(String, String),
    /// List a directory.
    List(String),
    /// Status of a path.
    Status(String),
    /// `getStorageTierReports`.
    TierReports,
    /// Worker registration; `(worker, rack, net_bps, now_ms, data-server
    /// address)`.
    RegisterWorker(WorkerId, RackId, f64, u64, String),
    /// Heartbeat; `(worker, media stats, nr_conn, now_ms, block touches)`.
    /// The touches piggyback the worker's per-block read/write counts for
    /// the heat epoch that just closed (empty when nothing was accessed).
    Heartbeat(WorkerId, Vec<MediaStats>, u32, u64, Vec<BlockTouches>),
    /// Full block report; `(worker, (block, media) pairs)`.
    BlockReport(WorkerId, Vec<(Block, MediaId)>),
    /// The data-server addresses of all registered workers.
    WorkerAddresses,
    /// Edit-log ops at or after the given index, wire-encoded with the
    /// edit log's own framed format (tailed by a backup master — §2.1).
    EditsSince(u64),
    /// A scrubber found (and deleted) a corrupt replica (§5).
    ReportCorrupt(BlockId, Location),
    /// Abandon an allocated-but-unwritten last block after a failed
    /// pipeline, reversing the namespace append; `(path, block, holder)`.
    AbandonBlock(String, Block, u64),
    /// The master's metrics registry snapshot (observability).
    Metrics,
    /// The master's trace-collector snapshot (observability).
    Trace,
    /// Re-place an already-allocated block onto a fresh pipeline, keeping
    /// its slot in the file (parallel-write pipeline recovery — a mid-file
    /// block cannot be abandoned without scrambling block order); `(path,
    /// block, client location, holder, excluded workers)`. Responds with
    /// [`MasterResponse::Allocated`] carrying the same block.
    ReassignBlock(String, Block, ClientLocation, u64, Vec<WorkerId>),
    /// A file's access-heat score (EWMA over heartbeated block touches).
    Heat(String),
    /// The audited placement/retrieval/removal decisions about a block.
    ExplainPlacement(BlockId),
    /// The live cluster status report (`octofs-remote status`).
    ClusterStatus,
    /// The `n` hottest files, hottest first.
    HotFiles(u32),
    /// The master's gauge time-series ring.
    Series,
    /// The `n` most recent auto-tiering migration decisions, oldest first.
    Migrations(u32),
}

impl MasterRequest {
    /// Whether a transport-level failure after the request may have
    /// executed can be retried blindly. Mutating requests are not: a
    /// duplicate `CreateFile` or `AddBlock` would corrupt the namespace
    /// view, so their callers own recovery instead.
    pub fn is_idempotent(&self) -> bool {
        use MasterRequest::*;
        !matches!(
            self,
            CreateFile(..)
                | AddBlock(..)
                | ReassignBlock(..)
                | AbandonBlock(..)
                | CompleteFile(..)
                | AppendFile(..)
                | Delete(..)
                | Rename(..)
        )
    }

    /// Stable request-type label for metrics (`request_type="..."`).
    pub fn name(&self) -> &'static str {
        use MasterRequest::*;
        match self {
            Mkdir(..) => "Mkdir",
            CreateFile(..) => "CreateFile",
            AddBlock(..) => "AddBlock",
            CommitReplica(..) => "CommitReplica",
            AbortReplica(..) => "AbortReplica",
            CompleteFile(..) => "CompleteFile",
            AppendFile(..) => "AppendFile",
            GetBlockLocations(..) => "GetBlockLocations",
            SetReplication(..) => "SetReplication",
            Delete(..) => "Delete",
            Rename(..) => "Rename",
            List(..) => "List",
            Status(..) => "Status",
            TierReports => "TierReports",
            RegisterWorker(..) => "RegisterWorker",
            Heartbeat(..) => "Heartbeat",
            BlockReport(..) => "BlockReport",
            WorkerAddresses => "WorkerAddresses",
            EditsSince(..) => "EditsSince",
            ReportCorrupt(..) => "ReportCorrupt",
            AbandonBlock(..) => "AbandonBlock",
            Metrics => "Metrics",
            Trace => "Trace",
            ReassignBlock(..) => "ReassignBlock",
            Heat(..) => "Heat",
            ExplainPlacement(..) => "ExplainPlacement",
            ClusterStatus => "ClusterStatus",
            HotFiles(..) => "HotFiles",
            Series => "Series",
            Migrations(..) => "Migrations",
        }
    }
}

/// A successful response from the master.
#[derive(Debug, Clone, PartialEq)]
pub enum MasterResponse {
    /// No payload.
    Unit,
    /// A file status.
    Status(FileStatus),
    /// An allocated block and its pipeline.
    Allocated(Block, Vec<Location>),
    /// Located blocks.
    Located(Vec<LocatedBlock>),
    /// A replication vector (previous value from `setReplication`).
    Vector(ReplicationVector),
    /// Directory entries.
    Entries(Vec<DirEntry>),
    /// Tier reports.
    Reports(Vec<StorageTierReport>),
    /// Replicas dropped by a delete (for local invalidation).
    Dropped(Vec<(BlockId, Location)>),
    /// Block ids a worker should invalidate (block-report reply).
    Invalidate(Vec<BlockId>),
    /// Registered worker data-server addresses.
    Addresses(Vec<(WorkerId, String)>),
    /// A framed edit-log byte stream (see `octopus_master::editlog`).
    Edits(bytes::Bytes),
    /// The master's metrics snapshot.
    Metrics(MetricsSnapshot),
    /// The master's trace snapshot.
    Trace(TraceSnapshot),
    /// A file's heat.
    Heat(HeatInfo),
    /// Audited decision events about a block, oldest first.
    Decisions(Vec<DecisionEvent>),
    /// The live cluster status report.
    ClusterStatus(ClusterStatusReport),
    /// The hottest files, hottest first.
    HotFiles(Vec<HotFile>),
    /// Gauge time-series points, oldest first.
    Series(Vec<SeriesPoint>),
}

macro_rules! tagged {
    ($buf:expr, $tag:expr $(, $field:expr)*) => {{
        $buf.push($tag);
        $( $field.put($buf); )*
    }};
}

impl Wire for MasterRequest {
    fn put(&self, buf: &mut Vec<u8>) {
        use MasterRequest::*;
        match self {
            Mkdir(p) => tagged!(buf, 0, p),
            CreateFile(p, rv, bs, h) => tagged!(buf, 1, p, rv, bs, h),
            AddBlock(p, len, c, h, x) => tagged!(buf, 2, p, len, c, h, x),
            CommitReplica(b, l) => tagged!(buf, 3, b, l),
            AbortReplica(b, l) => tagged!(buf, 4, b, l),
            CompleteFile(p, h) => tagged!(buf, 5, p, h),
            AppendFile(p, h) => tagged!(buf, 6, p, h),
            GetBlockLocations(p, s, l, c) => tagged!(buf, 7, p, s, l, c),
            SetReplication(p, rv) => tagged!(buf, 8, p, rv),
            Delete(p, r) => tagged!(buf, 9, p, r),
            Rename(s, d) => tagged!(buf, 10, s, d),
            List(p) => tagged!(buf, 11, p),
            Status(p) => tagged!(buf, 12, p),
            TierReports => tagged!(buf, 13),
            RegisterWorker(w, r, n, t, a) => tagged!(buf, 14, w, r, n, t, a),
            Heartbeat(w, m, c, t, h) => tagged!(buf, 15, w, m, c, t, h),
            BlockReport(w, b) => tagged!(buf, 16, w, b),
            WorkerAddresses => tagged!(buf, 17),
            EditsSince(n) => tagged!(buf, 18, n),
            ReportCorrupt(b, l) => tagged!(buf, 19, b, l),
            AbandonBlock(p, b, h) => tagged!(buf, 20, p, b, h),
            Metrics => tagged!(buf, 21),
            Trace => tagged!(buf, 22),
            ReassignBlock(p, b, c, h, x) => tagged!(buf, 23, p, b, c, h, x),
            Heat(p) => tagged!(buf, 24, p),
            ExplainPlacement(b) => tagged!(buf, 25, b),
            ClusterStatus => tagged!(buf, 26),
            HotFiles(n) => tagged!(buf, 27, n),
            Series => tagged!(buf, 28),
            Migrations(n) => tagged!(buf, 29, n),
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        use MasterRequest::*;
        Ok(match u8::get(r)? {
            0 => Mkdir(Wire::get(r)?),
            1 => CreateFile(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?),
            2 => {
                AddBlock(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?)
            }
            3 => CommitReplica(Wire::get(r)?, Wire::get(r)?),
            4 => AbortReplica(Wire::get(r)?, Wire::get(r)?),
            5 => CompleteFile(Wire::get(r)?, Wire::get(r)?),
            6 => AppendFile(Wire::get(r)?, Wire::get(r)?),
            7 => GetBlockLocations(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?),
            8 => SetReplication(Wire::get(r)?, Wire::get(r)?),
            9 => Delete(Wire::get(r)?, Wire::get(r)?),
            10 => Rename(Wire::get(r)?, Wire::get(r)?),
            11 => List(Wire::get(r)?),
            12 => Status(Wire::get(r)?),
            13 => TierReports,
            14 => RegisterWorker(
                Wire::get(r)?,
                Wire::get(r)?,
                Wire::get(r)?,
                Wire::get(r)?,
                Wire::get(r)?,
            ),
            15 => {
                Heartbeat(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?)
            }
            16 => BlockReport(Wire::get(r)?, Wire::get(r)?),
            17 => WorkerAddresses,
            18 => EditsSince(Wire::get(r)?),
            19 => ReportCorrupt(Wire::get(r)?, Wire::get(r)?),
            20 => AbandonBlock(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?),
            21 => Metrics,
            22 => Trace,
            23 => ReassignBlock(
                Wire::get(r)?,
                Wire::get(r)?,
                Wire::get(r)?,
                Wire::get(r)?,
                Wire::get(r)?,
            ),
            24 => Heat(Wire::get(r)?),
            25 => ExplainPlacement(Wire::get(r)?),
            26 => ClusterStatus,
            27 => HotFiles(Wire::get(r)?),
            28 => Series,
            29 => Migrations(Wire::get(r)?),
            t => return Err(FsError::Io(format!("bad master request tag {t}"))),
        })
    }
}

impl Wire for MasterResponse {
    fn put(&self, buf: &mut Vec<u8>) {
        use MasterResponse::*;
        match self {
            Unit => tagged!(buf, 0),
            Status(s) => tagged!(buf, 1, s),
            Allocated(b, locs) => tagged!(buf, 2, b, locs),
            Located(l) => tagged!(buf, 3, l),
            Vector(v) => tagged!(buf, 4, v),
            Entries(e) => tagged!(buf, 5, e),
            Reports(r) => tagged!(buf, 6, r),
            Dropped(d) => tagged!(buf, 7, d),
            Invalidate(i) => tagged!(buf, 8, i),
            Addresses(a) => tagged!(buf, 9, a),
            Edits(b) => tagged!(buf, 10, b),
            Metrics(s) => tagged!(buf, 11, s),
            Trace(s) => tagged!(buf, 12, s),
            Heat(h) => tagged!(buf, 13, h),
            Decisions(d) => tagged!(buf, 14, d),
            ClusterStatus(c) => tagged!(buf, 15, c),
            HotFiles(h) => tagged!(buf, 16, h),
            Series(p) => tagged!(buf, 17, p),
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        use MasterResponse::*;
        Ok(match u8::get(r)? {
            0 => Unit,
            1 => Status(Wire::get(r)?),
            2 => Allocated(Wire::get(r)?, Wire::get(r)?),
            3 => Located(Wire::get(r)?),
            4 => Vector(Wire::get(r)?),
            5 => Entries(Wire::get(r)?),
            6 => Reports(Wire::get(r)?),
            7 => Dropped(Wire::get(r)?),
            8 => Invalidate(Wire::get(r)?),
            9 => Addresses(Wire::get(r)?),
            10 => Edits(Wire::get(r)?),
            11 => Metrics(Wire::get(r)?),
            12 => Trace(Wire::get(r)?),
            13 => Heat(Wire::get(r)?),
            14 => Decisions(Wire::get(r)?),
            15 => ClusterStatus(Wire::get(r)?),
            16 => HotFiles(Wire::get(r)?),
            17 => Series(Wire::get(r)?),
            t => return Err(FsError::Io(format!("bad master response tag {t}"))),
        })
    }
}

/// A request to a worker's data server.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Store a block on `media` and forward down the remaining pipeline;
    /// `(block, media, rest of pipeline, payload)`. The worker commits its
    /// replica to the master itself and the ack aggregates every stored
    /// location.
    WriteBlock(Block, MediaId, Vec<Location>, BlockData),
    /// Read a block replica.
    ReadBlock(MediaId, BlockId),
    /// Invalidate a replica.
    DeleteBlock(MediaId, BlockId),
    /// Re-replicate: pull `block` from one of `sources` (best first),
    /// store it on the local `media`, and commit to the master (§5).
    Replicate(Block, Vec<Location>, MediaId),
    /// Verify every local replica's checksum; corrupt ones are deleted
    /// and reported to the master (the §5 scrubber). Responds with the
    /// number of corrupt replicas found.
    Scrub,
    /// The worker's metrics registry snapshot (observability).
    Metrics,
    /// The worker's trace-collector snapshot (observability).
    Trace,
    /// The worker's gauge time-series ring (observability).
    Series,
}

impl WorkerRequest {
    /// Whether a transport-level failure after the request may have
    /// executed can be retried blindly. Only `WriteBlock` is not: a blind
    /// resend would re-run the whole pipeline and double-commit replicas;
    /// its caller recovers by abandoning the block and re-placing it.
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, WorkerRequest::WriteBlock(..))
    }

    /// Stable request-type label for metrics (`request_type="..."`).
    pub fn name(&self) -> &'static str {
        use WorkerRequest::*;
        match self {
            WriteBlock(..) => "WriteBlock",
            ReadBlock(..) => "ReadBlock",
            DeleteBlock(..) => "DeleteBlock",
            Replicate(..) => "Replicate",
            Scrub => "Scrub",
            Metrics => "Metrics",
            Trace => "Trace",
            Series => "Series",
        }
    }
}

/// A successful response from a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerResponse {
    /// Locations that acknowledged the write, pipeline order.
    Stored(Vec<Location>),
    /// Block payload plus the CRC-32 the worker recorded at write time.
    /// Readers recompute the CRC over the received bytes, catching both
    /// at-rest and in-flight corruption before failing over (§4.1).
    Data(BlockData, u32),
    /// No payload.
    Unit,
    /// Scrub outcome: number of corrupt replicas dropped.
    Scrubbed(u32),
    /// The worker's metrics snapshot.
    Metrics(MetricsSnapshot),
    /// The worker's trace snapshot.
    Trace(TraceSnapshot),
    /// The worker's gauge time-series points, oldest first.
    Series(Vec<SeriesPoint>),
}

impl Wire for WorkerRequest {
    fn put(&self, buf: &mut Vec<u8>) {
        use WorkerRequest::*;
        match self {
            WriteBlock(b, m, rest, d) => tagged!(buf, 0, b, m, rest, d),
            ReadBlock(m, b) => tagged!(buf, 1, m, b),
            DeleteBlock(m, b) => tagged!(buf, 2, m, b),
            Replicate(b, s, m) => tagged!(buf, 3, b, s, m),
            Scrub => tagged!(buf, 4),
            Metrics => tagged!(buf, 5),
            Trace => tagged!(buf, 6),
            Series => tagged!(buf, 7),
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        use WorkerRequest::*;
        Ok(match u8::get(r)? {
            0 => WriteBlock(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?, Wire::get(r)?),
            1 => ReadBlock(Wire::get(r)?, Wire::get(r)?),
            2 => DeleteBlock(Wire::get(r)?, Wire::get(r)?),
            3 => Replicate(Wire::get(r)?, Wire::get(r)?, Wire::get(r)?),
            4 => Scrub,
            5 => Metrics,
            6 => Trace,
            7 => Series,
            t => return Err(FsError::Io(format!("bad worker request tag {t}"))),
        })
    }
}

impl Wire for WorkerResponse {
    fn put(&self, buf: &mut Vec<u8>) {
        use WorkerResponse::*;
        match self {
            Stored(l) => tagged!(buf, 0, l),
            Data(d, sum) => tagged!(buf, 1, d, sum),
            Unit => tagged!(buf, 2),
            Scrubbed(n) => tagged!(buf, 3, n),
            Metrics(s) => tagged!(buf, 4, s),
            Trace(s) => tagged!(buf, 5, s),
            Series(p) => tagged!(buf, 6, p),
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        use WorkerResponse::*;
        Ok(match u8::get(r)? {
            0 => Stored(Wire::get(r)?),
            1 => Data(Wire::get(r)?, Wire::get(r)?),
            2 => Unit,
            3 => Scrubbed(Wire::get(r)?),
            4 => Metrics(Wire::get(r)?),
            5 => Trace(Wire::get(r)?),
            6 => Series(Wire::get(r)?),
            t => return Err(FsError::Io(format!("bad worker response tag {t}"))),
        })
    }
}

/// Encodes `Result<R>` as a status-tagged payload.
pub fn encode_result<R: Wire>(res: &Result<R>) -> Vec<u8> {
    let mut buf = Vec::new();
    match res {
        Ok(r) => {
            buf.push(0);
            r.put(&mut buf);
        }
        Err(e) => {
            buf.push(1);
            e.put(&mut buf);
        }
    }
    buf
}

/// An RPC payload as scatter/gather segments: a small encoded `head`, an
/// optional large `body` (a block payload, shared, never copied), and a
/// small `tail` (fields the wire format places after the payload, like
/// the `Data` response checksum). The framing layer writes the segments
/// directly to the socket, so a block travels from the caller's buffer to
/// the kernel with no intermediate copy.
#[derive(Debug, Clone)]
pub struct FramePayload {
    /// Encoded fields up to (and including) the body's length prefix.
    pub head: Vec<u8>,
    /// The block payload, if the message carries one.
    pub body: Option<bytes::Bytes>,
    /// Encoded fields after the body.
    pub tail: Vec<u8>,
}

impl FramePayload {
    /// A payload with no large body (the common small-message case).
    pub fn small(head: Vec<u8>) -> Self {
        Self { head, body: None, tail: Vec::new() }
    }

    /// Total encoded length.
    pub fn len(&self) -> usize {
        self.head.len() + self.body.as_ref().map_or(0, |b| b.len()) + self.tail.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The non-empty segments, in wire order.
    pub fn segs(&self) -> Vec<&[u8]> {
        let mut v: Vec<&[u8]> = Vec::with_capacity(3);
        if !self.head.is_empty() {
            v.push(&self.head);
        }
        if let Some(b) = &self.body {
            v.push(b);
        }
        if !self.tail.is_empty() {
            v.push(&self.tail);
        }
        v
    }

    /// Flattens into one contiguous buffer. Only the fault-injection
    /// paths use this (they must mangle the full encoded payload); the
    /// normal path writes the segments without concatenating.
    pub fn concat(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        for s in self.segs() {
            out.extend_from_slice(s);
        }
        out
    }
}

/// Encodes a worker request as a [`FramePayload`]. A `WriteBlock` carrying
/// real bytes keeps the block as a shared `body` segment; everything else
/// encodes into the head.
pub fn encode_worker_frame(req: &WorkerRequest) -> FramePayload {
    if let WorkerRequest::WriteBlock(b, m, rest, BlockData::Real(bytes)) = req {
        // Mirrors the `Wire` layout of `WriteBlock`: tag, block, media,
        // rest, then `BlockData::Real` = `[0u8][u32 len][bytes]` — with
        // the bytes as a shared segment instead of a copy.
        let mut head = Vec::with_capacity(64);
        head.push(0);
        b.put(&mut head);
        m.put(&mut head);
        rest.put(&mut head);
        head.push(0);
        (bytes.len() as u32).put(&mut head);
        FramePayload { head, body: Some(bytes.clone()), tail: Vec::new() }
    } else {
        FramePayload::small(octopus_common::wire::encode(req))
    }
}

/// Encodes a worker result as a [`FramePayload`]. A `Data` response with
/// real bytes keeps the block as a shared `body` segment; the trailing
/// checksum becomes the tail.
pub fn encode_worker_result_frame(res: &Result<WorkerResponse>) -> FramePayload {
    if let Ok(WorkerResponse::Data(BlockData::Real(bytes), sum)) = res {
        // `[status 0][tag 1][BlockData tag 0][u32 len]` + bytes + `[u32 sum]`.
        let mut head = vec![0u8, 1, 0];
        (bytes.len() as u32).put(&mut head);
        let mut tail = Vec::with_capacity(4);
        sum.put(&mut tail);
        FramePayload { head, body: Some(bytes.clone()), tail }
    } else {
        FramePayload::small(encode_result(res))
    }
}

/// Encodes a master result as a [`FramePayload`]. An `Edits` response
/// keeps the edit-log byte stream as a shared `body` segment.
pub fn encode_master_result_frame(res: &Result<MasterResponse>) -> FramePayload {
    if let Ok(MasterResponse::Edits(bytes)) = res {
        // `[status 0][tag 10][u32 len]` + bytes.
        let mut head = vec![0u8, 10];
        (bytes.len() as u32).put(&mut head);
        FramePayload { head, body: Some(bytes.clone()), tail: Vec::new() }
    } else {
        FramePayload::small(encode_result(res))
    }
}

/// Decodes a status-tagged response frame into `Result<R>` *sharing* the
/// frame's allocation: any `bytes::Bytes` field (block payloads) becomes a
/// view into `frame` instead of a copy.
pub fn decode_result_bytes<R: Wire>(frame: &bytes::Bytes) -> Result<R> {
    let mut r = WireReader::new_shared(frame, 0);
    match u8::get(&mut r)? {
        0 => {
            let v = R::get(&mut r)?;
            r.expect_finished()?;
            Ok(v)
        }
        1 => {
            let e = FsError::get(&mut r)?;
            r.expect_finished()?;
            Err(e)
        }
        t => Err(FsError::Io(format!("bad result status {t}"))),
    }
}

/// Dispatch class of an encoded worker request (`body` starts at the
/// request tag, after any trace envelope): how many further nested RPC
/// levels serving it can require. `WriteBlock` forwarding through N more
/// stages is class `min(N, 2)`; `Replicate` issues one nested `ReadBlock`
/// (class 1); everything else resolves locally (class 0). The dispatch
/// pool admits higher classes only while enough threads remain free for
/// the lower ones, which keeps nested pipeline forwards deadlock-free.
pub fn classify_worker_request(body: &[u8]) -> usize {
    let mut r = WireReader::new(body);
    match u8::get(&mut r) {
        Ok(0) => {
            if Block::get(&mut r).is_err() || MediaId::get(&mut r).is_err() {
                return 0;
            }
            // Vec<Location> starts with its u32 element count.
            match u32::get(&mut r) {
                Ok(n) => (n as usize).min(2),
                Err(_) => 0,
            }
        }
        Ok(3) => 1,
        _ => 0,
    }
}

/// Decodes a status-tagged payload back into `Result<R>`.
pub fn decode_result<R: Wire>(buf: &[u8]) -> Result<R> {
    let mut r = WireReader::new(buf);
    match u8::get(&mut r)? {
        0 => {
            let v = R::get(&mut r)?;
            r.expect_finished()?;
            Ok(v)
        }
        1 => {
            let e = FsError::get(&mut r)?;
            r.expect_finished()?;
            Err(e)
        }
        t => Err(FsError::Io(format!("bad result status {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::wire::{decode, encode};
    use octopus_common::{GenStamp, TierId};

    fn rt<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(decode::<T>(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn master_messages_round_trip() {
        rt(MasterRequest::Mkdir("/a".into()));
        rt(MasterRequest::CreateFile(
            "/f".into(),
            ReplicationVector::msh(1, 0, 2),
            Some(1 << 20),
            42,
        ));
        rt(MasterRequest::AddBlock(
            "/f".into(),
            100,
            ClientLocation::OnWorker(WorkerId(3)),
            42,
            vec![WorkerId(1), WorkerId(7)],
        ));
        rt(MasterRequest::AbandonBlock(
            "/f".into(),
            Block { id: BlockId(8), gen: GenStamp(2), len: 100 },
            42,
        ));
        rt(MasterRequest::ReassignBlock(
            "/f".into(),
            Block { id: BlockId(8), gen: GenStamp(2), len: 100 },
            ClientLocation::OffCluster,
            42,
            vec![WorkerId(0), WorkerId(3)],
        ));
        rt(MasterRequest::TierReports);
        rt(MasterRequest::BlockReport(
            WorkerId(1),
            vec![(Block { id: BlockId(1), gen: GenStamp(0), len: 5 }, MediaId(2))],
        ));
        rt(MasterResponse::Unit);
        rt(MasterResponse::Allocated(
            Block { id: BlockId(9), gen: GenStamp(1), len: 7 },
            vec![Location { worker: WorkerId(0), media: MediaId(1), tier: TierId(2) }],
        ));
        rt(MasterResponse::Invalidate(vec![BlockId(4), BlockId(5)]));
    }

    #[test]
    fn worker_messages_round_trip() {
        rt(WorkerRequest::WriteBlock(
            Block { id: BlockId(1), gen: GenStamp(0), len: 3 },
            MediaId(0),
            vec![],
            BlockData::Real(bytes::Bytes::from_static(b"abc")),
        ));
        rt(WorkerRequest::ReadBlock(MediaId(1), BlockId(2)));
        rt(WorkerResponse::Data(BlockData::Synthetic { len: 10, seed: 3 }, 0));
        rt(WorkerResponse::Data(BlockData::Real(bytes::Bytes::from_static(b"xyz")), 0xdead_beef));
        rt(WorkerResponse::Stored(vec![]));
    }

    #[test]
    fn idempotency_classification() {
        assert!(MasterRequest::Status("/f".into()).is_idempotent());
        assert!(MasterRequest::Heartbeat(WorkerId(0), vec![], 0, 0, vec![]).is_idempotent());
        assert!(MasterRequest::Heat("/f".into()).is_idempotent());
        assert!(MasterRequest::ExplainPlacement(BlockId(1)).is_idempotent());
        assert!(MasterRequest::ClusterStatus.is_idempotent());
        assert!(MasterRequest::HotFiles(5).is_idempotent());
        assert!(MasterRequest::Migrations(5).is_idempotent());
        assert!(MasterRequest::Series.is_idempotent());
        assert!(WorkerRequest::Series.is_idempotent());
        assert!(MasterRequest::CommitReplica(
            Block { id: BlockId(1), gen: GenStamp(0), len: 1 },
            Location { worker: WorkerId(0), media: MediaId(0), tier: TierId(0) },
        )
        .is_idempotent());
        assert!(!MasterRequest::AddBlock("/f".into(), 1, ClientLocation::OffCluster, 1, vec![],)
            .is_idempotent());
        assert!(!MasterRequest::ReassignBlock(
            "/f".into(),
            Block { id: BlockId(1), gen: GenStamp(0), len: 1 },
            ClientLocation::OffCluster,
            1,
            vec![],
        )
        .is_idempotent());
        assert!(!MasterRequest::Delete("/f".into(), false).is_idempotent());
        assert!(!MasterRequest::Rename("/a".into(), "/b".into()).is_idempotent());

        assert!(WorkerRequest::ReadBlock(MediaId(0), BlockId(1)).is_idempotent());
        assert!(WorkerRequest::Scrub.is_idempotent());
        assert!(!WorkerRequest::WriteBlock(
            Block { id: BlockId(1), gen: GenStamp(0), len: 1 },
            MediaId(0),
            vec![],
            BlockData::Synthetic { len: 1, seed: 0 },
        )
        .is_idempotent());
    }

    #[test]
    fn metrics_messages_round_trip() {
        use octopus_common::metrics::{Labels, MetricsRegistry};
        rt(MasterRequest::Metrics);
        rt(WorkerRequest::Metrics);
        assert!(MasterRequest::Metrics.is_idempotent());
        assert!(WorkerRequest::Metrics.is_idempotent());
        assert_eq!(MasterRequest::Metrics.name(), "Metrics");

        let reg = MetricsRegistry::new();
        reg.add("x_total", Labels::req("ReadBlock").with_tier(TierId(1)), 7);
        reg.histogram("lat_us", Labels::worker(WorkerId(2))).observe_us(99);
        rt(MasterResponse::Metrics(reg.snapshot()));
        rt(WorkerResponse::Metrics(reg.snapshot()));
    }

    #[test]
    fn trace_messages_round_trip() {
        use octopus_common::trace::TraceCollector;
        rt(MasterRequest::Trace);
        rt(WorkerRequest::Trace);
        assert!(MasterRequest::Trace.is_idempotent());
        assert!(WorkerRequest::Trace.is_idempotent());
        assert_eq!(MasterRequest::Trace.name(), "Trace");
        assert_eq!(WorkerRequest::Trace.name(), "Trace");

        let col = TraceCollector::new("test");
        {
            let mut s = col.root("op");
            s.annotate("block", 7);
        }
        rt(MasterResponse::Trace(col.snapshot()));
        rt(WorkerResponse::Trace(col.snapshot()));
    }

    #[test]
    fn telemetry_messages_round_trip() {
        use octopus_common::{
            BlockTouches, CandidateScore, ClusterStatusReport, DecisionEvent, DecisionKind,
            DecisionRound, HeatInfo, HotFile, INodeId, SeriesPoint,
        };
        rt(MasterRequest::Heartbeat(
            WorkerId(3),
            vec![],
            2,
            999,
            vec![BlockTouches { block: BlockId(7), reads: 4, writes: 1 }],
        ));
        rt(MasterRequest::Heat("/f".into()));
        rt(MasterRequest::ExplainPlacement(BlockId(9)));
        rt(MasterRequest::ClusterStatus);
        rt(MasterRequest::HotFiles(10));
        rt(MasterRequest::Migrations(10));
        rt(MasterRequest::Series);
        rt(WorkerRequest::Series);
        assert_eq!(MasterRequest::Heat("/f".into()).name(), "Heat");
        assert_eq!(MasterRequest::ExplainPlacement(BlockId(1)).name(), "ExplainPlacement");
        assert_eq!(MasterRequest::ClusterStatus.name(), "ClusterStatus");
        assert_eq!(WorkerRequest::Series.name(), "Series");

        rt(MasterResponse::Heat(HeatInfo {
            file: INodeId(4),
            reads_ewma: 1.5,
            writes_ewma: 0.5,
            cur_reads: 2,
            cur_writes: 0,
            score: 2.1,
        }));
        rt(MasterResponse::Decisions(vec![DecisionEvent {
            seq: 1,
            when_ms: 50,
            kind: DecisionKind::Placement,
            block: BlockId(9),
            file: INodeId(4),
            policy: "MOOP".into(),
            chosen: vec![Location { worker: WorkerId(0), media: MediaId(2), tier: TierId(1) }],
            rounds: vec![DecisionRound {
                replica_index: 0,
                tier_pin: None,
                candidates: vec![CandidateScore {
                    media: MediaId(2),
                    worker: WorkerId(0),
                    tier: TierId(1),
                    total: 0.4,
                    db: 0.9,
                    lb: 1.0,
                    ft: 3.0,
                    tm: 0.8,
                    chosen: true,
                }],
                chosen_media: Some(MediaId(2)),
            }],
        }]));
        rt(MasterResponse::ClusterStatus(ClusterStatusReport::default()));
        rt(MasterResponse::HotFiles(vec![HotFile {
            path: "/f".into(),
            heat: HeatInfo { file: INodeId(4), score: 2.0, ..Default::default() },
        }]));
        let points = vec![SeriesPoint { t_ms: 5, values: vec![("nr_conn".into(), 3)] }];
        rt(MasterResponse::Series(points.clone()));
        rt(WorkerResponse::Series(points));
    }

    #[test]
    fn frame_payloads_match_wire_encoding() {
        // The scatter/gather encodings must byte-for-byte match the plain
        // `Wire` encodings — a receiver cannot tell them apart.
        let req = WorkerRequest::WriteBlock(
            Block { id: BlockId(5), gen: GenStamp(1), len: 6 },
            MediaId(2),
            vec![Location { worker: WorkerId(1), media: MediaId(0), tier: TierId(0) }],
            BlockData::Real(bytes::Bytes::from_static(b"payload")),
        );
        assert_eq!(encode_worker_frame(&req).concat(), encode(&req));

        let res: Result<WorkerResponse> =
            Ok(WorkerResponse::Data(BlockData::Real(bytes::Bytes::from_static(b"data")), 0xfeed));
        assert_eq!(encode_worker_result_frame(&res).concat(), encode_result(&res));

        let mres: Result<MasterResponse> =
            Ok(MasterResponse::Edits(bytes::Bytes::from_static(b"oplog")));
        assert_eq!(encode_master_result_frame(&mres).concat(), encode_result(&mres));

        // Small messages take the head-only path.
        let small = encode_worker_frame(&WorkerRequest::Scrub);
        assert!(small.body.is_none());
        assert_eq!(small.concat(), encode(&WorkerRequest::Scrub));
    }

    #[test]
    fn decode_result_bytes_shares_the_frame() {
        let data = bytes::Bytes::from(vec![42u8; 4096]);
        let res: Result<WorkerResponse> = Ok(WorkerResponse::Data(BlockData::Real(data), 7));
        let frame = bytes::Bytes::from(encode_result(&res));
        let decoded: WorkerResponse = decode_result_bytes(&frame).unwrap();
        let WorkerResponse::Data(BlockData::Real(out), 7) = decoded else {
            panic!("wrong decode");
        };
        assert_eq!(out, vec![42u8; 4096]);
        // The decoded payload aliases the frame allocation (no copy).
        assert!(std::ptr::eq(out.as_ref().as_ptr(), frame[7..].as_ptr()));
    }

    #[test]
    fn worker_requests_classify_by_forward_depth() {
        let block = Block { id: BlockId(1), gen: GenStamp(0), len: 1 };
        let loc = |w| Location { worker: WorkerId(w), media: MediaId(0), tier: TierId(0) };
        let wb = |rest: Vec<Location>| {
            encode(&WorkerRequest::WriteBlock(
                block,
                MediaId(0),
                rest,
                BlockData::Synthetic { len: 1, seed: 0 },
            ))
        };
        assert_eq!(classify_worker_request(&wb(vec![])), 0);
        assert_eq!(classify_worker_request(&wb(vec![loc(1)])), 1);
        assert_eq!(classify_worker_request(&wb(vec![loc(1), loc(2)])), 2);
        assert_eq!(classify_worker_request(&wb(vec![loc(1), loc(2), loc(3)])), 2);
        assert_eq!(
            classify_worker_request(&encode(&WorkerRequest::Replicate(block, vec![], MediaId(0)))),
            1
        );
        assert_eq!(classify_worker_request(&encode(&WorkerRequest::Scrub)), 0);
        assert_eq!(
            classify_worker_request(&encode(&WorkerRequest::ReadBlock(MediaId(0), BlockId(1)))),
            0
        );
        assert_eq!(classify_worker_request(b""), 0); // garbage never panics
    }

    #[test]
    fn results_round_trip_with_error_variants() {
        let ok: Result<MasterResponse> = Ok(MasterResponse::Unit);
        let enc = encode_result(&ok);
        assert_eq!(decode_result::<MasterResponse>(&enc).unwrap(), MasterResponse::Unit);

        let err: Result<MasterResponse> = Err(FsError::LeaseConflict("held".into()));
        let enc = encode_result(&err);
        assert!(matches!(
            decode_result::<MasterResponse>(&enc),
            Err(FsError::LeaseConflict(m)) if m == "held"
        ));
    }
}
