//! Deterministic fault injection for the RPC layer (tests only, but
//! compiled in: the hot path is one relaxed atomic load).
//!
//! Faults are registered against a *server's* listen address and consumed
//! one per response, in registration order, when that server is about to
//! write a response frame. Injecting at the response boundary exercises
//! every client-side failure mode a flaky network produces — a request
//! that was executed but never answered (drop / truncate), an answer that
//! arrives late (delay), and an answer that arrives damaged (corrupt) —
//! without patching the OS socket layer.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::Duration;

use octopus_common::Result;

use super::frame::{write_mux_frame, MUX_ID_LEN};
use super::proto::FramePayload;

/// One injected fault, applied to the next response of the target server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Close the connection instead of responding (the request executed,
    /// the reply was lost — the ambiguous failure).
    DropConnection,
    /// Sleep before responding (deadline pressure).
    Delay(Duration),
    /// Write a frame header claiming the full length, send only half the
    /// payload, then close (a peer dying mid-write).
    TruncateFrame,
    /// Flip one byte in the middle of the response payload (in-flight
    /// corruption the checksum must catch).
    CorruptPayload,
}

/// Fast-path guard: when no fault was ever registered, servers pay one
/// relaxed load and nothing else.
static ARMED: AtomicBool = AtomicBool::new(false);

static REGISTRY: LazyLock<Mutex<HashMap<SocketAddr, VecDeque<FaultAction>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Queues `action` against the server listening on `server`.
pub fn inject(server: SocketAddr, action: FaultAction) {
    REGISTRY.lock().unwrap().entry(server).or_default().push_back(action);
    ARMED.store(true, Ordering::Release);
}

/// Drops all pending faults for one server.
pub fn clear(server: SocketAddr) {
    REGISTRY.lock().unwrap().remove(&server);
}

/// Pending fault count for one server (test assertions).
pub fn pending(server: SocketAddr) -> usize {
    if !ARMED.load(Ordering::Acquire) {
        return 0;
    }
    REGISTRY.lock().unwrap().get(&server).map_or(0, |q| q.len())
}

fn take(server: SocketAddr) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    REGISTRY.lock().unwrap().get_mut(&server)?.pop_front()
}

/// Writes one multiplexed response frame (request id `id`) on behalf of
/// the server at `server`, applying at most one pending fault. Returns
/// `Ok(true)` when the connection is still usable, `Ok(false)` when the
/// fault consumed it (the caller should drop the connection without
/// writing anything else). The fault-free path writes the payload's
/// segments without concatenating them; only the mangling faults flatten.
pub fn write_response(
    server: SocketAddr,
    stream: &mut TcpStream,
    id: u64,
    payload: &FramePayload,
) -> Result<bool> {
    match take(server) {
        None => {
            write_mux_frame(stream, id, &payload.segs())?;
            Ok(true)
        }
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            write_mux_frame(stream, id, &payload.segs())?;
            Ok(true)
        }
        Some(FaultAction::DropConnection) => {
            let _ = stream.shutdown(Shutdown::Both);
            Ok(false)
        }
        Some(FaultAction::TruncateFrame) => {
            use std::io::Write;
            let flat = payload.concat();
            let _ = stream.write_all(&((flat.len() + MUX_ID_LEN) as u32).to_le_bytes());
            let _ = stream.write_all(&id.to_le_bytes());
            let _ = stream.write_all(&flat[..flat.len() / 2]);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            Ok(false)
        }
        Some(FaultAction::CorruptPayload) => {
            let mut bad = payload.concat();
            if !bad.is_empty() {
                let mid = bad.len() / 2;
                bad[mid] ^= 0xFF;
            }
            write_mux_frame(stream, id, &[&bad])?;
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn faults_consume_in_order_per_server() {
        let a = addr(19_001);
        let b = addr(19_002);
        inject(a, FaultAction::DropConnection);
        inject(a, FaultAction::CorruptPayload);
        inject(b, FaultAction::TruncateFrame);
        assert_eq!(pending(a), 2);
        assert_eq!(pending(b), 1);
        assert_eq!(take(a), Some(FaultAction::DropConnection));
        assert_eq!(take(a), Some(FaultAction::CorruptPayload));
        assert_eq!(take(a), None);
        assert_eq!(take(b), Some(FaultAction::TruncateFrame));
        clear(a);
        clear(b);
    }
}
