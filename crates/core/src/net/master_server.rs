//! The master's RPC server: a multiplexed [`super::server::ServerCore`]
//! dispatching [`MasterRequest`]s onto an [`octopus_master::Master`].

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use parking_lot::RwLock;

use octopus_common::metrics::Labels;
use octopus_common::trace::{self, TraceContext};
use octopus_common::wire::{Wire, WireReader};
use octopus_common::{Result, ServerConfig, WorkerId};
use octopus_master::{ClientId, Master};

use super::proto::{encode_master_result_frame, MasterRequest, MasterResponse};
use super::server::{Handler, ServerCore};

/// Server-side state: the master plus the registry of worker data-server
/// addresses (populated by `RegisterWorker`, served by `WorkerAddresses`).
pub struct MasterState {
    /// The master.
    pub master: Arc<Master>,
    /// Worker data-server addresses. Mutate through RPC registration (or
    /// [`MasterState::invalidate_resolved`] after a direct edit) so the
    /// resolution cache stays coherent.
    pub addrs: Arc<RwLock<HashMap<WorkerId, String>>>,
    /// Cached DNS resolution of `addrs`, invalidated on (re-)registration.
    /// The replication monitor calls [`MasterState::resolved_addrs`] every
    /// round; without the cache each round re-ran a resolver query per
    /// worker even though registrations change rarely.
    resolved: Mutex<Option<super::monitor::Addrs>>,
}

impl MasterState {
    /// Fresh state around a master.
    pub fn new(master: Arc<Master>) -> Self {
        Self { master, addrs: Arc::new(RwLock::new(HashMap::new())), resolved: Mutex::new(None) }
    }

    /// The registered worker addresses as socket addresses, resolving (and
    /// counting a `master_addr_resolutions_total` increment) only when the
    /// cache is cold; registration invalidates it.
    pub fn resolved_addrs(&self) -> super::monitor::Addrs {
        if let Some(cached) = self.resolved.lock().unwrap().as_ref() {
            return cached.clone();
        }
        self.master.metrics().inc("master_addr_resolutions_total", Labels::NONE);
        let mut out = HashMap::new();
        for (w, a) in self.addrs.read().iter() {
            if let Ok(mut it) = a.as_str().to_socket_addrs() {
                if let Some(sa) = it.next() {
                    out.insert(*w, sa);
                }
            }
        }
        *self.resolved.lock().unwrap() = Some(out.clone());
        out
    }

    /// Drops the cached resolution (a worker registered or an address was
    /// edited directly); the next [`MasterState::resolved_addrs`] call
    /// re-resolves.
    pub fn invalidate_resolved(&self) {
        *self.resolved.lock().unwrap() = None;
    }
}

/// A running master RPC server.
pub struct MasterServer {
    core: ServerCore,
    state: Arc<MasterState>,
}

impl MasterServer {
    /// Binds to `127.0.0.1:0` and starts serving `master`.
    pub fn spawn(master: Arc<Master>) -> Result<Self> {
        Self::spawn_on(master, "127.0.0.1:0")
    }

    /// Binds to an explicit address (daemon deployments).
    pub fn spawn_on(master: Arc<Master>, bind: impl ToSocketAddrs) -> Result<Self> {
        Self::spawn_with(master, bind, ServerConfig::default())
    }

    /// Binds with an explicit server configuration (tests tune the pool,
    /// connection caps, and idle-reap horizon).
    pub fn spawn_with(
        master: Arc<Master>,
        bind: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> Result<Self> {
        let state = Arc::new(MasterState::new(master));
        let handler_state = Arc::clone(&state);
        let handler: Handler = Arc::new(move |frame: bytes::Bytes| {
            let result = (|| {
                let (ctx, body) = trace::unwrap_envelope(&frame)?;
                let offset = frame.len() - body.len();
                let mut r = WireReader::new_shared(&frame, offset);
                let req = MasterRequest::get(&mut r)?;
                r.expect_finished()?;
                dispatch_traced(&handler_state, req, ctx)
            })();
            encode_master_result_frame(&result)
        });
        // Master requests never issue nested worker/master RPCs: all
        // dispatch is class 0.
        let core = ServerCore::spawn(bind, "octopus-master", cfg, Arc::new(|_| 0), handler)?;
        Ok(Self { core, state })
    }

    /// The server's shared state (master + worker-address registry).
    pub fn state(&self) -> &Arc<MasterState> {
        &self.state
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// Stops accepting connections and severs open ones so in-flight
    /// callers fail fast.
    pub fn shutdown(&mut self) {
        self.core.shutdown();
    }
}

/// Maps one request onto the master API, recording per-request-type op
/// counts and latency into the master's registry.
pub fn dispatch(state: &MasterState, req: MasterRequest) -> Result<MasterResponse> {
    dispatch_traced(state, req, None)
}

/// [`dispatch`] continuing a propagated trace context: traced requests
/// record a `master.<Name>` span into the master's collector.
pub fn dispatch_traced(
    state: &MasterState,
    req: MasterRequest,
    ctx: Option<TraceContext>,
) -> Result<MasterResponse> {
    let mut span = ctx.map(|c| state.master.trace().child_of(format!("master.{}", req.name()), c));
    let labels = octopus_common::metrics::Labels::req(req.name());
    state.master.metrics().inc("master_requests_total", labels);
    let start = std::time::Instant::now();
    let out = dispatch_inner(state, req);
    state.master.metrics().observe_since("master_request_us", labels, start);
    if out.is_err() {
        state.master.metrics().inc("master_request_failures_total", labels);
        if let (Some(s), Err(e)) = (span.as_mut(), &out) {
            s.annotate("error", e);
        }
    }
    out
}

fn dispatch_inner(state: &MasterState, req: MasterRequest) -> Result<MasterResponse> {
    use MasterRequest as Q;
    use MasterResponse as A;
    let master = &*state.master;
    Ok(match req {
        Q::Mkdir(path) => {
            master.mkdir(&path)?;
            A::Unit
        }
        Q::CreateFile(path, rv, bs, holder) => {
            A::Status(master.create_file_as(&path, rv, bs, ClientId(holder))?)
        }
        Q::AddBlock(path, len, client, holder, excluded) => {
            let (block, pipeline) =
                master.add_block_excluding(&path, len, client, ClientId(holder), &excluded)?;
            A::Allocated(block, pipeline)
        }
        Q::AbandonBlock(path, block, holder) => {
            master.abandon_block_as(&path, block, ClientId(holder))?;
            A::Unit
        }
        Q::ReassignBlock(path, block, client, holder, excluded) => {
            let pipeline =
                master.reassign_block_as(&path, block, client, ClientId(holder), &excluded)?;
            A::Allocated(block, pipeline)
        }
        Q::CommitReplica(block, loc) => {
            master.commit_replica(block, loc)?;
            A::Unit
        }
        Q::AbortReplica(block, loc) => {
            master.abort_replica(block, loc);
            A::Unit
        }
        Q::CompleteFile(path, holder) => {
            master.complete_file_as(&path, ClientId(holder))?;
            A::Unit
        }
        Q::AppendFile(path, holder) => A::Status(master.append_file_as(&path, ClientId(holder))?),
        Q::GetBlockLocations(path, start, len, client) => {
            A::Located(master.get_file_block_locations(&path, start, len, client)?)
        }
        Q::SetReplication(path, rv) => A::Vector(master.set_replication(&path, rv)?),
        Q::Delete(path, recursive) => A::Dropped(master.delete(&path, recursive)?),
        Q::Rename(src, dst) => {
            master.rename(&src, &dst)?;
            A::Unit
        }
        Q::List(path) => A::Entries(master.list(&path)?),
        Q::Status(path) => A::Status(master.status(&path)?),
        Q::TierReports => A::Reports(master.get_storage_tier_reports()),
        Q::RegisterWorker(worker, rack, net_bps, now_ms, addr) => {
            master.register_worker(worker, rack, net_bps, now_ms);
            state.addrs.write().insert(worker, addr);
            // A (re-)registration may carry a new address: drop the DNS
            // resolution cache so the monitor sees it next round.
            state.invalidate_resolved();
            A::Unit
        }
        Q::Heartbeat(worker, media, nr_conn, now_ms, touches) => {
            master.heartbeat_with_heat(worker, media, nr_conn, now_ms, &touches)?;
            master.tick(now_ms);
            A::Unit
        }
        Q::BlockReport(worker, blocks) => A::Invalidate(master.block_report(worker, &blocks)?),
        Q::ReportCorrupt(block, loc) => {
            master.report_corrupt(block, loc);
            A::Unit
        }
        Q::EditsSince(from) => {
            let ops = master.edits_since(from as usize);
            let mut buf = Vec::new();
            for op in &ops {
                let body = op.encode();
                buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
                buf.extend_from_slice(&octopus_common::checksum::crc32(&body).to_le_bytes());
                buf.extend_from_slice(&body);
            }
            A::Edits(bytes::Bytes::from(buf))
        }
        Q::WorkerAddresses => {
            A::Addresses(state.addrs.read().iter().map(|(w, a)| (*w, a.clone())).collect())
        }
        Q::Metrics => {
            master.stamp_scrape_metrics();
            A::Metrics(master.metrics().snapshot())
        }
        Q::Trace => A::Trace(master.trace().snapshot()),
        Q::Heat(path) => A::Heat(master.file_heat(&path)?),
        Q::ExplainPlacement(block) => A::Decisions(master.explain(block)),
        Q::ClusterStatus => A::ClusterStatus(master.cluster_status(10)),
        Q::HotFiles(k) => A::HotFiles(master.hot_files(k as usize)),
        Q::Series => A::Series(master.series_points()),
        Q::Migrations(n) => A::Decisions(master.recent_migrations(n as usize)),
    })
}
