//! The master's RPC server: a blocking, thread-per-connection loop that
//! dispatches [`MasterRequest`]s onto an [`octopus_master::Master`].

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use parking_lot::RwLock;

use octopus_common::trace::{self, TraceContext};
use octopus_common::wire::decode;
use octopus_common::{Result, WorkerId};
use octopus_master::{ClientId, Master};

use super::faults;
use super::frame::read_frame;
use super::proto::{encode_result, MasterRequest, MasterResponse};

/// Open connections, retained so shutdown can sever them.
type ConnSet = Arc<Mutex<Vec<TcpStream>>>;

/// Server-side state: the master plus the registry of worker data-server
/// addresses (populated by `RegisterWorker`, served by `WorkerAddresses`).
pub struct MasterState {
    /// The master.
    pub master: Arc<Master>,
    /// Worker data-server addresses.
    pub addrs: Arc<RwLock<HashMap<WorkerId, String>>>,
}

impl MasterState {
    /// Resolves the registered worker addresses to socket addresses.
    pub fn resolved_addrs(&self) -> super::monitor::Addrs {
        let mut out = HashMap::new();
        for (w, a) in self.addrs.read().iter() {
            if let Ok(mut it) = a.as_str().to_socket_addrs() {
                if let Some(sa) = it.next() {
                    out.insert(*w, sa);
                }
            }
        }
        out
    }
}

/// A running master RPC server.
pub struct MasterServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<MasterState>,
    conns: ConnSet,
    handle: Option<JoinHandle<()>>,
}

impl MasterServer {
    /// Binds to `127.0.0.1:0` and starts serving `master`.
    pub fn spawn(master: Arc<Master>) -> Result<Self> {
        Self::spawn_on(master, "127.0.0.1:0")
    }

    /// Binds to an explicit address (daemon deployments).
    pub fn spawn_on(master: Arc<Master>, bind: impl ToSocketAddrs) -> Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let state = Arc::new(MasterState { master, addrs: Arc::new(RwLock::new(HashMap::new())) });
        let loop_state = Arc::clone(&state);
        let conns: ConnSet = Arc::new(Mutex::new(Vec::new()));
        let conn_set = Arc::clone(&conns);
        let handle = std::thread::Builder::new()
            .name("octopus-master-rpc".into())
            .spawn(move || accept_loop(listener, addr, loop_state, flag, conn_set))
            .map_err(|e| octopus_common::FsError::Io(e.to_string()))?;
        Ok(Self { addr, shutdown, state, conns, handle: Some(handle) })
    }

    /// The server's shared state (master + worker-address registry).
    pub fn state(&self) -> &Arc<MasterState> {
        &self.state
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, joins the accept loop, and severs
    /// open connections so in-flight callers fail fast.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        for s in self.conns.lock().unwrap().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for MasterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    server_addr: SocketAddr,
    state: Arc<MasterState>,
    shutdown: Arc<AtomicBool>,
    conns: ConnSet,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(&state);
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    let mut set = conns.lock().unwrap();
                    if set.len() > 32 {
                        set.retain(|s| s.peer_addr().is_ok());
                    }
                    set.push(clone);
                }
                let _ = std::thread::Builder::new()
                    .name("octopus-master-conn".into())
                    .spawn(move || connection_loop(stream, server_addr, state));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(mut stream: TcpStream, server_addr: SocketAddr, state: Arc<MasterState>) {
    let _ = stream.set_nonblocking(false);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let result = trace::unwrap_envelope(&frame).and_then(|(ctx, body)| {
            decode::<MasterRequest>(body).and_then(|req| dispatch_traced(&state, req, ctx))
        });
        match faults::write_response(server_addr, &mut stream, &encode_result(&result)) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
    }
}

/// Maps one request onto the master API, recording per-request-type op
/// counts and latency into the master's registry.
pub fn dispatch(state: &MasterState, req: MasterRequest) -> Result<MasterResponse> {
    dispatch_traced(state, req, None)
}

/// [`dispatch`] continuing a propagated trace context: traced requests
/// record a `master.<Name>` span into the master's collector.
pub fn dispatch_traced(
    state: &MasterState,
    req: MasterRequest,
    ctx: Option<TraceContext>,
) -> Result<MasterResponse> {
    let mut span = ctx.map(|c| state.master.trace().child_of(format!("master.{}", req.name()), c));
    let labels = octopus_common::metrics::Labels::req(req.name());
    state.master.metrics().inc("master_requests_total", labels);
    let start = std::time::Instant::now();
    let out = dispatch_inner(state, req);
    state.master.metrics().observe_since("master_request_us", labels, start);
    if out.is_err() {
        state.master.metrics().inc("master_request_failures_total", labels);
        if let (Some(s), Err(e)) = (span.as_mut(), &out) {
            s.annotate("error", e);
        }
    }
    out
}

fn dispatch_inner(state: &MasterState, req: MasterRequest) -> Result<MasterResponse> {
    use MasterRequest as Q;
    use MasterResponse as A;
    let master = &*state.master;
    Ok(match req {
        Q::Mkdir(path) => {
            master.mkdir(&path)?;
            A::Unit
        }
        Q::CreateFile(path, rv, bs, holder) => {
            A::Status(master.create_file_as(&path, rv, bs, ClientId(holder))?)
        }
        Q::AddBlock(path, len, client, holder, excluded) => {
            let (block, pipeline) =
                master.add_block_excluding(&path, len, client, ClientId(holder), &excluded)?;
            A::Allocated(block, pipeline)
        }
        Q::AbandonBlock(path, block, holder) => {
            master.abandon_block_as(&path, block, ClientId(holder))?;
            A::Unit
        }
        Q::ReassignBlock(path, block, client, holder, excluded) => {
            let pipeline =
                master.reassign_block_as(&path, block, client, ClientId(holder), &excluded)?;
            A::Allocated(block, pipeline)
        }
        Q::CommitReplica(block, loc) => {
            master.commit_replica(block, loc)?;
            A::Unit
        }
        Q::AbortReplica(block, loc) => {
            master.abort_replica(block, loc);
            A::Unit
        }
        Q::CompleteFile(path, holder) => {
            master.complete_file_as(&path, ClientId(holder))?;
            A::Unit
        }
        Q::AppendFile(path, holder) => A::Status(master.append_file_as(&path, ClientId(holder))?),
        Q::GetBlockLocations(path, start, len, client) => {
            A::Located(master.get_file_block_locations(&path, start, len, client)?)
        }
        Q::SetReplication(path, rv) => A::Vector(master.set_replication(&path, rv)?),
        Q::Delete(path, recursive) => A::Dropped(master.delete(&path, recursive)?),
        Q::Rename(src, dst) => {
            master.rename(&src, &dst)?;
            A::Unit
        }
        Q::List(path) => A::Entries(master.list(&path)?),
        Q::Status(path) => A::Status(master.status(&path)?),
        Q::TierReports => A::Reports(master.get_storage_tier_reports()),
        Q::RegisterWorker(worker, rack, net_bps, now_ms, addr) => {
            master.register_worker(worker, rack, net_bps, now_ms);
            state.addrs.write().insert(worker, addr);
            A::Unit
        }
        Q::Heartbeat(worker, media, nr_conn, now_ms) => {
            master.heartbeat(worker, media, nr_conn, now_ms)?;
            master.tick(now_ms);
            A::Unit
        }
        Q::BlockReport(worker, blocks) => A::Invalidate(master.block_report(worker, &blocks)?),
        Q::ReportCorrupt(block, loc) => {
            master.report_corrupt(block, loc);
            A::Unit
        }
        Q::EditsSince(from) => {
            let ops = master.edits_since(from as usize);
            let mut buf = Vec::new();
            for op in &ops {
                let body = op.encode();
                buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
                buf.extend_from_slice(&octopus_common::checksum::crc32(&body).to_le_bytes());
                buf.extend_from_slice(&body);
            }
            A::Edits(bytes::Bytes::from(buf))
        }
        Q::WorkerAddresses => {
            A::Addresses(state.addrs.read().iter().map(|(w, a)| (*w, a.clone())).collect())
        }
        Q::Metrics => A::Metrics(master.metrics().snapshot()),
        Q::Trace => A::Trace(master.trace().snapshot()),
    })
}
