//! Message framing over a TCP stream.
//!
//! Two formats live here:
//!
//! - The legacy `[u32 len][payload]` frame ([`write_frame`]/
//!   [`read_frame`]), still used by tests and tools that speak to a raw
//!   socket.
//! - The multiplexed `[u32 len][u64 request_id][payload]` frame
//!   ([`write_mux_frame`]/[`read_mux_frame`]) every RPC now travels in.
//!   The id lets any number of in-flight calls share one connection:
//!   responses carry the id of the request they answer, in whatever order
//!   the server finishes them.
//!
//! [`write_mux_frame`] takes the payload as a list of segments and writes
//! them with at most one small staging copy: large segments (block
//! payloads handed around as [`bytes::Bytes`]) are written straight from
//! their backing buffer, so framing never copies a block.

use std::io::{Read, Write};

use octopus_common::{FsError, Result};

/// Upper bound on a single frame: one block (≤1 GiB here) plus headroom.
/// Protects servers from hostile or corrupt length prefixes.
pub const MAX_FRAME: usize = (1 << 30) + (1 << 20);

/// Bytes of the request id inside a mux frame (counted by the length
/// prefix, ahead of the payload).
pub const MUX_ID_LEN: usize = 8;

/// Segments at or below this size are coalesced into the header write;
/// larger ones go to the socket directly from their own buffer.
const COALESCE_LIMIT: usize = 16 * 1024;

/// Writes one `[u32 len][payload]` frame (legacy, unmultiplexed).
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(FsError::Io(format!("frame of {} bytes exceeds cap", payload.len())));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one legacy frame. Returns `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FsError::Io(format!("incoming frame of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one `[u32 len][u64 id][payload]` frame, where the payload is
/// the concatenation of `segs`. `len` counts the id plus the payload.
/// Small segments are staged together with the header into one write;
/// large segments are written directly (zero-copy from the caller's
/// buffers).
pub fn write_mux_frame(stream: &mut impl Write, id: u64, segs: &[&[u8]]) -> Result<()> {
    let payload_len: usize = segs.iter().map(|s| s.len()).sum();
    if payload_len > MAX_FRAME - MUX_ID_LEN {
        return Err(FsError::Io(format!("frame of {payload_len} bytes exceeds cap")));
    }
    let mut staged = Vec::with_capacity(
        12 + segs.iter().map(|s| s.len().min(COALESCE_LIMIT)).sum::<usize>().min(64 * 1024),
    );
    staged.extend_from_slice(&((payload_len + MUX_ID_LEN) as u32).to_le_bytes());
    staged.extend_from_slice(&id.to_le_bytes());
    for seg in segs {
        if seg.len() <= COALESCE_LIMIT && staged.len() + seg.len() <= 64 * 1024 {
            staged.extend_from_slice(seg);
        } else {
            stream.write_all(&staged)?;
            staged.clear();
            stream.write_all(seg)?;
        }
    }
    if !staged.is_empty() {
        stream.write_all(&staged)?;
    }
    stream.flush()?;
    Ok(())
}

/// Reads one mux frame, returning `(request_id, payload)`. Returns `None`
/// on clean EOF at a frame boundary.
pub fn read_mux_frame(stream: &mut impl Read) -> Result<Option<(u64, Vec<u8>)>> {
    let mut head = [0u8; 4 + MUX_ID_LEN];
    let mut got = 0;
    while got < head.len() {
        match stream.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FsError::Io("EOF inside mux frame header".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    if len < MUX_ID_LEN {
        return Err(FsError::Io(format!("mux frame length {len} shorter than its id")));
    }
    if len > MAX_FRAME {
        return Err(FsError::Io(format!("incoming frame of {len} bytes exceeds cap")));
    }
    let id = u64::from_le_bytes(head[4..].try_into().unwrap());
    let mut payload = vec![0u8; len - MUX_ID_LEN];
    stream.read_exact(&mut payload)?;
    Ok(Some((id, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut cur).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn truncated_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut cur = Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut cur).is_err());
        let mut mux = Vec::new();
        mux.extend_from_slice(&u32::MAX.to_le_bytes());
        mux.extend_from_slice(&1u64.to_le_bytes());
        assert!(read_mux_frame(&mut Cursor::new(mux)).is_err());
    }

    #[test]
    fn round_trip_mux_frames() {
        let big = vec![9u8; 100_000];
        let mut buf = Vec::new();
        write_mux_frame(&mut buf, 7, &[b"head", &big, b"tail"]).unwrap();
        write_mux_frame(&mut buf, u64::MAX, &[]).unwrap();
        write_mux_frame(&mut buf, 0, &[b"x"]).unwrap();
        let mut cur = Cursor::new(buf);
        let (id, payload) = read_mux_frame(&mut cur).unwrap().unwrap();
        assert_eq!(id, 7);
        assert_eq!(payload.len(), 4 + big.len() + 4);
        assert_eq!(&payload[..4], b"head");
        assert_eq!(&payload[4..4 + big.len()], &big[..]);
        assert_eq!(&payload[4 + big.len()..], b"tail");
        let (id, payload) = read_mux_frame(&mut cur).unwrap().unwrap();
        assert_eq!((id, payload.len()), (u64::MAX, 0));
        let (id, payload) = read_mux_frame(&mut cur).unwrap().unwrap();
        assert_eq!((id, payload), (0, b"x".to_vec()));
        assert!(read_mux_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn mux_frame_shorter_than_id_rejected() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u32.to_le_bytes()); // < MUX_ID_LEN
        bad.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_mux_frame(&mut Cursor::new(bad)).is_err());
    }
}
