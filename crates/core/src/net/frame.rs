//! Length-prefixed message framing over a TCP stream.

use std::io::{Read, Write};

use octopus_common::{FsError, Result};

/// Upper bound on a single frame: one block (≤1 GiB here) plus headroom.
/// Protects servers from hostile or corrupt length prefixes.
pub const MAX_FRAME: usize = (1 << 30) + (1 << 20);

/// Writes one `[u32 len][payload]` frame.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(FsError::Io(format!("frame of {} bytes exceeds cap", payload.len())));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one frame. Returns `None` on clean EOF at a frame boundary.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FsError::Io(format!("incoming frame of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut cur).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn truncated_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut cur = Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut cur).is_err());
    }
}
