//! [`ServerCore`]: the shared multiplexed RPC server engine behind the
//! master and worker servers.
//!
//! The first networked implementation spawned one OS thread per accepted
//! connection and served its frames sequentially. This core replaces that
//! with:
//!
//! - **Bounded accept** — at most [`ServerConfig::max_connections`]
//!   concurrent connections; surplus connects are refused (closed) instead
//!   of spawning unbounded threads.
//! - **A demux reader per connection** feeding a **shared dispatch pool**
//!   of [`ServerConfig::dispatch_threads`] threads, so many requests from
//!   one connection execute concurrently and a slow request does not
//!   head-of-line-block the rest of its connection.
//! - **Class-based pool admission** to keep nested RPCs deadlock-free:
//!   jobs are classed by how many further RPC levels serving them can
//!   require (pipeline forwards). With `T` threads and a reserve
//!   `R = max(1, T/4)`, class-1 jobs are admitted only while
//!   `active₁+active₂ < T−R` and class-2 jobs only while `active₂ < T−2R`,
//!   so leaf work (class 0) always finds a thread somewhere and every
//!   blocked forward eventually completes bottom-up.
//! - **Per-connection in-flight caps** — a reader stops pulling frames
//!   once [`ServerConfig::max_inflight_per_conn`] of its requests are
//!   outstanding, pushing backpressure into the client's TCP window
//!   instead of the dispatch queue.
//! - **Idle-connection reaping** — connections with no in-flight requests
//!   and no traffic for [`ServerConfig::idle_conn_ms`] are severed, so
//!   silent clients cannot pin server resources forever.
//!
//! Connection tracking (`track`/`sever`) lives here once, shared by both
//! servers, instead of being copy-pasted per server.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use octopus_common::{log_warn, FsError, Result, ServerConfig};

use super::faults;
use super::frame::read_mux_frame;
use super::proto::FramePayload;

/// Maps one received request payload (possibly trace-enveloped) to its
/// response payload. Runs on a dispatch-pool thread.
pub type Handler = Arc<dyn Fn(bytes::Bytes) -> FramePayload + Send + Sync>;

/// Returns the dispatch class (0–2) of an encoded request body (the bytes
/// after any trace envelope): the number of further nested RPC levels
/// serving it can require, capped at 2.
pub type Classifier = Arc<dyn Fn(&[u8]) -> usize + Send + Sync>;

/// Dispatch classes tracked by the pool.
const CLASSES: usize = 3;

/// One tracked connection.
struct Conn {
    /// Spare handle for severing without waiting on the writer lock.
    stream: TcpStream,
    /// Serializes response frames from concurrent pool threads.
    writer: Mutex<TcpStream>,
    /// Requests read off this connection and not yet responded to.
    inflight: Mutex<u32>,
    inflight_cv: Condvar,
    /// Last frame read or response written (drives idle reaping).
    last_active: Mutex<Instant>,
}

impl Conn {
    fn touch(&self) {
        *self.last_active.lock().unwrap() = Instant::now();
    }

    fn sever(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// One dispatched request.
struct Job {
    conn_id: u64,
    conn: Arc<Conn>,
    request_id: u64,
    frame: bytes::Bytes,
    class: usize,
}

struct PoolState {
    queue: VecDeque<Job>,
    active: [usize; CLASSES],
    stopped: bool,
}

struct Shared {
    cfg: ServerConfig,
    server_addr: SocketAddr,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_conn: AtomicU64,
    pool: Mutex<PoolState>,
    pool_cv: Condvar,
    shutdown: AtomicBool,
    handler: Handler,
    classify: Classifier,
}

impl Shared {
    /// Whether a job of `class` may start given the running mix: reserve
    /// `R` threads from class-1+ and `2R` from class-2, so lower classes
    /// always retain capacity and nested forwards cannot mutually starve.
    fn admissible(&self, class: usize, active: &[usize; CLASSES]) -> bool {
        let t = self.cfg.dispatch_threads.max(1) as usize;
        let r = (t / 4).max(1);
        match class {
            0 => true,
            1 => active[1] + active[2] < t.saturating_sub(r).max(1),
            _ => active[2] < t.saturating_sub(2 * r).max(1),
        }
    }

    fn untrack(&self, conn_id: u64) {
        self.conns.lock().unwrap().remove(&conn_id);
    }

    fn sever_all(&self) {
        for conn in self.conns.lock().unwrap().values() {
            conn.sever();
        }
    }
}

/// A running multiplexed RPC server engine.
pub struct ServerCore {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl ServerCore {
    /// Binds, starts the accept loop, the dispatch pool, and the idle
    /// reaper. `name` prefixes thread names.
    pub fn spawn(
        bind: impl ToSocketAddrs,
        name: &str,
        cfg: ServerConfig,
        classify: Classifier,
        handler: Handler,
    ) -> Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            cfg,
            server_addr: addr,
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
            pool: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: [0; CLASSES],
                stopped: false,
            }),
            pool_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            handler,
            classify,
        });
        for i in 0..shared.cfg.dispatch_threads.max(1) {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{name}-pool-{i}"))
                .spawn(move || pool_loop(s))
                .map_err(|e| FsError::Io(e.to_string()))?;
        }
        let accept = {
            let s = Arc::clone(&shared);
            let name = name.to_string();
            std::thread::Builder::new()
                .name(format!("{name}-accept"))
                .spawn(move || accept_loop(listener, s, name))
                .map_err(|e| FsError::Io(e.to_string()))?
        };
        let reaper = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{name}-reaper"))
                .spawn(move || reaper_loop(s))
                .map_err(|e| FsError::Io(e.to_string()))?
        };
        Ok(Self { addr, shared, accept: Some(accept), reaper: Some(reaper) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently tracked connections (tests, diagnostics).
    pub fn conn_count(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// Stops the server: the accept loop and reaper exit, every tracked
    /// connection is severed (in-flight callers fail fast instead of
    /// hanging), and the dispatch pool drains out.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        self.shared.sever_all();
        let mut pool = self.shared.pool.lock().unwrap();
        pool.stopped = true;
        pool.queue.clear();
        drop(pool);
        self.shared.pool_cv.notify_all();
        // Pool threads are not joined: one may be blocked inside a nested
        // RPC bounded by its own deadlines; it observes `stopped` and
        // exits on its own.
    }
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, name: String) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Bounded accept: refuse (close) connections over the cap
                // instead of growing without bound.
                if shared.conns.lock().unwrap().len() >= shared.cfg.max_connections.max(1) as usize
                {
                    log_warn!(
                        target: "net::server",
                        "msg=\"connection limit reached, refusing\" limit={}",
                        shared.cfg.max_connections
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let (Ok(writer), Ok(spare)) = (stream.try_clone(), stream.try_clone()) else {
                    continue;
                };
                let conn = Arc::new(Conn {
                    stream: spare,
                    writer: Mutex::new(writer),
                    inflight: Mutex::new(0),
                    inflight_cv: Condvar::new(),
                    last_active: Mutex::new(Instant::now()),
                });
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                shared.conns.lock().unwrap().insert(conn_id, Arc::clone(&conn));
                let s = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("{name}-conn"))
                    .spawn(move || conn_reader(stream, conn_id, conn, s));
                if spawned.is_err() {
                    shared.untrack(conn_id);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads frames off one connection and enqueues them for dispatch,
/// honoring the per-connection in-flight cap.
fn conn_reader(mut stream: TcpStream, conn_id: u64, conn: Arc<Conn>, shared: Arc<Shared>) {
    let _ = stream.set_nonblocking(false);
    let cap = shared.cfg.max_inflight_per_conn.max(1);
    while let Ok(Some(frame)) = read_mux_frame(&mut stream) {
        conn.touch();
        // Backpressure: stop pulling frames while this connection has a
        // full window in flight. The client's sends then queue in TCP.
        {
            let mut n = conn.inflight.lock().unwrap();
            while *n >= cap && !shared.shutdown.load(Ordering::Acquire) {
                let (guard, _) =
                    conn.inflight_cv.wait_timeout(n, Duration::from_millis(100)).unwrap();
                n = guard;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            *n += 1;
        }
        let (request_id, payload) = frame;
        let frame = bytes::Bytes::from(payload);
        // The trace envelope (if any) is 19 bytes; classification looks at
        // the request body behind it.
        let body_at = if frame.first() == Some(&octopus_common::trace::ENVELOPE_MAGIC) {
            19.min(frame.len())
        } else {
            0
        };
        let class = (shared.classify)(&frame[body_at..]).min(CLASSES - 1);
        let job = Job { conn_id, conn: Arc::clone(&conn), request_id, frame, class };
        let mut pool = shared.pool.lock().unwrap();
        if pool.stopped {
            break;
        }
        pool.queue.push_back(job);
        drop(pool);
        shared.pool_cv.notify_all();
    }
    shared.untrack(conn_id);
    conn.sever();
}

/// One dispatch-pool thread: admit the first eligible job, run the
/// handler, write the response, release the connection window.
fn pool_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut pool = shared.pool.lock().unwrap();
            loop {
                if pool.stopped {
                    return;
                }
                let slot = {
                    let active = pool.active;
                    pool.queue.iter().position(|j| shared.admissible(j.class, &active))
                };
                if let Some(i) = slot {
                    let job = pool.queue.remove(i).expect("job index valid under lock");
                    pool.active[job.class] += 1;
                    break job;
                }
                pool = shared.pool_cv.wait(pool).unwrap();
            }
        };

        let response = (shared.handler)(job.frame);
        let alive = {
            let mut w = job.conn.writer.lock().unwrap();
            faults::write_response(shared.server_addr, &mut w, job.request_id, &response)
        };
        job.conn.touch();
        if !matches!(alive, Ok(true)) {
            // The connection was consumed (fault) or the peer is gone;
            // sever so the reader stops feeding it.
            job.conn.sever();
            shared.untrack(job.conn_id);
        }
        {
            let mut n = job.conn.inflight.lock().unwrap();
            *n = n.saturating_sub(1);
            job.conn.inflight_cv.notify_one();
        }
        let mut pool = shared.pool.lock().unwrap();
        pool.active[job.class] -= 1;
        drop(pool);
        shared.pool_cv.notify_all();
    }
}

/// Severs connections that have been idle (no in-flight requests, no
/// traffic) past the configured horizon.
fn reaper_loop(shared: Arc<Shared>) {
    let idle = Duration::from_millis(shared.cfg.idle_conn_ms.max(1));
    let interval = Duration::from_millis(shared.cfg.reap_interval_ms.max(1));
    while !shared.shutdown.load(Ordering::Acquire) {
        // Sleep the interval in short slices so shutdown joins promptly.
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !shared.shutdown.load(Ordering::Acquire) {
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(25)));
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let victims: Vec<Arc<Conn>> = {
            let conns = shared.conns.lock().unwrap();
            conns
                .values()
                .filter(|c| {
                    *c.inflight.lock().unwrap() == 0
                        && c.last_active.lock().unwrap().elapsed() > idle
                })
                .map(Arc::clone)
                .collect()
        };
        for conn in victims {
            // Severing wakes the reader, which untracks the connection.
            conn.sever();
        }
    }
}
