//! A networked backup master (paper §2.1): tails the primary's edit log
//! over RPC on a background thread, maintains an up-to-date namespace
//! image, and can produce checkpoints or take over as primary.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use octopus_common::{ClusterConfig, FsError, Result};
use octopus_master::editlog::decode_stream;
use octopus_master::{BackupMaster, Master};

use super::proto::{MasterRequest, MasterResponse};
use super::worker_server::call_master;

/// A backup master tailing a remote primary.
pub struct NetBackup {
    inner: Arc<Mutex<BackupMaster>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl NetBackup {
    /// Starts tailing `primary` every `interval_ms` milliseconds.
    pub fn start(primary: SocketAddr, interval_ms: u64) -> Result<Self> {
        let inner = Arc::new(Mutex::new(BackupMaster::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let tail_inner = Arc::clone(&inner);
        let tail_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("octopus-backup-tail".into())
            .spawn(move || {
                while !tail_stop.load(Ordering::Relaxed) {
                    let _ = Self::sync_once(&tail_inner, primary);
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                }
            })
            .map_err(|e| FsError::Io(e.to_string()))?;
        Ok(Self { inner, stop, handle: Some(handle) })
    }

    /// Pulls and applies the primary's edit-log tail once. Returns the
    /// number of ops applied.
    pub fn sync_once(inner: &Mutex<BackupMaster>, primary: SocketAddr) -> Result<usize> {
        let mut guard = inner.lock();
        let from = guard.applied() as u64;
        match call_master(primary, &MasterRequest::EditsSince(from))? {
            MasterResponse::Edits(buf) => {
                let ops = decode_stream(&buf)?;
                let n = ops.len();
                for op in ops {
                    guard.apply(op)?;
                }
                Ok(n)
            }
            r => Err(FsError::Io(format!("unexpected response {r:?}"))),
        }
    }

    /// Forces a synchronous catch-up (tests, pre-checkpoint).
    pub fn sync_now(&self, primary: SocketAddr) -> Result<usize> {
        Self::sync_once(&self.inner, primary)
    }

    /// Number of ops applied so far.
    pub fn applied(&self) -> usize {
        self.inner.lock().applied()
    }

    /// Creates a checkpoint of the mirrored namespace.
    pub fn checkpoint(&self) -> Vec<u8> {
        self.inner.lock().create_checkpoint()
    }

    /// Fails over: builds a new primary [`Master`] from the current image
    /// (block locations repopulate from block reports, and the new master
    /// starts in safe mode when blocks exist).
    pub fn take_over(&self, config: ClusterConfig) -> Result<Master> {
        self.inner.lock().take_over(config)
    }

    /// Stops the tailing thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetBackup {
    fn drop(&mut self) {
        self.stop();
    }
}
