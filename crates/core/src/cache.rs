//! Multi-level cache management over OctopusFS (paper §6).
//!
//! The paper's point: because replication vectors expose tier placement,
//! "an entity that sits on top of OctopusFS can control the number and
//! placement of replicas in the various storage tiers" — i.e. a cache
//! manager needs no file-system changes at all. [`CacheManager`] is that
//! entity: it watches file accesses, promotes hot files into the Memory
//! tier by *adding* a memory replica (`setReplication`), and demotes the
//! least-recently-used files when its memory budget fills.
//!
//! Promotion is scan-resistant: a file must be accessed
//! `promote_after` times before it is cached, so one-off scans do not
//! evict the working set.

use std::collections::HashMap;

use octopus_common::metrics::{Labels, MetricsRegistry};
use octopus_common::trace::TraceCollector;
use octopus_common::{FsError, ReplicationVector, Result, StorageTier};

use crate::client::Client;

/// What the manager did in response to an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheAction {
    /// A memory replica was requested for the path.
    Promoted(String),
    /// The path's memory replica was dropped to free budget.
    Evicted(String),
}

struct Entry {
    accesses: u64,
    last_access: u64,
    bytes: u64,
    /// Bytes this entry currently holds of the budget (0 when not
    /// cached). Tracked separately from `bytes`, which is refreshed to
    /// the file's current length on every access: eviction must release
    /// exactly what promotion charged, or a file that grew while cached
    /// would release more than it took and corrupt `used`.
    charged: u64,
    cached: bool,
}

/// An LRU cache manager for the Memory tier.
///
/// ```
/// use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector};
/// use octopus_core::{CacheAction, CacheManager, Cluster};
///
/// let cluster = Cluster::start(ClusterConfig::test_cluster(4, 32 << 20, 1 << 20)).unwrap();
/// let client = cluster.client(ClientLocation::OffCluster);
/// client.write_file("/hot", &[7u8; 4096], ReplicationVector::msh(0, 0, 2)).unwrap();
///
/// let mut cache = CacheManager::new(client, 1 << 20, 2);
/// assert!(cache.on_access("/hot").unwrap().is_empty());       // 1st touch
/// let actions = cache.on_access("/hot").unwrap();             // 2nd: promote
/// assert_eq!(actions, vec![CacheAction::Promoted("/hot".into())]);
/// cluster.run_replication_round().unwrap();                   // realize (§5)
/// ```
pub struct CacheManager {
    client: Client,
    budget: u64,
    promote_after: u64,
    used: u64,
    tick: u64,
    entries: HashMap<String, Entry>,
    metrics: MetricsRegistry,
    trace: TraceCollector,
}

impl CacheManager {
    /// Creates a manager with a memory budget in bytes. Files are promoted
    /// after `promote_after` accesses (≥1).
    pub fn new(client: Client, budget: u64, promote_after: u64) -> Self {
        Self {
            client,
            budget,
            promote_after: promote_after.max(1),
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            metrics: MetricsRegistry::new(),
            trace: TraceCollector::new("cache"),
        }
    }

    /// This manager's trace collector (`cache.promote` / `cache.evict`
    /// spans, stitched under the triggering access when one is traced).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// This manager's metrics (`cache_promotions_total`,
    /// `cache_evictions_total`, `cache_used_bytes`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Bytes of memory-tier budget currently committed.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Paths currently cached (unordered).
    pub fn cached(&self) -> Vec<String> {
        self.entries.iter().filter(|(_, e)| e.cached).map(|(p, _)| p.clone()).collect()
    }

    /// Records an access to `path`, promoting/evicting as needed. The
    /// returned actions have been *requested* through `setReplication`;
    /// the replication monitor realizes them asynchronously (§5).
    pub fn on_access(&mut self, path: &str) -> Result<Vec<CacheAction>> {
        self.tick += 1;
        let status = self.client.status(path)?;
        if status.is_dir {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        let tick = self.tick;
        let e = self.entries.entry(path.to_string()).or_insert(Entry {
            accesses: 0,
            last_access: 0,
            bytes: status.len,
            charged: 0,
            cached: false,
        });
        e.accesses += 1;
        e.last_access = tick;
        e.bytes = status.len;
        if e.cached && e.charged != e.bytes {
            // The file changed size while cached (e.g. an append): move
            // the charge to the current length so the budget stays honest.
            self.used = self.used.saturating_sub(e.charged).saturating_add(e.bytes);
            e.charged = e.bytes;
            self.metrics.gauge("cache_used_bytes", Labels::NONE).set(self.used as i64);
        }
        let wants_promotion = !e.cached && e.accesses >= self.promote_after;
        if !wants_promotion {
            return Ok(Vec::new());
        }
        if status.len > self.budget {
            return Ok(Vec::new()); // larger than the whole cache
        }

        let mut actions = Vec::new();
        // Evict LRU entries until the file fits.
        while self.used + status.len > self.budget {
            let Some(victim) = self
                .entries
                .iter()
                .filter(|(_, e)| e.cached)
                .min_by_key(|(_, e)| e.last_access)
                .map(|(p, _)| p.clone())
            else {
                break;
            };
            self.evict(&victim)?;
            actions.push(CacheAction::Evicted(victim));
        }
        if self.used + status.len <= self.budget {
            self.promote(path)?;
            actions.push(CacheAction::Promoted(path.to_string()));
        }
        Ok(actions)
    }

    /// Drops everything from the cache.
    pub fn clear(&mut self) -> Result<Vec<CacheAction>> {
        let cached = self.cached();
        let mut actions = Vec::new();
        for p in cached {
            self.evict(&p)?;
            actions.push(CacheAction::Evicted(p));
        }
        Ok(actions)
    }

    fn promote(&mut self, path: &str) -> Result<()> {
        let mut span = self.trace.root_or_child("cache.promote");
        span.annotate("path", path);
        let mem = StorageTier::Memory.id();
        let status = self.client.status(path)?;
        span.annotate("bytes", status.len);
        let rv = status.rv;
        if rv.tier(mem) == 0 {
            self.client.set_replication(path, rv.with_tier(mem, 1))?;
        }
        if let Some(e) = self.entries.get_mut(path) {
            e.cached = true;
            e.charged = e.bytes;
            self.used += e.charged;
        }
        self.metrics.inc("cache_promotions_total", Labels::NONE);
        self.metrics.gauge("cache_used_bytes", Labels::NONE).set(self.used as i64);
        Ok(())
    }

    fn evict(&mut self, path: &str) -> Result<()> {
        let mut span = self.trace.root_or_child("cache.evict");
        span.annotate("path", path);
        let mem = StorageTier::Memory.id();
        match self.client.status(path) {
            Ok(status) if status.rv.tier(mem) > 0 => {
                // Drop the memory pin; keep everything else. Ensure the
                // file retains at least one replica elsewhere.
                let mut rv = status.rv.with_tier(mem, 0);
                if rv.total() == 0 {
                    rv = ReplicationVector::from_replication_factor(1);
                }
                self.client.set_replication(path, rv)?;
            }
            _ => {} // deleted or already demoted: just release budget
        }
        if let Some(e) = self.entries.get_mut(path) {
            if e.cached {
                e.cached = false;
                self.used = self.used.saturating_sub(e.charged);
                e.charged = 0;
            }
        }
        self.metrics.inc("cache_evictions_total", Labels::NONE);
        self.metrics.gauge("cache_used_bytes", Labels::NONE).set(self.used as i64);
        Ok(())
    }
}
