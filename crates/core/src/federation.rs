//! Namespace federation (paper §2.1): multiple independent primary
//! masters, each owning one namespace *volume*, sharing the same worker
//! fleet — the HDFS-federation model the paper adopts to "scale the name
//! service horizontally".
//!
//! A [`FederatedClient`] routes each path to the master owning the
//! longest-matching volume prefix; each master issues block ids from a
//! disjoint range (a "block pool"), so blocks from different volumes
//! coexist on the shared workers without collision.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use octopus_common::{
    ClientLocation, ClusterConfig, FsError, LocatedBlock, ReplicationVector, Result,
    StorageTierReport,
};
use octopus_master::Master;

use crate::client::Client;
use crate::cluster::{build_workers_for, DataPlane, StorageMode};
use crate::worker::Worker;

/// Size of each master's private block-id range.
const BLOCK_POOL_SPAN: u64 = 1 << 40;

/// A federated deployment: one worker fleet, several masters.
///
/// ```
/// use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector};
/// use octopus_core::Federation;
///
/// let config = ClusterConfig::test_cluster(4, 32 << 20, 1 << 20);
/// let fed = Federation::start(config, &["/users", "/data"]).unwrap();
/// let client = fed.client(ClientLocation::OffCluster);
/// client.write_file("/users/alice", b"hi",
///                   ReplicationVector::from_replication_factor(2)).unwrap();
/// assert_eq!(client.read_file("/users/alice").unwrap(), b"hi");
/// // Each master owns only its own volume.
/// assert!(fed.route("/users/alice").unwrap().status("/data").is_err());
/// ```
pub struct Federation {
    volumes: Vec<(String, Arc<Master>)>,
    plane: Arc<DataPlane>,
    clock_ms: AtomicU64,
    heartbeat_ms: u64,
}

impl Federation {
    /// Starts a federation with one master per volume prefix (e.g.
    /// `["/users", "/data"]`). Prefixes must be absolute, non-`/`, and
    /// non-overlapping.
    pub fn start(config: ClusterConfig, volumes: &[&str]) -> Result<Self> {
        config.validate()?;
        if volumes.is_empty() {
            return Err(FsError::Config("a federation needs at least one volume".into()));
        }
        for (i, v) in volumes.iter().enumerate() {
            if !v.starts_with('/') || *v == "/" {
                return Err(FsError::Config(format!("bad volume prefix {v:?}")));
            }
            for other in &volumes[..i] {
                if v.starts_with(&format!("{other}/"))
                    || other.starts_with(&format!("{v}/"))
                    || v == other
                {
                    return Err(FsError::Config(format!("volume {v:?} overlaps {other:?}")));
                }
            }
        }
        let workers = build_workers_for(&config, &StorageMode::InMemory)?;
        let plane = Arc::new(DataPlane { workers, dead: RwLock::new(HashSet::new()) });
        let heartbeat_ms = config.heartbeat_ms;
        let mut vols = Vec::with_capacity(volumes.len());
        for (i, v) in volumes.iter().enumerate() {
            let master = Arc::new(Master::new(config.clone())?);
            master.reserve_block_id_space((i as u64) * BLOCK_POOL_SPAN);
            // Each master owns (and pre-creates) its volume root.
            master.mkdir(v)?;
            for w in &plane.workers {
                master.register_worker(w.id(), w.rack(), w.net_bps(), 0);
            }
            vols.push((v.to_string(), master));
        }
        let fed = Self { volumes: vols, plane, clock_ms: AtomicU64::new(0), heartbeat_ms };
        fed.pump_heartbeats();
        Ok(fed)
    }

    /// The master owning `path`'s volume.
    pub fn route(&self, path: &str) -> Result<&Arc<Master>> {
        self.volumes
            .iter()
            .find(|(prefix, _)| path == prefix || path.starts_with(&format!("{prefix}/")))
            .map(|(_, m)| m)
            .ok_or_else(|| FsError::NotFound(format!("no federation volume owns {path}")))
    }

    /// All volumes as `(prefix, master)`.
    pub fn volumes(&self) -> &[(String, Arc<Master>)] {
        &self.volumes
    }

    /// The shared workers.
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.plane.workers
    }

    /// Delivers heartbeats from every worker to every master.
    pub fn pump_heartbeats(&self) {
        let now = self.clock_ms.fetch_add(self.heartbeat_ms, Ordering::Relaxed) + self.heartbeat_ms;
        for (_, master) in &self.volumes {
            for w in &self.plane.workers {
                let (stats, conns) = w.heartbeat_stats();
                let _ = master.heartbeat(w.id(), stats, conns, now);
            }
            master.tick(now);
        }
    }

    /// Runs one replication round for every volume's master, executing
    /// tasks against the shared worker fleet. Returns the total number of
    /// tasks executed.
    pub fn run_replication_round(&self) -> Result<usize> {
        let mut total = 0;
        for (_, master) in &self.volumes {
            total += crate::cluster::execute_replication_tasks(master, &self.plane)?;
        }
        self.pump_heartbeats();
        Ok(total)
    }

    /// A client that routes across all volumes.
    pub fn client(&self, location: ClientLocation) -> FederatedClient {
        FederatedClient {
            volumes: self
                .volumes
                .iter()
                .map(|(prefix, master)| {
                    (
                        prefix.clone(),
                        Client::new(Arc::clone(master), Arc::clone(&self.plane), location),
                    )
                })
                .collect(),
        }
    }
}

/// A client-side router over the federation's volumes (the viewfs role).
pub struct FederatedClient {
    volumes: Vec<(String, Client)>,
}

impl FederatedClient {
    fn route(&self, path: &str) -> Result<&Client> {
        self.volumes
            .iter()
            .find(|(prefix, _)| path == prefix || path.starts_with(&format!("{prefix}/")))
            .map(|(_, c)| c)
            .ok_or_else(|| FsError::NotFound(format!("no federation volume owns {path}")))
    }

    /// Creates a directory in the owning volume.
    pub fn mkdir(&self, path: &str) -> Result<()> {
        self.route(path)?.mkdir(path)
    }

    /// Writes a file into the owning volume.
    pub fn write_file(&self, path: &str, data: &[u8], rv: ReplicationVector) -> Result<()> {
        self.route(path)?.write_file(path, data, rv)
    }

    /// Reads a file from the owning volume.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        self.route(path)?.read_file(path)
    }

    /// Deletes a path in the owning volume.
    pub fn delete(&self, path: &str, recursive: bool) -> Result<()> {
        self.route(path)?.delete(path, recursive)
    }

    /// Block locations from the owning volume's master.
    pub fn get_file_block_locations(
        &self,
        path: &str,
        start: u64,
        len: u64,
    ) -> Result<Vec<LocatedBlock>> {
        self.route(path)?.get_file_block_locations(path, start, len)
    }

    /// Sets the replication vector in the owning volume.
    pub fn set_replication(&self, path: &str, rv: ReplicationVector) -> Result<ReplicationVector> {
        self.route(path)?.set_replication(path, rv)
    }

    /// Tier reports (identical across volumes — the workers are shared;
    /// served by the first volume's master).
    pub fn get_storage_tier_reports(&self) -> Vec<StorageTierReport> {
        self.volumes.first().map(|(_, c)| c.get_storage_tier_reports()).unwrap_or_default()
    }

    /// Renames within one volume (cross-volume renames are rejected, as
    /// in HDFS federation).
    pub fn rename(&self, src: &str, dst: &str) -> Result<()> {
        let sc = self.route(src)?;
        let dc = self.route(dst)?;
        if !std::ptr::eq(sc, dc) {
            return Err(FsError::InvalidArgument(
                "rename across federation volumes is not supported".into(),
            ));
        }
        sc.rename(src, dst)
    }
}
