//! The in-process OctopusFS cluster: a master plus workers with real
//! storage, wired together exactly as the networked deployment would be
//! (heartbeats, block reports, replication tasks), but over function calls.

use parking_lot::RwLock;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use octopus_common::{
    ClientLocation, ClusterConfig, FsError, MediaId, RackId, Result, TierId, WorkerId,
};
use octopus_master::{AutoTierConfig, Master, MigrationDecision, ReplicationTask};
use octopus_policies::TierClassifier;
use octopus_storage::{BlockStore, FileStore, Media, MemoryStore, SimStore};

use crate::client::Client;
use crate::worker::Worker;

/// How workers back their storage media.
#[derive(Debug, Clone)]
pub enum StorageMode {
    /// Every medium is heap-backed (fast; default for tests/examples).
    InMemory,
    /// Volatile tiers are heap-backed; persistent tiers are directories
    /// under the given root (`<root>/worker_<w>/media_<m>/`).
    OnDisk(PathBuf),
    /// Metadata-only stores (for harnesses that never read payloads).
    Simulated,
}

/// Shared data-plane state the [`Client`] uses to reach workers.
pub(crate) struct DataPlane {
    pub(crate) workers: Vec<Arc<Worker>>,
    pub(crate) dead: RwLock<HashSet<WorkerId>>,
}

impl DataPlane {
    pub(crate) fn worker(&self, id: WorkerId) -> Result<&Arc<Worker>> {
        if self.dead.read().contains(&id) {
            return Err(FsError::UnknownWorker(format!("{id} is down")));
        }
        self.workers.get(id.0 as usize).ok_or_else(|| FsError::UnknownWorker(id.to_string()))
    }
}

/// Builds one worker of a configuration (daemon deployments, where each
/// process hosts a single worker). Media ids follow the same global
/// assignment as [`Cluster`]/[`crate::NetCluster`], so mixed deployments agree.
pub fn build_single_worker(
    config: &ClusterConfig,
    id: WorkerId,
    mode: &StorageMode,
) -> Result<Arc<Worker>> {
    let mut all = build_workers_for(config, mode)?;
    let idx = id.0 as usize;
    if idx >= all.len() {
        return Err(FsError::Config(format!(
            "worker {id} out of range (config has {})",
            all.len()
        )));
    }
    Ok(all.swap_remove(idx))
}

/// Builds the worker set described by a configuration, assigning global
/// media ids in declaration order (worker 0's media first).
pub(crate) fn build_workers_for(
    config: &ClusterConfig,
    mode: &StorageMode,
) -> Result<Vec<Arc<Worker>>> {
    let mut workers = Vec::with_capacity(config.workers.len());
    let mut next_media = 0u32;
    for (wi, wc) in config.workers.iter().enumerate() {
        let worker_id = WorkerId(wi as u32);
        let mut media = Vec::with_capacity(wc.media.len());
        for mc in &wc.media {
            let tier_info = config.tiers.by_name(&mc.tier)?;
            let store: Arc<dyn BlockStore> = match mode {
                StorageMode::InMemory => Arc::new(MemoryStore::new(mc.capacity)),
                StorageMode::Simulated => Arc::new(SimStore::new(mc.capacity)),
                StorageMode::OnDisk(root) => {
                    if tier_info.volatile {
                        Arc::new(MemoryStore::new(mc.capacity))
                    } else {
                        let dir =
                            root.join(format!("worker_{wi}")).join(format!("media_{next_media}"));
                        Arc::new(FileStore::open(dir, mc.capacity)?)
                    }
                }
            };
            media.push(Arc::new(Media::new(
                MediaId(next_media),
                tier_info.id,
                store,
                mc.write_bps,
                mc.read_bps,
            )));
            next_media += 1;
        }
        workers.push(Arc::new(Worker::new(worker_id, RackId(wc.rack), media, wc.net_bps)));
    }
    Ok(workers)
}

/// Scans one master for replication work and executes the copy/delete
/// tasks against the shared data plane (used by [`Cluster`] and
/// [`crate::Federation`]).
pub(crate) fn execute_replication_tasks(master: &Master, plane: &DataPlane) -> Result<usize> {
    let tasks = master.replication_scan();
    let n = tasks.len();
    for task in tasks {
        match task {
            ReplicationTask::Copy { block, sources, target } => {
                let mut copied = false;
                for src in &sources {
                    let Ok(sw) = plane.worker(src.worker) else { continue };
                    let Ok(_src_io) = sw.media_io(src.media) else { continue };
                    let Ok(data) = sw.read_block(src.media, block.id) else { continue };
                    let tw = plane.worker(target.worker)?;
                    let _dst_io = tw.media_io(target.media)?;
                    tw.write_block(target.media, block, &data)?;
                    master.commit_replica(block, target)?;
                    copied = true;
                    break;
                }
                if !copied {
                    master.abort_replica(block, target);
                }
            }
            ReplicationTask::Delete { block, location } => {
                // Same contract as the networked monitor: the scan already
                // dropped the location, so a failed delete must reinstate
                // the replica or the bytes leak until the next block report.
                let deleted = plane
                    .worker(location.worker)
                    .and_then(|w| w.delete_block(location.media, block.id))
                    .is_ok();
                if !deleted {
                    master.reinstate_replica(block, location);
                }
            }
        }
    }
    Ok(n)
}

/// A running in-process cluster.
pub struct Cluster {
    master: Arc<Master>,
    plane: Arc<DataPlane>,
    clock_ms: AtomicU64,
}

impl Cluster {
    /// Starts a cluster with in-memory storage.
    pub fn start(config: ClusterConfig) -> Result<Self> {
        Self::start_with_mode(config, StorageMode::InMemory)
    }

    /// Starts a cluster with the chosen storage mode. Workers register and
    /// send their first heartbeats before this returns, so the cluster is
    /// immediately usable.
    pub fn start_with_mode(config: ClusterConfig, mode: StorageMode) -> Result<Self> {
        Self::start_with_log(config, mode, octopus_master::EditLog::in_memory())
    }

    /// Starts a cluster whose master replays (and writes through to) the
    /// given edit log — the persistent-deployment path: pair it with
    /// [`StorageMode::OnDisk`] and a file-backed log, send block reports,
    /// and a previous instance's namespace and data come back.
    pub fn start_with_log(
        config: ClusterConfig,
        mode: StorageMode,
        log: octopus_master::EditLog,
    ) -> Result<Self> {
        config.validate()?;
        let workers = Self::build_workers(&config, &mode)?;
        let master = Arc::new(Master::with_log(config, log)?);
        let cluster = Self {
            master,
            plane: Arc::new(DataPlane { workers, dead: RwLock::new(HashSet::new()) }),
            clock_ms: AtomicU64::new(0),
        };
        for w in &cluster.plane.workers {
            cluster.master.register_worker(w.id(), w.rack(), w.net_bps(), 0);
        }
        cluster.pump_heartbeats();
        Ok(cluster)
    }

    fn build_workers(config: &ClusterConfig, mode: &StorageMode) -> Result<Vec<Arc<Worker>>> {
        build_workers_for(config, mode)
    }

    /// The master.
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// All workers (including downed ones, for inspection).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.plane.workers
    }

    /// One worker.
    pub fn worker(&self, id: WorkerId) -> Result<&Arc<Worker>> {
        self.plane.workers.get(id.0 as usize).ok_or_else(|| FsError::UnknownWorker(id.to_string()))
    }

    /// A client at the given location.
    pub fn client(&self, location: ClientLocation) -> Client {
        Client::new(Arc::clone(&self.master), Arc::clone(&self.plane), location)
    }

    /// Logical cluster time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::Relaxed)
    }

    /// Advances the logical clock by one heartbeat interval and delivers
    /// heartbeats from every live worker.
    pub fn pump_heartbeats(&self) {
        let now = self.clock_ms.fetch_add(self.master.config().heartbeat_ms, Ordering::Relaxed)
            + self.master.config().heartbeat_ms;
        let dead = self.plane.dead.read().clone();
        for w in &self.plane.workers {
            if dead.contains(&w.id()) {
                continue;
            }
            let (stats, net_conn) = w.heartbeat_stats();
            let _ = self.master.heartbeat(w.id(), stats, net_conn, now);
        }
        self.master.tick(now);
    }

    /// Advances the logical clock without heartbeats (to let the failure
    /// detector fire). Returns workers newly declared dead.
    pub fn advance_time(&self, ms: u64) -> Vec<WorkerId> {
        let now = self.clock_ms.fetch_add(ms, Ordering::Relaxed) + ms;
        self.master.tick(now)
    }

    /// Sends full block reports from every live worker, applying any
    /// invalidations the master returns.
    pub fn send_block_reports(&self) -> Result<()> {
        let dead = self.plane.dead.read().clone();
        for w in &self.plane.workers {
            if dead.contains(&w.id()) {
                continue;
            }
            let report = w.block_report();
            let invalidate = self.master.block_report(w.id(), &report)?;
            for bid in invalidate {
                if let Ok((media, _)) = w.read_block_any(bid) {
                    let _ = w.delete_block(media, bid);
                }
            }
        }
        Ok(())
    }

    /// Takes a worker down: data-plane access fails and the master drops
    /// its replicas (as if heartbeats had stopped).
    pub fn kill_worker(&self, id: WorkerId) {
        self.plane.dead.write().insert(id);
        self.master.kill_worker(id);
    }

    /// Brings a downed worker back; its blocks re-register via a block
    /// report.
    pub fn revive_worker(&self, id: WorkerId) -> Result<()> {
        self.plane.dead.write().remove(&id);
        let w = self.worker(id)?.clone();
        self.master.register_worker(w.id(), w.rack(), w.net_bps(), self.now_ms());
        let (stats, net_conn) = w.heartbeat_stats();
        self.master.heartbeat(w.id(), stats, net_conn, self.now_ms())?;
        let report = w.block_report();
        self.master.block_report(w.id(), &report)?;
        Ok(())
    }

    /// Runs one replication round: scans for under/over-replication and
    /// executes the resulting copy/delete tasks through the workers.
    /// Returns the number of tasks executed.
    pub fn run_replication_round(&self) -> Result<usize> {
        let n = execute_replication_tasks(&self.master, &self.plane)?;
        self.pump_heartbeats();
        Ok(n)
    }

    /// The tier of a medium, resolved through the owning worker.
    pub fn tier_of(&self, worker: WorkerId, media: MediaId) -> Result<TierId> {
        self.worker(worker)?.tier_of(media)
    }

    /// Runs one balancer round (see [`Master::balancer_scan`]): executes
    /// the proposed copies, then a replication round to trim the
    /// now-over-replicated sources. Returns the number of moves made.
    pub fn run_balancer_round(&self, threshold: f64, max_moves: usize) -> Result<usize> {
        let tasks = self.master.balancer_scan(threshold, max_moves);
        let n = tasks.len();
        for task in tasks {
            if let ReplicationTask::Copy { block, sources, target } = task {
                let mut copied = false;
                for src in &sources {
                    let Ok(sw) = self.plane.worker(src.worker) else { continue };
                    let Ok(_src_io) = sw.media_io(src.media) else { continue };
                    let Ok(data) = sw.read_block(src.media, block.id) else { continue };
                    let tw = self.plane.worker(target.worker)?;
                    let _dst_io = tw.media_io(target.media)?;
                    tw.write_block(target.media, block, &data)?;
                    self.master.commit_replica(block, target)?;
                    copied = true;
                    break;
                }
                if !copied {
                    self.master.abort_replica(block, target);
                }
            }
        }
        self.pump_heartbeats();
        // Trim the over-replicated (overloaded) sources.
        self.run_replication_round()?;
        Ok(n)
    }

    /// Runs one auto-tiering round: classifies every file's temperature
    /// through `classifier`, installs the planned replication-vector
    /// edits (see [`Master::autotier_scan`]), and runs a replication
    /// round so the §5 monitor realizes the moves. Returns the planned
    /// migrations. Deterministic and unpaced — the networked
    /// [`crate::NetCluster::run_migration_round`] adds the bandwidth
    /// bound.
    pub fn run_autotier_round(
        &self,
        classifier: &dyn TierClassifier,
        cfg: &AutoTierConfig,
    ) -> Result<Vec<MigrationDecision>> {
        let decisions = self.master.autotier_scan(classifier, cfg);
        self.run_replication_round()?;
        Ok(decisions)
    }

    /// Runs one scrub round: every live worker verifies its block
    /// checksums; corrupt replicas are reported to the master and deleted
    /// locally (§5's corruption-detection path). Returns the number of
    /// corrupt replicas found. Call [`Cluster::run_replication_round`]
    /// afterwards to restore replication.
    pub fn run_scrub_round(&self) -> Result<usize> {
        let dead = self.plane.dead.read().clone();
        let mut found = 0;
        for w in &self.plane.workers {
            if dead.contains(&w.id()) {
                continue;
            }
            for (block, media) in w.scrub() {
                let tier = w.tier_of(media)?;
                self.master.report_corrupt(
                    block,
                    octopus_common::Location { worker: w.id(), media, tier },
                );
                let _ = w.delete_block(media, block);
                found += 1;
            }
        }
        Ok(found)
    }

    /// Drains a worker: no new replicas land on it and its data is
    /// re-replicated elsewhere across replication rounds. Returns once the
    /// drain is complete and the worker has been retired.
    pub fn decommission_worker(&self, id: WorkerId) -> Result<()> {
        self.master.start_decommission(id);
        // Drive replication rounds until every affected block is safe.
        for _ in 0..64 {
            self.run_replication_round()?;
            if self.master.decommission_complete(id) {
                self.master.finalize_decommission(id);
                self.plane.dead.write().insert(id);
                return Ok(());
            }
        }
        Err(FsError::Internal(format!("decommission of {id} did not converge within 64 rounds")))
    }
}
