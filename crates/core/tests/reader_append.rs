//! Tests of positional reads ([`octopus_core::FileReader`]) and append.

use octopus_common::{ClientLocation, ClusterConfig, FsError, ReplicationVector, MB};
use octopus_core::Cluster;

fn setup(len: usize) -> (Cluster, octopus_core::Client, Vec<u8>) {
    let cluster = Cluster::start(ClusterConfig::test_cluster(5, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, 42)
    else {
        unreachable!()
    };
    let data = b.to_vec();
    client.write_file("/f", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    (cluster, client, data)
}

#[test]
fn sequential_small_reads() {
    let (_c, client, data) = setup(2 * MB as usize + 500);
    let mut r = client.open("/f").unwrap();
    assert_eq!(r.len(), data.len() as u64);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = r.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    assert_eq!(out, data);
    assert_eq!(r.position(), data.len() as u64);
}

#[test]
fn seek_and_read_exact() {
    let (_c, client, data) = setup(3 * MB as usize);
    let mut r = client.open("/f").unwrap();

    // Mid-file, spanning a block boundary.
    let pos = MB - 100;
    r.seek(pos);
    let mut buf = vec![0u8; 300];
    r.read_exact(&mut buf).unwrap();
    assert_eq!(buf, &data[pos as usize..pos as usize + 300]);

    // Backwards seek re-reads earlier data.
    r.seek(10);
    let mut buf = vec![0u8; 50];
    r.read_exact(&mut buf).unwrap();
    assert_eq!(buf, &data[10..60]);

    // Seeking past EOF clamps; read returns 0.
    r.seek(u64::MAX);
    assert_eq!(r.position(), data.len() as u64);
    assert_eq!(r.read(&mut buf).unwrap(), 0);

    // read_exact past EOF errors.
    r.seek(data.len() as u64 - 10);
    let mut big = vec![0u8; 100];
    assert!(r.read_exact(&mut big).is_err());
}

#[test]
fn open_directory_rejected() {
    let (_c, client, _) = setup(1024);
    client.mkdir("/dir").unwrap();
    assert!(matches!(client.open("/dir"), Err(FsError::IsADirectory(_))));
}

#[test]
fn append_extends_file() {
    let (_c, client, data) = setup(MB as usize + 123);
    let extra: Vec<u8> = (0..5000u32).map(|i| (i % 97) as u8).collect();
    let mut w = client.append("/f").unwrap();
    w.write(&extra).unwrap();
    w.close().unwrap();

    let mut expected = data.clone();
    expected.extend_from_slice(&extra);
    assert_eq!(client.read_file("/f").unwrap(), expected);
    let st = client.status("/f").unwrap();
    assert!(st.complete);
    assert_eq!(st.len, expected.len() as u64);
    // The append started a new block (the old final block is immutable).
    let blocks = client.get_file_block_locations("/f", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 3); // 1 MB + 123 B + 5000 B
}

#[test]
fn append_respects_leases() {
    let (cluster, alice, _) = setup(1024);
    let bob = cluster.client(ClientLocation::OffCluster);
    let _w = alice.append("/f").unwrap();
    // While Alice holds the append lease, Bob cannot also append.
    assert!(matches!(bob.append("/f"), Err(FsError::LeaseConflict(_))));
    // Nor can anyone append to a file that is already open.
    assert!(matches!(alice.append("/f"), Err(FsError::LeaseConflict(_))));
}

#[test]
fn append_to_open_file_rejected() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(3, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let _w = client.create("/open", ReplicationVector::from_replication_factor(2), None).unwrap();
    assert!(client.append("/open").is_err());
}
