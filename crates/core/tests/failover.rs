//! Fault-injection tests for the networked deployment: RPC deadlines,
//! retry/failover behavior, pipeline recovery (§3.1), checksummed reads
//! (§4.1), and missed-invalidation reconciliation via block reports (§5).
//!
//! Faults are injected deterministically at the servers' response
//! boundary (`octopus_core::net::faults`), keyed by server address, so
//! concurrently-running tests never interfere.

use std::time::{Duration, Instant};

use octopus_common::{ClientLocation, ClusterConfig, FsError, ReplicationVector, RpcConfig, MB};
use octopus_core::net::{faults, FaultAction};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

#[test]
fn empty_file_roundtrip() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/empty", &[], rf(2)).unwrap();
    let st = client.status("/empty").unwrap();
    assert_eq!(st.len, 0);
    assert!(st.complete, "zero-length file must close cleanly");
    assert!(client.get_file_block_locations("/empty", 0, u64::MAX).unwrap().is_empty());
    assert_eq!(client.read_file("/empty").unwrap(), Vec::<u8>::new());
}

#[test]
fn exactly_one_block_file_roundtrip() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 11); // exactly one block, no remainder
    client.write_file("/one", &data, rf(2)).unwrap();
    let blocks = client.get_file_block_locations("/one", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 1, "block-aligned file must produce exactly one block");
    assert_eq!(blocks[0].block.len, MB);
    assert_eq!(client.read_file("/one").unwrap(), data);
}

#[test]
fn delayed_response_times_out_within_deadline() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_rpc_config(RpcConfig {
        connect_timeout_ms: 250,
        read_timeout_ms: 250,
        write_timeout_ms: 250,
        max_retries: 0,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
        conns_per_peer: 2,
        max_inflight_per_peer: 64,
    });
    // The master stalls for far longer than the client's read deadline.
    faults::inject(cluster.master_addr(), FaultAction::Delay(Duration::from_millis(2_000)));
    let start = Instant::now();
    let res = client.status("/");
    let elapsed = start.elapsed();
    faults::clear(cluster.master_addr());
    assert!(matches!(res, Err(FsError::Timeout(_))), "expected timeout, got {res:?}");
    assert!(
        elapsed < Duration::from_millis(1_500),
        "call must fail by its deadline, not wait out the stall ({elapsed:?})"
    );
}

#[test]
fn dropped_connection_is_retried_for_idempotent_calls() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_rpc_config(RpcConfig::fast_test());
    // The master severs the connection instead of answering — twice.
    faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    let st = client.status("/").expect("idempotent call retries through dropped connections");
    assert!(st.is_dir);
    assert_eq!(faults::pending(cluster.master_addr()), 0, "both faults consumed");
}

#[test]
fn truncated_response_is_retried_for_idempotent_calls() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_rpc_config(RpcConfig::fast_test());
    faults::inject(cluster.master_addr(), FaultAction::TruncateFrame);
    let st = client.status("/").expect("half-written response must not poison the client");
    assert!(st.is_dir);
}

#[test]
fn corrupt_read_fails_over_to_healthy_replica() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize + 333, 5);
    client.write_file("/crc", &data, rf(3)).unwrap();

    // Corrupt the response from whichever worker the client would read
    // first — every block read from it returns damaged bytes once.
    let blocks = client.get_file_block_locations("/crc", 0, u64::MAX).unwrap();
    for lb in &blocks {
        let victim = lb.locations[0].worker;
        let addr = cluster.worker_addr(victim).unwrap();
        faults::inject(addr, FaultAction::CorruptPayload);
    }
    assert_eq!(
        client.read_file("/crc").unwrap(),
        data,
        "checksum mismatch must fail over to the next replica"
    );
    for lb in &blocks {
        faults::clear(cluster.worker_addr(lb.locations[0].worker).unwrap());
    }
}

#[test]
fn pipeline_write_heals_around_a_dead_worker() {
    let mut cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_rpc_config(RpcConfig::fast_test());
    client.mkdir("/heal").unwrap();

    // Take a worker down hard: data server gone, heartbeats stopped. The
    // master still hands out placements including it, so pipelines must
    // recover client-side by excluding it and re-requesting placement.
    cluster.kill_worker(0);
    let dead = cluster.workers()[0].id();

    for i in 0..6u64 {
        let path = format!("/heal/{i}");
        let data = payload(MB as usize / 2 + i as usize, 100 + i);
        client.write_file(&path, &data, rf(3)).unwrap();
        assert_eq!(client.read_file(&path).unwrap(), data);
    }
    assert_eq!(cluster.workers()[0].used(), 0, "dead worker {dead} cannot have stored anything");
    // Every surviving block location must be readable and off the dead
    // worker.
    for i in 0..6u64 {
        let blocks = client.get_file_block_locations(&format!("/heal/{i}"), 0, u64::MAX).unwrap();
        for lb in &blocks {
            assert!(!lb.locations.is_empty());
            assert!(lb.locations.iter().all(|l| l.worker != dead));
        }
    }

    // Once the failure detector declares the worker dead (live workers'
    // heartbeats advance it; `tick` forces the matter), the replication
    // monitor must top every block back up to 3 replicas (§5). Blocks that
    // lost a downstream pipeline stage committed with fewer.
    for _ in 0..40 {
        cluster.tick();
        cluster.run_replication_round().unwrap();
        let healed = (0..6u64).all(|i| {
            client
                .get_file_block_locations(&format!("/heal/{i}"), 0, u64::MAX)
                .unwrap()
                .iter()
                .all(|lb| lb.locations.len() >= 3)
        });
        if healed {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    for i in 0..6u64 {
        let blocks = client.get_file_block_locations(&format!("/heal/{i}"), 0, u64::MAX).unwrap();
        for lb in &blocks {
            assert!(lb.locations.len() >= 3, "block {} not healed to 3 replicas", lb.block.id);
            assert!(lb.locations.iter().all(|l| l.worker != dead));
        }
    }
}

#[test]
fn missed_delete_reconciles_when_worker_rejoins() {
    let mut cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_rpc_config(RpcConfig::fast_test());
    let data = payload(MB as usize, 9);
    client.write_file("/leak", &data, rf(3)).unwrap();

    // Pick a worker that holds a replica and take it offline.
    let blocks = client.get_file_block_locations("/leak", 0, u64::MAX).unwrap();
    let victim = blocks[0].locations[0].worker;
    let idx = cluster.workers().iter().position(|w| w.id() == victim).unwrap();
    cluster.kill_worker(idx);

    // Delete while the worker is down: its invalidation is missed.
    client.delete("/leak", false).unwrap();
    assert!(matches!(client.read_file("/leak"), Err(FsError::NotFound(_))));
    assert!(cluster.workers()[idx].used() > 0, "offline worker must still hold the leaked replica");

    // On rejoin the worker block-reports; the master no longer knows the
    // block and orders it invalidated.
    cluster.restart_worker(idx).unwrap();
    assert_eq!(cluster.workers()[idx].used(), 0, "leaked replica purged after rejoin");
    let total: u64 = cluster.workers().iter().map(|w| w.used()).sum();
    assert_eq!(total, 0, "no replica of the deleted file survives anywhere");
}

#[test]
fn block_report_round_purges_stale_replicas() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 21);
    client.write_file("/stale", &data, rf(2)).unwrap();

    // Plant a replica the master has never heard of.
    let w = &cluster.workers()[0];
    let orphan = octopus_common::Block {
        id: octopus_common::BlockId(u64::MAX - 7),
        gen: octopus_common::GenStamp(1),
        len: 64,
    };
    let media = w.media()[0].id;
    w.write_block(media, orphan, &octopus_common::BlockData::generate_real(64, 3)).unwrap();
    assert!(w.contains(orphan.id));

    let dropped = cluster.run_block_report_round().unwrap();
    assert!(dropped >= 1, "reconciliation must purge the orphan replica");
    assert!(!cluster.workers()[0].contains(orphan.id));
    // The legitimate file is untouched.
    assert_eq!(client.read_file("/stale").unwrap(), data);
}
