//! End-to-end tests of the in-process cluster: real bytes through the
//! write pipeline, checksum-verified reads with failover, replication
//! repair, and the Table 1 API surface.

use octopus_common::{
    ClientLocation, ClusterConfig, FsError, ReplicationVector, StorageTier, WorkerId, GB, MB,
};
use octopus_core::{Cluster, StorageMode};
use octopus_master::TierQuota;

fn test_config() -> ClusterConfig {
    // 6 workers, 2 racks, 64 MB per medium, 1 MB blocks.
    ClusterConfig::test_cluster(6, 64 * MB, MB)
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

#[test]
fn write_read_multi_block_round_trip() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/data").unwrap();
    // 3.5 blocks worth of data.
    let data = payload((3 * MB + MB / 2) as usize, 42);
    client.write_file("/data/f", &data, ReplicationVector::from_replication_factor(3)).unwrap();

    let read = client.read_file("/data/f").unwrap();
    assert_eq!(read, data);

    let st = client.status("/data/f").unwrap();
    assert_eq!(st.len, data.len() as u64);
    assert!(st.complete);

    let blocks = client.get_file_block_locations("/data/f", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 4);
    for b in &blocks {
        assert_eq!(b.locations.len(), 3);
    }
}

#[test]
fn range_reads() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload((2 * MB + 100) as usize, 1);
    client.write_file("/f", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    // Within one block.
    assert_eq!(client.read_range("/f", 10, 100).unwrap(), &data[10..110]);
    // Spanning the block boundary.
    let start = MB as usize - 50;
    assert_eq!(client.read_range("/f", start as u64, 100).unwrap(), &data[start..start + 100]);
    // Tail clamped to EOF.
    let tail = client.read_range("/f", data.len() as u64 - 10, 1000).unwrap();
    assert_eq!(tail, &data[data.len() - 10..]);
    // Past EOF → empty.
    assert!(client.read_range("/f", data.len() as u64 + 5, 10).unwrap().is_empty());
}

#[test]
fn pinned_tiers_are_respected_end_to_end() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 7);
    client.write_file("/pinned", &data, ReplicationVector::msh(1, 1, 1)).unwrap();
    let blocks = client.get_file_block_locations("/pinned", 0, u64::MAX).unwrap();
    let mut tiers: Vec<u8> = blocks[0].locations.iter().map(|l| l.tier.0).collect();
    tiers.sort_unstable();
    assert_eq!(tiers, vec![0, 1, 2], "one replica on each of Memory/SSD/HDD");
}

#[test]
fn read_fails_over_when_worker_dies() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 9);
    client.write_file("/ha", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let blocks = client.get_file_block_locations("/ha", 0, u64::MAX).unwrap();
    // Kill the best replica's worker; the read must still succeed.
    let first = blocks[0].locations[0];
    cluster.kill_worker(first.worker);
    assert_eq!(client.read_file("/ha").unwrap(), data);
}

#[test]
fn read_fails_when_all_replicas_lost() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(1024, 3);
    client.write_file("/gone", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    let blocks = client.get_file_block_locations("/gone", 0, u64::MAX).unwrap();
    for l in &blocks[0].locations {
        cluster.kill_worker(l.worker);
    }
    assert!(matches!(
        client.read_file("/gone"),
        Err(FsError::BlockUnavailable(_)) | Err(FsError::UnknownWorker(_))
    ));
}

#[test]
fn replication_monitor_heals_lost_replicas() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 11);
    client.write_file("/heal", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let blocks = client.get_file_block_locations("/heal", 0, u64::MAX).unwrap();
    let victim = blocks[0].locations[0].worker;
    cluster.kill_worker(victim);

    let executed = cluster.run_replication_round().unwrap();
    assert!(executed >= 1);
    let blocks = client.get_file_block_locations("/heal", 0, u64::MAX).unwrap();
    assert_eq!(blocks[0].locations.len(), 3, "replica count restored");
    for l in &blocks[0].locations {
        assert_ne!(l.worker, victim);
    }
    assert_eq!(client.read_file("/heal").unwrap(), data);
}

#[test]
fn set_replication_moves_between_tiers() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 13);
    client.write_file("/move", &data, ReplicationVector::msh(0, 0, 3)).unwrap();

    // Move one replica HDD → Memory (the paper's prefetch-to-memory).
    client.set_replication("/move", ReplicationVector::msh(1, 0, 2)).unwrap();
    // One round creates the memory copy; the next trims the extra HDD one.
    cluster.run_replication_round().unwrap();
    cluster.run_replication_round().unwrap();

    let blocks = client.get_file_block_locations("/move", 0, u64::MAX).unwrap();
    let tiers: Vec<u8> = blocks[0].locations.iter().map(|l| l.tier.0).collect();
    assert_eq!(tiers.iter().filter(|&&t| t == 0).count(), 1, "one memory replica");
    assert_eq!(tiers.iter().filter(|&&t| t == 2).count(), 2, "two HDD replicas");
    assert_eq!(client.read_file("/move").unwrap(), data);
}

#[test]
fn delete_frees_worker_storage() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload((2 * MB) as usize, 17);
    client.write_file("/tmp", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    let used: u64 = cluster.workers().iter().map(|w| w.used()).sum();
    assert_eq!(used, 4 * MB); // 2 blocks × 2 replicas
    client.delete("/tmp", false).unwrap();
    let used: u64 = cluster.workers().iter().map(|w| w.used()).sum();
    assert_eq!(used, 0);
}

#[test]
fn rename_preserves_data() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(4096, 19);
    client.mkdir("/a").unwrap();
    client.write_file("/a/x", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    client.rename("/a/x", "/a/y").unwrap();
    assert!(client.status("/a/x").is_err());
    assert_eq!(client.read_file("/a/y").unwrap(), data);
}

#[test]
fn tier_reports_reflect_usage() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let before = client.get_storage_tier_reports();
    let mem_before = before.iter().find(|r| r.name == "Memory").unwrap().stats.remaining;

    let data = payload(MB as usize, 23);
    client.write_file("/m", &data, ReplicationVector::msh(1, 0, 1)).unwrap();
    cluster.pump_heartbeats();

    let after = client.get_storage_tier_reports();
    let mem_after = after.iter().find(|r| r.name == "Memory").unwrap().stats.remaining;
    assert_eq!(mem_before - mem_after, MB);
    assert!(after.iter().any(|r| r.name == "SSD"));
    assert!(after.iter().any(|r| r.name == "HDD"));
}

#[test]
fn client_local_write_places_first_replica_locally() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OnWorker(WorkerId(2)));
    let data = payload(MB as usize, 29);
    client.write_file("/local", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let blocks = client.get_file_block_locations("/local", 0, u64::MAX).unwrap();
    assert!(
        blocks[0].locations.iter().any(|l| l.worker == WorkerId(2)),
        "writer-local replica expected"
    );
}

#[test]
fn quota_propagates_to_client_writes() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/tenant").unwrap();
    client.set_quota("/tenant", TierQuota::limit_tier(0, MB)).unwrap();
    let data = payload((2 * MB) as usize, 31);
    // 2 MB pinned to memory exceeds the 1 MB quota on the second block.
    let err = client.write_file("/tenant/big", &data, ReplicationVector::msh(1, 0, 1));
    assert!(matches!(err, Err(FsError::QuotaExceeded(_))));
}

#[test]
fn revive_worker_restores_replicas_via_block_report() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 37);
    client.write_file("/rv", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    let blocks = client.get_file_block_locations("/rv", 0, u64::MAX).unwrap();
    let w = blocks[0].locations[0].worker;
    cluster.kill_worker(w);
    let after = client.get_file_block_locations("/rv", 0, u64::MAX).unwrap();
    assert_eq!(after[0].locations.len(), 1);
    cluster.revive_worker(w).unwrap();
    let revived = client.get_file_block_locations("/rv", 0, u64::MAX).unwrap();
    assert_eq!(revived[0].locations.len(), 2, "block report restored the replica");
}

#[test]
fn on_disk_mode_round_trip() {
    let dir = std::env::temp_dir().join(format!(
        "octopus_cluster_disk_{}_{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    let cluster =
        Cluster::start_with_mode(test_config(), StorageMode::OnDisk(dir.clone())).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload((MB + 123) as usize, 41);
    client.write_file("/disk", &data, ReplicationVector::msh(1, 1, 1)).unwrap();
    assert_eq!(client.read_file("/disk").unwrap(), data);
    // Persistent tiers wrote real files.
    let mut found = false;
    for entry in walk(&dir) {
        if entry.file_name().map(|n| n.to_string_lossy().starts_with("blk_")) == Some(true) {
            found = true;
        }
    }
    assert!(found, "expected block files under {dir:?}");
    std::fs::remove_dir_all(dir).ok();
}

fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&d) else { continue };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                out.push(p);
            }
        }
    }
    out
}

#[test]
fn paper_cluster_config_boots() {
    // Scaled-down paper cluster (capacities only) boots and serves I/O.
    let mut config = ClusterConfig::paper_cluster_scaled(0.001);
    config.block_size = MB;
    let cluster = Cluster::start(config).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 43);
    client.write_file("/p", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    assert_eq!(client.read_file("/p").unwrap(), data);
    let reports = client.get_storage_tier_reports();
    assert_eq!(reports.len(), 3);
    let hdd = reports.iter().find(|r| r.name == "HDD").unwrap();
    assert_eq!(hdd.stats.num_media, 27);
    assert!(hdd.stats.capacity < GB * 27);
}

#[test]
fn writer_buffers_partial_blocks() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let mut w =
        client.create("/stream", ReplicationVector::from_replication_factor(2), None).unwrap();
    let chunk = payload(300_000, 47);
    for _ in 0..8 {
        w.write(&chunk).unwrap(); // 2.4 MB total in odd-sized chunks
    }
    w.close().unwrap();
    let expected: Vec<u8> = (0..8).flat_map(|_| chunk.clone()).collect();
    assert_eq!(client.read_file("/stream").unwrap(), expected);
    let blocks = client.get_file_block_locations("/stream", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 3); // 1 MB + 1 MB + 0.4 MB
    assert_eq!(blocks[2].block.len, expected.len() as u64 - 2 * MB);
}

#[test]
fn memory_tier_pinning_observable_in_stores() {
    let cluster = Cluster::start(test_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(1024, 53);
    client.write_file("/memfile", &data, ReplicationVector::msh(2, 0, 0)).unwrap();
    // Count replicas actually resident on memory media across workers.
    let mem_tier = StorageTier::Memory.id();
    let mut resident = 0;
    for w in cluster.workers() {
        for m in w.media() {
            if m.tier == mem_tier {
                resident += m.store.blocks().len();
            }
        }
    }
    assert_eq!(resident, 2);
}
