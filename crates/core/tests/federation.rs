//! Tests of namespace federation (§2.1): independent masters per volume
//! sharing one worker fleet, client-side routing, and disjoint block-id
//! pools.

use octopus_common::{ClientLocation, ClusterConfig, FsError, ReplicationVector, MB};
use octopus_core::Federation;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn fed() -> Federation {
    Federation::start(ClusterConfig::test_cluster(6, 64 * MB, MB), &["/users", "/data"]).unwrap()
}

#[test]
fn routing_and_isolation() {
    let fed = fed();
    let client = fed.client(ClientLocation::OffCluster);
    let u = payload(MB as usize, 1);
    let d = payload(MB as usize, 2);
    client.mkdir("/users/alice").unwrap();
    client
        .write_file("/users/alice/doc", &u, ReplicationVector::from_replication_factor(2))
        .unwrap();
    client.write_file("/data/table", &d, ReplicationVector::from_replication_factor(2)).unwrap();

    assert_eq!(client.read_file("/users/alice/doc").unwrap(), u);
    assert_eq!(client.read_file("/data/table").unwrap(), d);

    // Each master only knows its own volume.
    let users_master = fed.route("/users/alice/doc").unwrap();
    let data_master = fed.route("/data/table").unwrap();
    assert!(!std::ptr::eq(users_master.as_ref(), data_master.as_ref()));
    assert!(users_master.status("/data/table").is_err());
    assert!(data_master.status("/users/alice/doc").is_err());

    // Unowned paths are rejected.
    assert!(matches!(client.read_file("/elsewhere/x"), Err(FsError::NotFound(_))));
    assert!(matches!(client.mkdir("/elsewhere"), Err(FsError::NotFound(_))));
}

#[test]
fn block_pools_are_disjoint_on_shared_workers() {
    let fed = fed();
    let client = fed.client(ClientLocation::OffCluster);
    client
        .write_file(
            "/users/a",
            &payload(MB as usize, 3),
            ReplicationVector::from_replication_factor(3),
        )
        .unwrap();
    client
        .write_file(
            "/data/b",
            &payload(MB as usize, 4),
            ReplicationVector::from_replication_factor(3),
        )
        .unwrap();

    let ids_u: Vec<u64> = client
        .get_file_block_locations("/users/a", 0, u64::MAX)
        .unwrap()
        .iter()
        .map(|b| b.block.id.0)
        .collect();
    let ids_d: Vec<u64> = client
        .get_file_block_locations("/data/b", 0, u64::MAX)
        .unwrap()
        .iter()
        .map(|b| b.block.id.0)
        .collect();
    assert!(ids_u.iter().all(|i| *i < (1 << 40)));
    assert!(ids_d.iter().all(|i| *i > (1 << 40)), "second volume uses its own pool");

    // Both volumes' blocks coexist on the shared fleet.
    let total_blocks: usize = fed.workers().iter().map(|w| w.block_report().len()).sum();
    assert_eq!(total_blocks, 6); // 2 files × 1 block × 3 replicas
}

#[test]
fn cross_volume_rename_rejected_within_volume_allowed() {
    let fed = fed();
    let client = fed.client(ClientLocation::OffCluster);
    client
        .write_file("/users/f", &payload(1024, 5), ReplicationVector::from_replication_factor(2))
        .unwrap();
    assert!(matches!(client.rename("/users/f", "/data/f"), Err(FsError::InvalidArgument(_))));
    client.rename("/users/f", "/users/g").unwrap();
    assert_eq!(client.read_file("/users/g").unwrap().len(), 1024);
}

#[test]
fn volume_validation() {
    let cfg = ClusterConfig::test_cluster(3, 64 * MB, MB);
    assert!(Federation::start(cfg.clone(), &[]).is_err());
    assert!(Federation::start(cfg.clone(), &["/a", "/a/b"]).is_err());
    assert!(Federation::start(cfg.clone(), &["/a", "/a"]).is_err());
    assert!(Federation::start(cfg.clone(), &["relative"]).is_err());
    assert!(Federation::start(cfg, &["/"]).is_err());
}

#[test]
fn tier_reports_visible_through_federation() {
    let fed = fed();
    let client = fed.client(ClientLocation::OffCluster);
    client
        .write_file("/data/x", &payload(MB as usize, 6), ReplicationVector::msh(1, 0, 1))
        .unwrap();
    fed.pump_heartbeats();
    let reports = client.get_storage_tier_reports();
    assert_eq!(reports.len(), 3);
}

#[test]
fn federation_replication_round_realizes_moves_per_volume() {
    let fed = fed();
    let client = fed.client(ClientLocation::OffCluster);
    client
        .write_file("/users/hot", &payload(MB as usize, 7), ReplicationVector::msh(0, 0, 2))
        .unwrap();
    client
        .write_file("/data/hot", &payload(MB as usize, 8), ReplicationVector::msh(0, 0, 2))
        .unwrap();
    client.set_replication("/users/hot", ReplicationVector::msh(1, 0, 1)).unwrap();
    client.set_replication("/data/hot", ReplicationVector::msh(1, 0, 1)).unwrap();
    // Both volumes' monitors run in one federation round (plus one more
    // to trim the extra HDD replicas).
    fed.run_replication_round().unwrap();
    fed.run_replication_round().unwrap();
    for path in ["/users/hot", "/data/hot"] {
        let blocks = client.get_file_block_locations(path, 0, u64::MAX).unwrap();
        let mems = blocks[0].locations.iter().filter(|l| l.tier.0 == 0).count();
        assert_eq!(mems, 1, "{path} gained its memory replica");
        assert_eq!(client.read_file(path).unwrap().len(), MB as usize);
    }
}
