//! Tests of the optional per-rack uplink model (oversubscribed
//! top-of-rack switches behind the paper's hierarchical topology, §3.2).

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, WorkerId, MB};
use octopus_core::SimCluster;

fn config(uplink_mbps: Option<f64>) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster_scaled(0.01);
    c.block_size = MB;
    c.rack_uplink_bps = uplink_mbps.map(|m| m * MB as f64);
    c
}

/// Cross-rack transfer throughput with `d` concurrent point-to-point
/// flows, all rack 0 → rack 1.
fn cross_rack_mbps(uplink_mbps: Option<f64>, d: u32) -> f64 {
    let mut sim = SimCluster::new(config(uplink_mbps)).unwrap();
    // Workers 0..2 are rack 0; 3..5 rack 1 (paper layout: 3 racks × 3).
    for i in 0..d {
        sim.submit_transfer(WorkerId(i % 3), WorkerId(3 + (i % 3)), 100 * MB);
    }
    let reports = sim.run_to_completion();
    reports.iter().map(|r| r.throughput_mbps()).sum::<f64>() / d as f64
}

#[test]
fn uplink_caps_cross_rack_aggregate() {
    // Without uplinks: three disjoint NIC pairs at 1250 MB/s each.
    let free = cross_rack_mbps(None, 3);
    assert!((free - 1250.0).abs() < 30.0, "unconstrained: {free:.0}");

    // With a 1250 MB/s rack uplink, the three flows share it: ~417 each.
    let capped = cross_rack_mbps(Some(1250.0), 3);
    assert!((capped - 1250.0 / 3.0).abs() < 20.0, "capped: {capped:.0}");
}

#[test]
fn intra_rack_traffic_unaffected_by_uplink() {
    let mut sim = SimCluster::new(config(Some(100.0))).unwrap();
    // Same-rack transfer (workers 0 → 1) never touches the tiny uplink.
    sim.submit_transfer(WorkerId(0), WorkerId(1), 100 * MB);
    let r = &sim.run_to_completion()[0];
    assert!(
        r.throughput_mbps() > 1000.0,
        "intra-rack at NIC speed, got {:.0}",
        r.throughput_mbps()
    );
}

#[test]
fn writes_respect_uplinks_end_to_end() {
    // With a crippled 50 MB/s uplink, a 3-replica pipeline that must cross
    // racks (rack pruning forces a second rack) is uplink-bound, well
    // below the 126 MB/s HDD floor.
    let mut sim = SimCluster::new(config(Some(50.0))).unwrap();
    sim.submit_write(
        "/w",
        10 * MB,
        ReplicationVector::msh(0, 0, 3),
        ClientLocation::OnWorker(WorkerId(0)),
    )
    .unwrap();
    let t = sim.run_to_completion()[0].throughput_mbps();
    assert!((t - 50.0).abs() < 5.0, "uplink-bound pipeline, got {t:.0}");

    // And off-cluster reads of a remote replica traverse the uplink too.
    sim.submit_read("/w", ClientLocation::OffCluster).unwrap();
    let t = sim.run_to_completion().last().unwrap().throughput_mbps();
    assert!(t <= 55.0, "read capped by uplink, got {t:.0}");
}
