//! End-to-end tests of the networked deployment: real TCP, real pipeline
//! forwarding between worker data servers, real heartbeat threads.

use octopus_common::{ClientLocation, ClusterConfig, FsError, ReplicationVector, WorkerId, MB};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    // Fast heartbeats so background threads exercise the path during the
    // test's lifetime.
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

#[test]
fn networked_write_read_lifecycle() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);

    client.mkdir("/data").unwrap();
    let data = payload((2 * MB + 777) as usize, 1);
    client.write_file("/data/f", &data, ReplicationVector::from_replication_factor(3)).unwrap();

    // The pipeline stored 3 replicas per block, committed over RPC.
    let blocks = client.get_file_block_locations("/data/f", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 3);
    for b in &blocks {
        assert_eq!(b.locations.len(), 3);
    }

    // Read back over the network.
    assert_eq!(client.read_file("/data/f").unwrap(), data);

    // Namespace operations.
    let st = client.status("/data/f").unwrap();
    assert_eq!(st.len, data.len() as u64);
    assert!(st.complete);
    let ls = client.list("/data").unwrap();
    assert_eq!(ls.len(), 1);
    assert_eq!(ls[0].name, "f");

    client.rename("/data/f", "/data/g").unwrap();
    assert_eq!(client.read_file("/data/g").unwrap(), data);

    // Tier reports over the wire.
    let reports = client.get_storage_tier_reports().unwrap();
    assert_eq!(reports.len(), 3);
    assert!(reports.iter().any(|r| r.name == "Memory" && r.volatile));

    // Delete invalidates replicas at the workers.
    client.delete("/data/g", false).unwrap();
    assert!(matches!(client.read_file("/data/g"), Err(FsError::NotFound(_))));
    let stored: u64 = cluster.workers().iter().map(|w| w.used()).sum();
    assert_eq!(stored, 0);
}

#[test]
fn pinned_tiers_respected_over_the_network() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 2);
    client.write_file("/pin", &data, ReplicationVector::msh(1, 1, 1)).unwrap();
    let blocks = client.get_file_block_locations("/pin", 0, u64::MAX).unwrap();
    let mut tiers: Vec<u8> = blocks[0].locations.iter().map(|l| l.tier.0).collect();
    tiers.sort_unstable();
    assert_eq!(tiers, vec![0, 1, 2]);
    assert_eq!(client.read_file("/pin").unwrap(), data);
}

#[test]
fn remote_errors_preserve_variants() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    assert!(matches!(client.read_file("/nope"), Err(FsError::NotFound(_))));
    client
        .write_file("/dup", &payload(1024, 3), ReplicationVector::from_replication_factor(2))
        .unwrap();
    assert!(matches!(
        client.write_file("/dup", &payload(1024, 4), ReplicationVector::from_replication_factor(2)),
        Err(FsError::AlreadyExists(_))
    ));
    // An invalid vector is rejected by the remote master with the right
    // variant too.
    assert!(matches!(
        client.set_replication("/dup", ReplicationVector::EMPTY),
        Err(FsError::InvalidReplicationVector(_))
    ));
}

#[test]
fn read_fails_over_when_a_data_server_loses_the_replica() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 5);
    client.write_file("/ha", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let blocks = client.get_file_block_locations("/ha", 0, u64::MAX).unwrap();
    // Remove the best replica behind the system's back.
    let victim = blocks[0].locations[0];
    cluster
        .workers()
        .iter()
        .find(|w| w.id() == victim.worker)
        .unwrap()
        .delete_block(victim.media, blocks[0].block.id)
        .unwrap();
    assert_eq!(client.read_file("/ha").unwrap(), data, "failover to the next replica");
}

#[test]
fn writer_local_client_gets_local_first_replica() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OnWorker(WorkerId(1)));
    client
        .write_file(
            "/local",
            &payload(MB as usize, 6),
            ReplicationVector::from_replication_factor(3),
        )
        .unwrap();
    let blocks = client.get_file_block_locations("/local", 0, u64::MAX).unwrap();
    assert!(blocks[0].locations.iter().any(|l| l.worker == WorkerId(1)));
}

#[test]
fn heartbeat_threads_keep_master_view_fresh() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/hb", &payload(MB as usize, 7), ReplicationVector::msh(0, 0, 2)).unwrap();
    // Wait a few heartbeat intervals; the master's tier report must show
    // the consumed HDD capacity without any manual pumping.
    std::thread::sleep(std::time::Duration::from_millis(120));
    let reports = client.get_storage_tier_reports().unwrap();
    let hdd = reports.iter().find(|r| r.name == "HDD").unwrap();
    assert_eq!(hdd.stats.capacity - hdd.stats.remaining, 2 * MB);
}

#[test]
fn concurrent_remote_writers_one_winner() {
    let cluster = NetCluster::start(config()).unwrap();
    let winners = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for seed in 0..6u64 {
            let client = cluster.client(ClientLocation::OffCluster);
            let winners = &winners;
            s.spawn(move || {
                let r = client.write_file(
                    "/contended",
                    &payload((MB + seed) as usize, seed),
                    ReplicationVector::from_replication_factor(2),
                );
                match r {
                    Ok(()) => {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(FsError::AlreadyExists(_)) | Err(FsError::LeaseConflict(_)) => {}
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            });
        }
    });
    assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
    // The surviving file is complete and fully readable.
    let client = cluster.client(ClientLocation::OffCluster);
    let st = client.status("/contended").unwrap();
    assert!(st.complete);
    assert_eq!(client.read_file("/contended").unwrap().len() as u64, st.len);
}

#[test]
fn remote_lease_blocks_second_writer_on_open_file() {
    let cluster = NetCluster::start(config()).unwrap();
    // Alice (holder 777) opens a file directly at the master and leaves it
    // open; a remote client can neither recreate nor close it.
    cluster
        .master()
        .create_file_as(
            "/open",
            ReplicationVector::from_replication_factor(2),
            None,
            octopus_master::ClientId(777),
        )
        .unwrap();
    let bob = cluster.client(ClientLocation::OffCluster);
    assert!(matches!(
        bob.write_file("/open", &payload(1024, 1), ReplicationVector::from_replication_factor(2)),
        Err(FsError::AlreadyExists(_)) | Err(FsError::LeaseConflict(_))
    ));
}

#[test]
fn networked_backup_tails_and_takes_over() {
    use octopus_core::net::NetBackup;

    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 11);
    client.mkdir("/prod").unwrap();
    client.write_file("/prod/db", &data, ReplicationVector::from_replication_factor(2)).unwrap();

    // The backup tails the primary over RPC.
    let backup = NetBackup::start(cluster.master_addr(), 10).unwrap();
    backup.sync_now(cluster.master_addr()).unwrap();
    assert!(backup.applied() >= 4, "mkdir + create + block + close");

    // More activity lands via the background tailing thread.
    client
        .write_file("/prod/late", &payload(1024, 12), ReplicationVector::from_replication_factor(2))
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while backup.applied() < 7 {
        assert!(std::time::Instant::now() < deadline, "tail never caught up");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Failover: the backup becomes primary; workers re-report blocks.
    let new_master = backup.take_over(cluster.master().config().clone()).unwrap();
    assert!(new_master.in_safe_mode());
    for w in cluster.workers() {
        new_master.register_worker(w.id(), w.rack(), w.net_bps(), 0);
        let (stats, conns) = w.heartbeat_stats();
        new_master.heartbeat(w.id(), stats, conns, 0).unwrap();
        new_master.block_report(w.id(), &w.block_report()).unwrap();
    }
    assert!(!new_master.in_safe_mode());
    let st = new_master.status("/prod/db").unwrap();
    assert_eq!(st.len, data.len() as u64);
    let blocks = new_master
        .get_file_block_locations("/prod/db", 0, u64::MAX, ClientLocation::OffCluster)
        .unwrap();
    assert_eq!(blocks[0].locations.len(), 2);
}

#[test]
fn networked_scrub_and_replication_heal_corruption() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 20);
    client.write_file("/heal", &data, ReplicationVector::from_replication_factor(3)).unwrap();

    // Corrupt one replica behind the system's back.
    let blocks = client.get_file_block_locations("/heal", 0, u64::MAX).unwrap();
    let victim = blocks[0].locations[0];
    let worker = cluster.workers().iter().find(|w| w.id() == victim.worker).unwrap();
    worker
        .medium(victim.media)
        .unwrap()
        .store
        .as_any()
        .downcast_ref::<octopus_storage::MemoryStore>()
        .unwrap()
        .corrupt(blocks[0].block.id)
        .unwrap();

    // Scrub over RPC finds and drops it; the replication round re-creates
    // it by pulling from a healthy peer over TCP.
    let round = cluster.run_scrub_round().unwrap();
    assert_eq!(round.corrupt_total(), 1);
    assert!(round.unreachable().is_empty());
    let after = client.get_file_block_locations("/heal", 0, u64::MAX).unwrap();
    assert_eq!(after[0].locations.len(), 2);
    let outcome = cluster.run_replication_round().unwrap();
    assert!(outcome.attempted >= 1);
    assert!(outcome.all_ok());
    let healed = client.get_file_block_locations("/heal", 0, u64::MAX).unwrap();
    assert_eq!(healed[0].locations.len(), 3);
    assert_eq!(client.read_file("/heal").unwrap(), data);
    // Clean fleet afterwards.
    assert_eq!(cluster.run_scrub_round().unwrap().corrupt_total(), 0);
}

#[test]
fn networked_set_replication_realized_by_monitor() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/mv", &payload(MB as usize, 21), ReplicationVector::msh(0, 0, 3)).unwrap();
    client.set_replication("/mv", ReplicationVector::msh(1, 0, 2)).unwrap();
    cluster.run_replication_round().unwrap();
    cluster.run_replication_round().unwrap();
    let blocks = client.get_file_block_locations("/mv", 0, u64::MAX).unwrap();
    let mems = blocks[0].locations.iter().filter(|l| l.tier.0 == 0).count();
    let hdds = blocks[0].locations.iter().filter(|l| l.tier.0 == 2).count();
    assert_eq!((mems, hdds), (1, 2), "move realized over the network");
}
