//! Tests of the two §2.4 remote-storage modes: the integrated "Remote"
//! tier and stand-alone external mounts.

use std::sync::Arc;

use octopus_common::{ClientLocation, ClusterConfig, FsError, ReplicationVector, StorageTier, MB};
use octopus_core::{Cluster, SimCluster};
use octopus_master::InMemoryCatalog;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn four_tier_config() -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster_with_remote_scaled(0.001);
    c.block_size = MB;
    c
}

#[test]
fn integrated_remote_tier_stores_pinned_replicas() {
    let cluster = Cluster::start(four_tier_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 1);
    // Archive: one local HDD replica plus two on the remote tier.
    let rv = ReplicationVector::mshru(0, 0, 1, 2, 0);
    client.write_file("/archive", &data, rv).unwrap();
    let blocks = client.get_file_block_locations("/archive", 0, u64::MAX).unwrap();
    let mut tiers: Vec<u8> = blocks[0].locations.iter().map(|l| l.tier.0).collect();
    tiers.sort_unstable();
    assert_eq!(tiers, vec![2, 3, 3]);
    assert_eq!(client.read_file("/archive").unwrap(), data);

    let reports = client.get_storage_tier_reports();
    assert_eq!(reports.len(), 4);
    let remote = reports.iter().find(|r| r.name == "Remote").unwrap();
    assert_eq!(remote.stats.num_media, 9);
    assert!(!remote.volatile);
}

#[test]
fn archival_move_to_remote_tier() {
    // The HDFS-archival use case (§8's storage policies, done with
    // vectors): cold data migrates HDD → Remote via setReplication.
    let cluster = Cluster::start(four_tier_config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 2);
    client.write_file("/cold", &data, ReplicationVector::msh(0, 0, 3)).unwrap();
    client.set_replication("/cold", ReplicationVector::mshru(0, 0, 1, 2, 0)).unwrap();
    cluster.run_replication_round().unwrap();
    cluster.run_replication_round().unwrap();
    let blocks = client.get_file_block_locations("/cold", 0, u64::MAX).unwrap();
    let remotes = blocks[0].locations.iter().filter(|l| l.tier == StorageTier::Remote.id()).count();
    assert_eq!(remotes, 2);
    assert_eq!(client.read_file("/cold").unwrap(), data);
}

#[test]
fn simulated_remote_tier_is_slow() {
    // In the flow model a remote-pinned write runs at the remote media
    // rate (85 MB/s), far below HDD pipelines.
    let mut c = ClusterConfig::paper_cluster_with_remote_scaled(0.01);
    c.block_size = MB;
    let mut sim = SimCluster::new(c).unwrap();
    sim.submit_write(
        "/r",
        20 * MB,
        ReplicationVector::mshru(0, 0, 0, 3, 0),
        ClientLocation::OffCluster,
    )
    .unwrap();
    let t = sim.run_to_completion()[0].throughput_mbps();
    assert!((t - 85.0).abs() < 5.0, "remote pipeline ≈ 85 MB/s, got {t:.1}");
}

#[test]
fn standalone_mount_unified_namespace() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(4, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);

    let mut catalog = InMemoryCatalog::new("warehouse");
    catalog.insert("tables/orders.parquet", payload(500_000, 7));
    catalog.insert("tables/lineitem.parquet", payload(800_000, 8));
    catalog.insert("manifest.json", b"{}".to_vec());
    cluster.master().mount_external("/warehouse", Arc::new(catalog)).unwrap();

    // Unified view: listing and status work through the mount.
    let entries = client.list("/warehouse").unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["manifest.json", "tables"]);
    let st = client.status("/warehouse/tables/orders.parquet").unwrap();
    assert!(!st.is_dir);
    assert_eq!(st.len, 500_000);

    // Reads are served by the catalog.
    assert_eq!(client.read_file("/warehouse/manifest.json").unwrap(), b"{}");

    // Import pulls an external file into the cluster tiers.
    client.mkdir("/hot").unwrap();
    client
        .import_external(
            "/warehouse/tables/orders.parquet",
            "/hot/orders",
            ReplicationVector::msh(1, 0, 2),
        )
        .unwrap();
    let blocks = client.get_file_block_locations("/hot/orders", 0, u64::MAX).unwrap();
    assert!(!blocks.is_empty());
    assert_eq!(
        client.read_file("/hot/orders").unwrap(),
        client.read_file("/warehouse/tables/orders.parquet").unwrap()
    );
}

#[test]
fn mount_point_conflicts_and_misses() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(3, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/existing").unwrap();
    // Cannot mount over an existing namespace path.
    let err = cluster.master().mount_external("/existing", Arc::new(InMemoryCatalog::new("x")));
    assert!(matches!(err, Err(FsError::AlreadyExists(_))));

    cluster.master().mount_external("/ext", Arc::new(InMemoryCatalog::new("y"))).unwrap();
    assert_eq!(cluster.master().mount_points(), vec!["/ext".to_string()]);
    assert!(cluster.master().is_external("/ext/file"));
    assert!(!cluster.master().is_external("/elsewhere"));
    assert!(matches!(client.read_file("/ext/missing"), Err(FsError::NotFound(_))));
}

#[test]
fn external_range_reads() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(3, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let mut catalog = InMemoryCatalog::new("c");
    catalog.insert("blob", (0u8..200).collect());
    cluster.master().mount_external("/ext", Arc::new(catalog)).unwrap();
    assert_eq!(client.read_range("/ext/blob", 10, 5).unwrap(), vec![10, 11, 12, 13, 14]);
    assert_eq!(client.read_range("/ext/blob", 195, 100).unwrap().len(), 5);
    assert!(client.read_range("/ext/blob", 500, 10).unwrap().is_empty());
}
