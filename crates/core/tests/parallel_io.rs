//! Concurrency and edge-case tests for the parallel multi-block data path
//! (client I/O window): windowed writes recovering around faulted workers,
//! windowed reads failing over per block, concurrent clients with distinct
//! windows, the block-ordering invariant, size edge cases, and the
//! media I/O connection accounting the placement policy consumes (§3.2).
//!
//! Everything is deterministic: faults are injected at server response
//! boundaries keyed by address, worker death is synchronous, and no test
//! uses sleeps for synchronization.

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, RpcConfig, MB};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

/// A windowed write with a worker faulted before the window opens must
/// recover every pipeline client-side (ReassignBlock / re-placement) and
/// commit all blocks off the dead node.
#[test]
fn parallel_write_commits_all_blocks_around_dead_worker() {
    let mut cluster = NetCluster::start(config()).unwrap();
    let client = cluster
        .client(ClientLocation::OffCluster)
        .with_rpc_config(RpcConfig::fast_test())
        .with_io_window(4);
    cluster.kill_worker(0);
    let dead = cluster.workers()[0].id();

    let data = payload(5 * MB as usize + MB as usize / 2, 7); // six blocks
    client.write_file("/pdead", &data, rf(3)).unwrap();
    assert_eq!(client.read_file("/pdead").unwrap(), data);

    let blocks = client.get_file_block_locations("/pdead", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 6, "every block must commit");
    for lb in &blocks {
        assert!(!lb.locations.is_empty(), "block {} has no replicas", lb.block.id);
        assert!(
            lb.locations.iter().all(|l| l.worker != dead),
            "block {} committed on the dead worker",
            lb.block.id
        );
    }
    assert_eq!(cluster.workers()[0].used(), 0, "dead worker {dead} cannot have stored anything");
}

/// Windowed reads verify checksums per block and fail over to the next
/// replica independently: silently corrupt the first-choice *stored*
/// replica of every block (a damaged replica fails its checksum on every
/// read, unlike a one-shot response fault, so the check is independent
/// of how the parallel reads interleave) and the read must still return
/// the exact bytes.
#[test]
fn parallel_read_fails_over_per_block_on_corruption() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_io_window(4);
    let data = payload(4 * MB as usize + 4321, 13); // five blocks, ragged tail
    client.write_file("/pcrc", &data, rf(3)).unwrap();

    let blocks = client.get_file_block_locations("/pcrc", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 5);
    for lb in &blocks {
        let victim = lb.locations[0];
        let worker = cluster.workers().iter().find(|w| w.id() == victim.worker).unwrap();
        worker
            .medium(victim.media)
            .unwrap()
            .store
            .as_any()
            .downcast_ref::<octopus_storage::MemoryStore>()
            .unwrap()
            .corrupt(lb.block.id)
            .unwrap();
    }
    assert_eq!(
        client.read_file("/pcrc").unwrap(),
        data,
        "each block must fail over past its corrupted first replica"
    );
}

/// Two clients with different windows writing concurrently must not
/// interleave: each file reads back bit-exact and its blocks cover the
/// file contiguously.
#[test]
fn concurrent_clients_with_distinct_windows_do_not_interleave() {
    let cluster = NetCluster::start(config()).unwrap();
    let serial = cluster.client(ClientLocation::OffCluster).with_io_window(1);
    let windowed = cluster.client(ClientLocation::OffCluster).with_io_window(4);
    let data_a = payload(4 * MB as usize, 101);
    let data_b = payload(4 * MB as usize, 202);

    std::thread::scope(|s| {
        let a = s.spawn(|| serial.write_file("/ca", &data_a, rf(2)));
        let b = s.spawn(|| windowed.write_file("/cb", &data_b, rf(2)));
        a.join().unwrap().unwrap();
        b.join().unwrap().unwrap();
    });

    assert_eq!(serial.read_file("/cb").unwrap(), data_b, "cross-read must agree");
    assert_eq!(windowed.read_file("/ca").unwrap(), data_a, "cross-read must agree");
    for path in ["/ca", "/cb"] {
        let blocks = cluster
            .client(ClientLocation::OffCluster)
            .get_file_block_locations(path, 0, u64::MAX)
            .unwrap();
        assert_eq!(blocks.len(), 4);
        for (i, lb) in blocks.iter().enumerate() {
            assert_eq!(lb.offset, i as u64 * MB, "{path} block {i} misplaced");
            assert_eq!(lb.block.len, MB);
        }
    }
}

/// The block-ordering invariant (see `Master::reassign_block_as` docs):
/// blocks appear in the namespace in AddBlock call order, so a windowed
/// write must yield offsets 0, bs, 2bs, … exactly — the turnstile
/// serializes AddBlock even though transfers overlap.
#[test]
fn windowed_write_preserves_block_offset_order() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_io_window(4);
    let data = payload(8 * MB as usize, 29);
    client.write_file("/order", &data, rf(2)).unwrap();

    let blocks = client.get_file_block_locations("/order", 0, u64::MAX).unwrap();
    assert_eq!(blocks.len(), 8);
    let mut ids = std::collections::HashSet::new();
    for (i, lb) in blocks.iter().enumerate() {
        assert_eq!(lb.offset, i as u64 * MB, "block {i} out of offset order");
        assert_eq!(lb.block.len, MB);
        assert!(ids.insert(lb.block.id), "duplicate block id {}", lb.block.id);
    }
    assert_eq!(client.read_file("/order").unwrap(), data);
}

/// Size matrix: lengths around every boundary the chunker and the window
/// logic care about round-trip bit-exact at windows 1 and 4.
#[test]
fn size_matrix_round_trips_bit_exact() {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB / 4);
    c.heartbeat_ms = 20;
    let cluster = NetCluster::start(c).unwrap();
    let bs = (MB / 4) as usize;
    let sizes = [0, 1, bs - 1, bs, bs + 1, 4 * bs - 1, 4 * bs, 4 * bs + 1];
    for window in [1u32, 4] {
        let client = cluster.client(ClientLocation::OffCluster).with_io_window(window);
        for (i, &len) in sizes.iter().enumerate() {
            let path = format!("/sz-w{window}-{i}");
            let data = payload(len, 1000 + i as u64);
            client.write_file(&path, &data, rf(2)).unwrap();
            let st = client.status(&path).unwrap();
            assert_eq!(st.len, len as u64, "{path} length");
            assert!(st.complete, "{path} must close");
            assert_eq!(client.read_file(&path).unwrap(), data, "{path} bytes");
            client.delete(&path, false).unwrap();
        }
    }
}

/// `media_io` spans are the `NrConn` the heartbeat reports (§3.2): N
/// simultaneous transfer spans against one medium count N, and zero after
/// they drop — the accounting behind the data server's concurrent accept
/// path.
#[test]
fn media_io_spans_count_simultaneous_transfers() {
    let cluster = NetCluster::start(config()).unwrap();
    let w = &cluster.workers()[1];
    let media = w.media()[0].id;
    let conns_of = |w: &octopus_core::Worker| {
        let (stats, _) = w.heartbeat_stats();
        stats.iter().find(|m| m.media == media).unwrap().nr_conn
    };

    assert_eq!(conns_of(w), 0);
    let spans: Vec<_> = (0..3).map(|_| w.media_io(media).unwrap()).collect();
    assert_eq!(conns_of(w), 3, "three in-flight transfers must count three");
    drop(spans);
    assert_eq!(conns_of(w), 0, "dropped spans must release their connections");
}

/// Device-throughput pacing is off by default and, when enabled, derives
/// the transfer duration from the medium's configured rates.
#[test]
fn transfer_pacing_gated_by_emulation_flag() {
    let cluster = NetCluster::start(config()).unwrap();
    let w = &cluster.workers()[0];
    let media = w.media()[0].id;
    assert_eq!(w.transfer_pacing(media, MB, true), None, "emulation must default off");

    w.set_emulate_media_bps(true);
    let (write_bps, read_bps) = w.media()[0].throughput();
    let wr = w.transfer_pacing(media, MB, true).unwrap();
    let rd = w.transfer_pacing(media, MB, false).unwrap();
    assert!((wr.as_secs_f64() - MB as f64 / write_bps).abs() < 1e-9);
    assert!((rd.as_secs_f64() - MB as f64 / read_bps).abs() < 1e-9);
    w.set_emulate_media_bps(false);
    assert_eq!(w.transfer_pacing(media, MB, false), None);
}
