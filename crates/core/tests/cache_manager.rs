//! Tests of the §6 multi-level cache manager: LRU promotion/eviction of
//! memory-tier replicas through the public `setReplication` API.

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, StorageTier, MB};
use octopus_core::{CacheAction, CacheManager, Cluster};

fn setup(files: &[(&str, usize)]) -> (Cluster, octopus_core::Client) {
    let cluster = Cluster::start(ClusterConfig::test_cluster(6, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    for (path, len) in files {
        let octopus_common::BlockData::Real(b) =
            octopus_common::BlockData::generate_real(*len, path.len() as u64)
        else {
            unreachable!()
        };
        client.write_file(path, &b, ReplicationVector::msh(0, 0, 2)).unwrap();
    }
    (cluster, client)
}

/// Memory replicas of the file's first block (each block carries the same
/// per-tier counts).
fn memory_replicas(cluster: &Cluster, path: &str) -> usize {
    cluster
        .master()
        .get_file_block_locations(path, 0, 1, ClientLocation::OffCluster)
        .unwrap()
        .first()
        .map(|b| b.locations.iter().filter(|l| l.tier == StorageTier::Memory.id()).count())
        .unwrap_or(0)
}

#[test]
fn second_access_promotes_to_memory() {
    let (cluster, client) = setup(&[("/t1", MB as usize)]);
    let mut cache = CacheManager::new(client.clone(), 8 * MB, 2);

    assert!(cache.on_access("/t1").unwrap().is_empty(), "first access: no promotion");
    let actions = cache.on_access("/t1").unwrap();
    assert_eq!(actions, vec![CacheAction::Promoted("/t1".into())]);
    assert_eq!(cache.cached(), vec!["/t1".to_string()]);

    // The replication monitor realizes the promotion.
    cluster.run_replication_round().unwrap();
    assert_eq!(memory_replicas(&cluster, "/t1"), 1);
    // The original HDD replicas are untouched (cache adds, not moves).
    let st = client.status("/t1").unwrap();
    assert_eq!(st.rv, ReplicationVector::msh(1, 0, 2));
}

#[test]
fn lru_eviction_when_budget_full() {
    let (cluster, client) =
        setup(&[("/a", 2 * MB as usize), ("/b", 2 * MB as usize), ("/c", 2 * MB as usize)]);
    // Budget fits two files; promote on first access for brevity.
    let mut cache = CacheManager::new(client.clone(), 4 * MB, 1);

    cache.on_access("/a").unwrap();
    cache.on_access("/b").unwrap();
    assert_eq!(cache.used(), 4 * MB);

    // Touch /a so /b becomes the LRU, then bring in /c.
    cache.on_access("/a").unwrap();
    let actions = cache.on_access("/c").unwrap();
    assert_eq!(
        actions,
        vec![CacheAction::Evicted("/b".into()), CacheAction::Promoted("/c".into())]
    );
    let mut cached = cache.cached();
    cached.sort();
    assert_eq!(cached, vec!["/a".to_string(), "/c".to_string()]);

    // Realize: /b's memory pin is gone, /a and /c have one each.
    cluster.run_replication_round().unwrap();
    cluster.run_replication_round().unwrap();
    assert_eq!(memory_replicas(&cluster, "/a"), 1);
    assert_eq!(memory_replicas(&cluster, "/b"), 0);
    assert_eq!(memory_replicas(&cluster, "/c"), 1);
}

#[test]
fn oversized_files_are_never_cached() {
    let (_cluster, client) = setup(&[("/huge", 3 * MB as usize)]);
    let mut cache = CacheManager::new(client, 2 * MB, 1);
    assert!(cache.on_access("/huge").unwrap().is_empty());
    assert!(cache.cached().is_empty());
}

#[test]
fn clear_demotes_everything() {
    let (cluster, client) = setup(&[("/x", MB as usize), ("/y", MB as usize)]);
    let mut cache = CacheManager::new(client, 8 * MB, 1);
    cache.on_access("/x").unwrap();
    cache.on_access("/y").unwrap();
    let actions = cache.clear().unwrap();
    assert_eq!(actions.len(), 2);
    assert_eq!(cache.used(), 0);
    cluster.run_replication_round().unwrap();
    assert_eq!(memory_replicas(&cluster, "/x"), 0);
    assert_eq!(memory_replicas(&cluster, "/y"), 0);
}

#[test]
fn eviction_releases_what_promotion_charged() {
    // Regression: promotion charged the file's length at promote time,
    // but every later access refreshed the entry's length — so evicting
    // a file that grew while cached released the *new* length. With two
    // cached files, growing and evicting one saturating-subtracted the
    // other file's charge away, and `used` drifted to 0 while a replica
    // still sat in memory.
    let (_cluster, client) = setup(&[("/grow", MB as usize), ("/stay", MB as usize)]);
    let mut cache = CacheManager::new(client.clone(), 8 * MB, 1);
    cache.on_access("/grow").unwrap();
    cache.on_access("/stay").unwrap();
    assert_eq!(cache.used(), 2 * MB);

    // /grow triples in size while cached.
    let mut w = client.append("/grow").unwrap();
    w.write(&vec![3u8; 2 * MB as usize]).unwrap();
    w.close().unwrap();

    // The next access reconciles the charge to the current size…
    cache.on_access("/grow").unwrap();
    assert_eq!(cache.used(), 4 * MB, "charge follows the file's current size");

    // …and a full clear returns the budget to exactly zero.
    let evicted = cache.clear().unwrap();
    assert_eq!(evicted.len(), 2);
    assert_eq!(cache.used(), 0, "eviction must release exactly what was charged");
}

#[test]
fn eviction_of_grown_file_keeps_other_charges_intact() {
    // The sharpest form of the bug: a cached file grows, a later access
    // refreshes the entry's recorded length, and eviction then released
    // that new length instead of the charge — the saturating subtraction
    // silently wiped the *other* cached file's budget share too.
    let (_cluster, client) = setup(&[("/grow", MB as usize), ("/stay", MB as usize)]);
    let mut cache = CacheManager::new(client.clone(), 2 * MB, 1);
    cache.on_access("/grow").unwrap();
    cache.on_access("/stay").unwrap();
    assert_eq!(cache.used(), 2 * MB);

    // /grow triples in size while cached.
    let mut w = client.append("/grow").unwrap();
    w.write(&vec![3u8; 2 * MB as usize]).unwrap();
    w.close().unwrap();

    // Refresh /grow's entry, then make /stay most-recent so /grow is the
    // LRU victim when a third file needs the space.
    cache.on_access("/grow").unwrap();
    cache.on_access("/stay").unwrap();
    client.write_file("/third", &[1u8; MB as usize], ReplicationVector::msh(0, 0, 2)).unwrap();
    let actions = cache.on_access("/third").unwrap();
    assert!(actions.contains(&CacheAction::Evicted("/grow".into())), "actions: {actions:?}");
    assert!(actions.contains(&CacheAction::Promoted("/third".into())), "actions: {actions:?}");

    // /stay's 1 MB and /third's 1 MB remain charged.
    assert_eq!(cache.used(), 2 * MB, "evicting /grow must not release more than its charge");
    let mut cached = cache.cached();
    cached.sort();
    assert_eq!(cached, vec!["/stay".to_string(), "/third".to_string()]);
}

#[test]
fn deleted_file_eviction_is_graceful() {
    let (_cluster, client) = setup(&[("/gone", MB as usize), ("/stay", MB as usize)]);
    let mut cache = CacheManager::new(client.clone(), MB, 1);
    cache.on_access("/gone").unwrap();
    client.delete("/gone", false).unwrap();
    // Promoting /stay evicts the deleted file without error.
    let actions = cache.on_access("/stay").unwrap();
    assert!(actions.contains(&CacheAction::Promoted("/stay".into())));
}
