//! Replication-monitor failure handling (§5): failed deletes are
//! compensated (not swallowed), scrub distinguishes unreachable workers
//! from clean ones, and per-worker task batches run concurrently so one
//! dead worker does not stall the rest of the fleet.

use std::time::{Duration, Instant};

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
use octopus_core::net::{faults, FaultAction, ScrubStatus};
use octopus_core::NetCluster;

fn config(n: u32) -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(n, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

/// The ISSUE's core bug: a `Delete` RPC that fails mid-round must leave
/// the replica in the master's block map (reinstated), so later scans
/// re-issue the delete and the cluster converges with no leaked bytes.
#[test]
fn failed_delete_reinstates_replica_and_reconverges() {
    let mut cluster = NetCluster::start(config(2)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 5);
    client.write_file("/del", &data, rf(2)).unwrap();
    let locs = client.get_file_block_locations("/del", 0, u64::MAX).unwrap();
    assert_eq!(locs[0].locations.len(), 2);

    // Shrink the target replication, then take the whole data plane down
    // before the round runs: the scheduled delete cannot reach its worker.
    client.set_replication("/del", rf(1)).unwrap();
    cluster.kill_worker(0);
    cluster.kill_worker(1);

    let outcome = cluster.run_replication_round().unwrap();
    assert_eq!(outcome.attempted, 1);
    assert_eq!(outcome.deletes_failed, 1, "unreachable delete must be counted as failed");
    assert!(!outcome.all_ok());

    // The replica was reinstated, not silently dropped from the map: the
    // master still advertises both copies (the bytes do still exist).
    let locs = client.get_file_block_locations("/del", 0, u64::MAX).unwrap();
    assert_eq!(locs[0].locations.len(), 2, "failed delete must keep the replica visible");

    let snap = cluster.metrics_snapshot().unwrap();
    assert!(snap.counter("master_replication_delete_failures_total") >= 1);

    // Workers return; subsequent scans re-issue the delete and both the
    // block map and the on-disk bytes converge to rv = 1.
    cluster.restart_worker(0).unwrap();
    cluster.restart_worker(1).unwrap();
    let mut converged = false;
    for _ in 0..40 {
        cluster.tick();
        let _ = cluster.run_replication_round();
        let _ = cluster.run_block_report_round();
        let locs = client.get_file_block_locations("/del", 0, u64::MAX).unwrap();
        let used: u64 = cluster.workers().iter().map(|w| w.used()).sum();
        if locs[0].locations.len() == 1 && used == MB {
            converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(converged, "blockmap and stored bytes must re-converge with no leaked replica");
    assert_eq!(client.read_file("/del").unwrap(), data);
}

/// An unreachable worker is not "0 corrupt replicas": scrub reports it
/// per worker, and the master's metrics count it.
#[test]
fn scrub_distinguishes_unreachable_from_clean() {
    let mut cluster = NetCluster::start(config(3)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/s", &payload(MB as usize, 7), rf(2)).unwrap();

    let dead = cluster.workers()[2].id();
    cluster.kill_worker(2);

    let round = cluster.run_scrub_round().unwrap();
    assert_eq!(round.workers.len(), 3);
    assert_eq!(round.unreachable(), vec![dead]);
    assert_eq!(round.corrupt_total(), 0);
    for (w, status) in &round.workers {
        if *w == dead {
            assert_eq!(*status, ScrubStatus::Unreachable);
        } else {
            assert_eq!(*status, ScrubStatus::Clean, "live worker {w} must scrub clean");
        }
    }

    let snap = cluster.metrics_snapshot().unwrap();
    assert!(snap.counter("master_scrub_rounds_total") >= 1);
    assert!(
        snap.counter_where("master_scrub_unreachable_total", |l| l.worker == Some(dead)) >= 1,
        "the unreachable worker must be counted, labeled with its id"
    );
}

/// Per-worker batches run concurrently: with every worker's next response
/// delayed, a fleet round costs roughly one delay, not the sum.
#[test]
fn scrub_batches_run_concurrently_across_workers() {
    let cluster = NetCluster::start(config(3)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/c", &payload(MB as usize, 3), rf(2)).unwrap();

    let delay = Duration::from_millis(600);
    for w in cluster.workers() {
        faults::inject(cluster.worker_addr(w.id()).unwrap(), FaultAction::Delay(delay));
    }
    let start = Instant::now();
    let round = cluster.run_scrub_round().unwrap();
    let elapsed = start.elapsed();
    for w in cluster.workers() {
        faults::clear(cluster.worker_addr(w.id()).unwrap());
    }
    assert_eq!(round.corrupt_total(), 0);
    assert!(round.unreachable().is_empty());
    assert!(
        elapsed < delay * 2,
        "3 delayed workers must be scrubbed concurrently (~1 delay), took {elapsed:?}"
    );
}

/// A round with one dead worker is bounded by that worker's own RPC
/// deadline budget — it does not stall the other workers' tasks — and no
/// replica is permanently leaked once the worker returns.
#[test]
fn replication_round_with_dead_worker_stays_bounded_and_heals() {
    let mut cluster = NetCluster::start(config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/b").unwrap();
    for i in 0..3u64 {
        let path = format!("/b/{i}");
        client.write_file(&path, &payload(MB as usize, 30 + i), rf(3)).unwrap();
        client.set_replication(&path, rf(2)).unwrap();
    }
    cluster.kill_worker(0);

    let start = Instant::now();
    let outcome = cluster.run_replication_round().unwrap();
    let elapsed = start.elapsed();
    assert_eq!(outcome.attempted, 3);
    assert_eq!(
        outcome.deletes_ok + outcome.deletes_failed,
        3,
        "every scheduled delete must be accounted for, success or failure"
    );
    // One dead worker's batch costs its own retry budget; the live
    // workers' batches proceed in parallel rather than queueing behind it.
    assert!(
        elapsed < Duration::from_secs(4),
        "round must be bounded by one worker's RPC budget, took {elapsed:?}"
    );

    // After the worker returns, scans finish the trim with nothing leaked.
    cluster.restart_worker(0).unwrap();
    let mut converged = false;
    for _ in 0..40 {
        cluster.tick();
        let _ = cluster.run_replication_round();
        let _ = cluster.run_block_report_round();
        let trimmed = (0..3u64).all(|i| {
            client
                .get_file_block_locations(&format!("/b/{i}"), 0, u64::MAX)
                .unwrap()
                .iter()
                .all(|lb| lb.locations.len() == 2)
        });
        let used: u64 = cluster.workers().iter().map(|w| w.used()).sum();
        if trimmed && used == 3 * 2 * MB {
            converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(converged, "all files must trim to 2 replicas with no leaked bytes");
}
