//! Tests of the simulated cluster: analytic throughput checks against the
//! calibrated device model, contention behaviour, and replication flows.

use octopus_common::units::mbps_to_bytes_per_sec;
use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, StorageTier, MB};
use octopus_core::{SimCluster, SimEvent};

/// Paper cluster with 1 MB blocks for fast tests.
fn sim_config() -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster_scaled(0.01);
    c.block_size = MB;
    c
}

fn mbps(bps: f64) -> f64 {
    bps / MB as f64
}

#[test]
fn single_hdd_pipeline_write_runs_at_hdd_rate() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    let job = sim
        .submit_write("/w", 10 * MB, ReplicationVector::msh(0, 0, 3), ClientLocation::OffCluster)
        .unwrap();
    let reports = sim.run_to_completion();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert!(r.failed.is_none());
    assert_eq!(r.job, job);
    assert_eq!(r.bytes, 10 * MB);
    // Pipeline through three HDD writes: bottleneck = one HDD ≈ 126.3 MB/s.
    let t = r.throughput_mbps();
    assert!((t - 126.3).abs() < 5.0, "expected ~126 MB/s, got {t:.1}");
}

#[test]
fn memory_pipeline_write_is_nic_bound() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/m", 10 * MB, ReplicationVector::msh(3, 0, 0), ClientLocation::OffCluster)
        .unwrap();
    let r = &sim.run_to_completion()[0];
    // Memory writes at 1897 MB/s but the 10 Gbps NIC (1250 MB/s) caps the
    // pipeline.
    let t = r.throughput_mbps();
    assert!((t - 1250.0).abs() < 30.0, "expected ~1250 MB/s, got {t:.1}");
}

#[test]
fn mixed_tier_pipeline_bottlenecked_by_hdd() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/x", 10 * MB, ReplicationVector::msh(1, 1, 1), ClientLocation::OffCluster)
        .unwrap();
    let r = &sim.run_to_completion()[0];
    let t = r.throughput_mbps();
    // The paper's §7.1 observation: with one HDD replica in the pipeline,
    // multi-tier placement does not help a single writer.
    assert!((t - 126.3).abs() < 5.0, "expected ~126 MB/s, got {t:.1}");
}

#[test]
fn parallel_writers_contend_for_devices() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    // 18 writers on a 9-node cluster, all-SSD replication: each node's
    // single SSD serves ~6 concurrent block writes on average.
    for i in 0..18 {
        sim.submit_write(
            &format!("/f{i}"),
            10 * MB,
            ReplicationVector::msh(0, 3, 0),
            ClientLocation::OffCluster,
        )
        .unwrap();
    }
    let reports = sim.run_to_completion();
    let mean: f64 = reports.iter().map(|r| r.throughput_mbps()).sum::<f64>() / 18.0;
    // 9 SSDs at 340.6 MB/s serve 18 pipelines × 3 replicas = 54 block
    // streams; rough per-pipeline expectation ≈ 340.6 × 9 / 54 ≈ 57 MB/s.
    assert!(mean < 120.0, "contended mean {mean:.1} should be well below solo 340");
    assert!(mean > 20.0, "mean {mean:.1} suspiciously low");
}

#[test]
fn read_prefers_memory_replica_and_is_faster() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/hot", 10 * MB, ReplicationVector::msh(1, 0, 2), ClientLocation::OffCluster)
        .unwrap();
    sim.run_to_completion();
    let read = sim.submit_read("/hot", ClientLocation::OffCluster).unwrap();
    let reports = sim.run_to_completion();
    let r = reports.iter().find(|r| r.job == read).unwrap();
    // The rate-based policy reads from memory (3224.8 MB/s) through the
    // NIC (1250 MB/s): NIC-bound, far above the 177 MB/s HDD read rate.
    let t = r.throughput_mbps();
    assert!(t > 1000.0, "expected NIC-bound memory read, got {t:.1} MB/s");
}

#[test]
fn hdd_only_read_runs_at_hdd_read_rate() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/cold", 10 * MB, ReplicationVector::msh(0, 0, 3), ClientLocation::OffCluster)
        .unwrap();
    sim.run_to_completion();
    sim.submit_read("/cold", ClientLocation::OffCluster).unwrap();
    let reports = sim.run_to_completion();
    let t = reports.last().unwrap().throughput_mbps();
    assert!((t - 177.1).abs() < 8.0, "expected ~177 MB/s HDD read, got {t:.1}");
}

#[test]
fn local_read_skips_network() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    // Write from worker 0 so a replica lands locally.
    sim.submit_write(
        "/loc",
        5 * MB,
        ReplicationVector::msh(1, 0, 2),
        ClientLocation::OnWorker(octopus_common::WorkerId(0)),
    )
    .unwrap();
    sim.run_to_completion();
    sim.submit_read("/loc", ClientLocation::OnWorker(octopus_common::WorkerId(0))).unwrap();
    let reports = sim.run_to_completion();
    let t = reports.last().unwrap().throughput_mbps();
    // Local memory read: raw 3224.8 MB/s, no NIC cap.
    assert!(t > 2000.0, "expected >2 GB/s local memory read, got {t:.1}");
}

#[test]
fn replication_settles_set_replication_moves() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/mv", 5 * MB, ReplicationVector::msh(0, 0, 3), ClientLocation::OffCluster)
        .unwrap();
    sim.run_to_completion();
    // Prefetch one replica into memory (the paper's Pegasus optimization).
    sim.master().set_replication("/mv", ReplicationVector::msh(1, 0, 2)).unwrap();
    sim.settle_replication().unwrap();
    let blocks = sim
        .master()
        .get_file_block_locations("/mv", 0, u64::MAX, ClientLocation::OffCluster)
        .unwrap();
    for b in &blocks {
        let mems = b.locations.iter().filter(|l| l.tier == StorageTier::Memory.id()).count();
        let hdds = b.locations.iter().filter(|l| l.tier == StorageTier::Hdd.id()).count();
        assert_eq!(mems, 1, "one memory replica per block after the move");
        assert_eq!(hdds, 2, "trimmed back to two HDD replicas");
    }
}

#[test]
fn timers_interleave_with_jobs() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/t", 10 * MB, ReplicationVector::msh(0, 0, 3), ClientLocation::OffCluster)
        .unwrap();
    sim.schedule_timer(0.01, 77);
    let mut saw_timer = false;
    let mut saw_job = false;
    while let Some(ev) = sim.next_sim_event() {
        match ev {
            SimEvent::Timer(77) => saw_timer = true,
            SimEvent::JobDone(_) => {
                saw_job = true;
                break;
            }
            _ => {}
        }
    }
    assert!(saw_timer && saw_job);
}

#[test]
fn sampler_runs_periodically() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    sim.submit_write("/s", 50 * MB, ReplicationVector::msh(0, 0, 3), ClientLocation::OffCluster)
        .unwrap();
    let mut samples = Vec::new();
    sim.run_with_sampler(0.05, |t| samples.push(t));
    // 50 MB at ~126 MB/s ≈ 0.4 s → ~8 samples.
    assert!(samples.len() >= 5, "got {} samples", samples.len());
    assert!(samples.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn write_failure_reported_when_cluster_full() {
    let mut c = ClusterConfig::paper_cluster_scaled(0.0001); // ~13 MB HDDs
    c.block_size = MB;
    let mut sim = SimCluster::new(c).unwrap();
    // Ask for far more than fits.
    sim.submit_write("/big", 600 * MB, ReplicationVector::msh(0, 0, 3), ClientLocation::OffCluster)
        .unwrap();
    let reports = sim.run_to_completion();
    assert!(reports[0].failed.is_some(), "expected placement failure");
}

#[test]
fn nr_conn_feedback_reaches_policies() {
    let mut sim = SimCluster::new(sim_config()).unwrap();
    // Start a long HDD write; while it runs, the snapshot must show
    // non-zero connections on the involved media.
    sim.submit_write(
        "/busy",
        100 * MB,
        ReplicationVector::msh(0, 0, 3),
        ClientLocation::OffCluster,
    )
    .unwrap();
    // Step one event (first block in flight after submit).
    let snap = sim.master().snapshot();
    let busy_media = snap.media.iter().filter(|m| m.nr_conn > 0).count();
    assert!(busy_media >= 3, "expected ≥3 busy media, saw {busy_media}");
    sim.run_to_completion();
    let snap = sim.master().snapshot();
    assert!(snap.media.iter().all(|m| m.nr_conn == 0), "connections drained");
}

#[test]
fn throughput_units_sane() {
    // Guard the units: mbps_to_bytes_per_sec round-trips through reports.
    let rate = mbps_to_bytes_per_sec(126.3);
    assert!((mbps(rate) - 126.3).abs() < 1e-9);
}
