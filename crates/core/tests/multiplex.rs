//! Tests of the multiplexed transport: response demultiplexing, per-peer
//! in-flight caps, server-side idle-connection reaping, and the
//! pipeline-abort semantics the mux servers rely on (committed replicas
//! survive late aborts; aborted stages return their write reservations;
//! scrub handling survives unmapped media).

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus_common::{
    BlockData, ClientLocation, ClusterConfig, MediaId, ReplicationVector, RpcConfig, ServerConfig,
    MB,
};
use octopus_core::net::frame::{read_mux_frame, write_mux_frame};
use octopus_core::net::proto::{WorkerRequest, WorkerResponse};
use octopus_core::net::worker_server::{call_worker, scrub_and_report};
use octopus_core::net::{MasterServer, NetCluster, RpcClient};
use octopus_master::Master;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn client_cfg() -> RpcConfig {
    RpcConfig::fast_test()
}

#[test]
fn interleaved_responses_reach_their_own_callers() {
    // A server that reads TWO requests off one connection before answering
    // either, then replies in REVERSE order. With one connection per peer
    // both calls share the socket, so only correct request-id demux (not
    // arrival order) can route each response to its caller.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut s = listener.accept().unwrap().0;
        let (id_a, frame_a) = read_mux_frame(&mut s).unwrap().unwrap();
        let (id_b, frame_b) = read_mux_frame(&mut s).unwrap().unwrap();
        write_mux_frame(&mut s, id_b, &[&frame_b]).unwrap();
        write_mux_frame(&mut s, id_a, &[&frame_a]).unwrap();
    });

    let client = Arc::new(RpcClient::new(RpcConfig { conns_per_peer: 1, ..client_cfg() }));
    let mut callers = Vec::new();
    for i in 0..2u8 {
        let client = Arc::clone(&client);
        callers.push(std::thread::spawn(move || {
            let payload = vec![i; 64 + i as usize];
            let echoed = client.call_raw(addr, &payload, true).unwrap();
            assert_eq!(echoed, payload, "caller {i} got someone else's response");
        }));
    }
    for c in callers {
        c.join().unwrap();
    }
    server.join().unwrap();
}

#[test]
fn inflight_cap_blocks_the_next_caller_instead_of_erroring() {
    // Cap of 2 in-flight calls per peer. The server holds the first two
    // responses; a third call must WAIT for a slot (not fail), then
    // complete once a response frees one.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = Arc::new(AtomicUsize::new(0));
    let served_srv = Arc::clone(&served);
    // Detached: the accept loop blocks in `incoming()` until process exit.
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut s) = conn else { break };
            let served = Arc::clone(&served_srv);
            std::thread::spawn(move || {
                while let Ok(Some((id, frame))) = read_mux_frame(&mut s) {
                    let n = served.fetch_add(1, Ordering::SeqCst);
                    if n < 2 {
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    if write_mux_frame(&mut s, id, &[&frame]).is_err() {
                        break;
                    }
                    if n >= 2 {
                        break;
                    }
                }
            });
        }
    });

    let client = Arc::new(RpcClient::new(RpcConfig {
        conns_per_peer: 2,
        max_inflight_per_peer: 2,
        read_timeout_ms: 5_000,
        max_retries: 0,
        ..client_cfg()
    }));
    let mut held = Vec::new();
    for i in 0..2u8 {
        let client = Arc::clone(&client);
        held.push(std::thread::spawn(move || client.call_raw(addr, &[i; 8], true).unwrap()));
    }
    // Let the first two occupy both in-flight slots.
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    let third = client.call_raw(addr, b"third", true).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(third, b"third");
    assert!(
        elapsed >= Duration::from_millis(200),
        "third call should have waited for a slot, finished in {elapsed:?}"
    );
    for h in held {
        h.join().unwrap();
    }
    assert!(served.load(Ordering::SeqCst) >= 3);
    client.evict(addr);
}

#[test]
fn idle_reaper_severs_silent_connections_but_not_active_ones() {
    let master = Arc::new(Master::new(config()).unwrap());
    let mut server = MasterServer::spawn_with(
        master,
        "127.0.0.1:0",
        ServerConfig { idle_conn_ms: 150, reap_interval_ms: 25, ..ServerConfig::fast_test() },
    )
    .unwrap();
    let addr = server.addr();

    let mut silent = TcpStream::connect(addr).unwrap();
    silent.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let mut active = TcpStream::connect(addr).unwrap();
    active.set_read_timeout(Some(Duration::from_secs(3))).unwrap();

    // Keep the active connection talking (any payload earns a response
    // frame — a decode error is still an answer) while the silent one
    // crosses the idle horizon.
    for id in 0..8u64 {
        write_mux_frame(&mut active, id, &[b"ping"]).unwrap();
        let (rid, _) = read_mux_frame(&mut active).unwrap().expect("active conn must stay served");
        assert_eq!(rid, id);
        std::thread::sleep(Duration::from_millis(50));
    }

    // The reaper severed the silent connection: its read sees EOF.
    let mut buf = [0u8; 1];
    let got = silent.read(&mut buf).expect("severed socket reads EOF, not a timeout");
    assert_eq!(got, 0, "silent connection should have been reaped");

    // The active connection still works after the reaping.
    write_mux_frame(&mut active, 99, &[b"still-here"]).unwrap();
    assert!(read_mux_frame(&mut active).unwrap().is_some());
    server.shutdown();
}

#[test]
fn scrub_skips_corrupt_replicas_on_unmapped_media() {
    // Regression: the scrub handler used `?` on tier_of(media), so one
    // unmapped medium aborted the whole response AFTER deletions had
    // already happened — the master never heard about them. Unmapped
    // media must be skipped; mapped ones must still be deleted+reported.
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster).with_rpc_config(client_cfg());
    let data = {
        let BlockData::Real(b) = BlockData::generate_real(MB as usize, 7) else { unreachable!() };
        b.to_vec()
    };
    client.write_file("/f", &data, ReplicationVector::from_replication_factor(2)).unwrap();
    let blocks = client.get_file_block_locations("/f", 0, u64::MAX).unwrap();
    let victim = blocks[0].locations[0];
    let block = blocks[0].block;
    let worker = cluster.workers().iter().find(|w| w.id() == victim.worker).cloned().unwrap();

    // One corrupt replica on a medium this worker no longer maps, one on a
    // real medium: only the real one is handled, and the bogus entry does
    // not abort it.
    let handled = scrub_and_report(
        &worker,
        cluster.master_addr(),
        vec![(block.id, MediaId(9_999)), (block.id, victim.media)],
    );
    assert_eq!(handled, 1, "the mapped replica must be handled despite the unmapped one");
    assert!(
        !cluster.master().block_locations(block.id).contains(&victim),
        "the deletion must have been reported to the master"
    );
    // The data survives via the other replica.
    assert_eq!(client.read_file("/f").unwrap(), data);
}

#[test]
fn dead_pipeline_tail_leaves_two_live_replicas_and_no_reservation_leak() {
    // Kill the tail of a 3-stage pipeline before the write: stages 1 and 2
    // store and commit, the forward to the tail fails, and the abort for
    // the tail's pending replica must (a) leave the two committed replicas
    // alone and (b) return the tail's scheduled-write reservation.
    let mut cluster = NetCluster::start(config()).unwrap();
    let master = Arc::clone(cluster.master());
    master.create_file("/p", ReplicationVector::from_replication_factor(3), None).unwrap();
    let (block, pipeline) = master.add_block("/p", MB, ClientLocation::OffCluster).unwrap();
    assert_eq!(pipeline.len(), 3);
    let tail = pipeline[2];

    let tail_idx = (0..cluster.workers().len())
        .find(|&i| cluster.workers()[i].id() == tail.worker)
        .expect("tail worker exists");
    cluster.kill_worker(tail_idx);

    let data = BlockData::generate_real(MB as usize, 3);
    let first = cluster.worker_addr(pipeline[0].worker).unwrap();
    let res = call_worker(
        first,
        &WorkerRequest::WriteBlock(block, pipeline[0].media, pipeline[1..].to_vec(), data),
    )
    .unwrap();
    let WorkerResponse::Stored(stored) = res else { panic!("expected Stored, got {res:?}") };
    assert_eq!(stored.len(), 2, "only the two live stages stored");

    let live = master.block_locations(block.id);
    assert_eq!(live.len(), 2, "blockmap must keep the two committed replicas, got {live:?}");
    assert!(live.contains(&pipeline[0]) && live.contains(&pipeline[1]));
    assert!(
        master.pending_locations(block.id).is_empty(),
        "the dead tail's pending entry must be cleared"
    );
    // Regression: the abort used to release 0 of the reserved bytes,
    // leaking the tail's scheduled-write reservation forever.
    assert_eq!(
        master.scheduled_bytes(tail.media),
        0,
        "aborting the unreachable tail must return its reservation"
    );
}

#[test]
fn late_abort_after_tail_commit_is_refused() {
    // The tail stores and commits but its response is lost (connection
    // dropped): the forwarding stage sees the failure and sends an abort
    // for the tail's location. The master must refuse to demote the
    // committed replica.
    let cluster = NetCluster::start(config()).unwrap();
    let master = Arc::clone(cluster.master());
    master.create_file("/q", ReplicationVector::from_replication_factor(3), None).unwrap();
    let (block, pipeline) = master.add_block("/q", MB, ClientLocation::OffCluster).unwrap();
    let tail_addr = cluster.worker_addr(pipeline[2].worker).unwrap();
    octopus_core::net::faults::inject(tail_addr, octopus_core::net::FaultAction::DropConnection);

    let data = BlockData::generate_real(MB as usize, 4);
    let first = cluster.worker_addr(pipeline[0].worker).unwrap();
    call_worker(
        first,
        &WorkerRequest::WriteBlock(block, pipeline[0].media, pipeline[1..].to_vec(), data),
    )
    .unwrap();
    octopus_core::net::faults::clear(tail_addr);

    let live = master.block_locations(block.id);
    assert_eq!(
        live.len(),
        3,
        "all three stages committed; the late abort must not demote the tail ({live:?})"
    );
}

#[test]
fn resending_a_stored_block_is_idempotent_when_the_bytes_match() {
    // Pipeline recovery re-sends a block to a worker that already holds it
    // when the original store succeeded but its response was lost (one
    // severed mux connection fails every call in flight on it). The
    // re-store of identical bytes must succeed as a no-op; different bytes
    // under the same block id must still be refused.
    let cluster = NetCluster::start(config()).unwrap();
    let master = Arc::clone(cluster.master());
    master.create_file("/r", ReplicationVector::from_replication_factor(1), None).unwrap();
    let (block, pipeline) = master.add_block("/r", MB, ClientLocation::OffCluster).unwrap();
    let head = cluster.worker_addr(pipeline[0].worker).unwrap();

    let data = BlockData::generate_real(MB as usize, 5);
    let req = WorkerRequest::WriteBlock(block, pipeline[0].media, Vec::new(), data.clone());
    let WorkerResponse::Stored(first) = call_worker(head, &req).unwrap() else {
        panic!("expected Stored")
    };
    let WorkerResponse::Stored(again) = call_worker(head, &req).unwrap() else {
        panic!("expected the identical re-send to succeed idempotently")
    };
    assert_eq!(first, again);
    assert_eq!(master.block_locations(block.id).len(), 1, "still exactly one replica");

    let other = BlockData::generate_real(MB as usize, 6);
    let clash =
        call_worker(head, &WorkerRequest::WriteBlock(block, pipeline[0].media, Vec::new(), other));
    assert!(clash.is_err(), "different bytes under a stored block id must be refused: {clash:?}");
}
