//! Tests of the MOOP-driven data balancer.

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, StorageTier, WorkerId, MB};
use octopus_core::Cluster;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Per-HDD-media used fraction, sorted descending.
fn hdd_fracs(cluster: &Cluster) -> Vec<f64> {
    let snap = cluster.master().snapshot();
    let mut fracs: Vec<f64> = snap
        .media
        .iter()
        .filter(|m| m.tier == StorageTier::Hdd.id())
        .map(|m| (m.capacity - m.remaining) as f64 / m.capacity as f64)
        .collect();
    fracs.sort_by(|a, b| b.partial_cmp(a).unwrap());
    fracs
}

fn spread(fracs: &[f64]) -> f64 {
    fracs.first().unwrap() - fracs.last().unwrap()
}

#[test]
fn balancer_reduces_skew() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(6, 64 * MB, MB)).unwrap();
    // Skew the cluster: single-replica files written from worker 0 land on
    // worker 0's HDD (writer-local first replica).
    let client = cluster.client(ClientLocation::OnWorker(WorkerId(0)));
    for i in 0..12 {
        client
            .write_file(
                &format!("/skew{i}"),
                &payload(MB as usize, i),
                ReplicationVector::msh(0, 0, 1),
            )
            .unwrap();
    }
    cluster.pump_heartbeats();
    let before = hdd_fracs(&cluster);
    assert!(spread(&before) > 0.10, "setup must be skewed, spread {:.3}", spread(&before));

    // Balance until converged.
    for _ in 0..20 {
        if cluster.run_balancer_round(0.05, 4).unwrap() == 0 {
            break;
        }
    }
    cluster.pump_heartbeats();
    let after = hdd_fracs(&cluster);
    assert!(
        spread(&after) < spread(&before) / 2.0,
        "spread {:.3} -> {:.3}",
        spread(&before),
        spread(&after)
    );

    // Every file still reads correctly with exactly one replica.
    for i in 0..12 {
        let path = format!("/skew{i}");
        assert_eq!(client.read_file(&path).unwrap(), payload(MB as usize, i));
        let blocks = cluster
            .master()
            .get_file_block_locations(&path, 0, u64::MAX, ClientLocation::OffCluster)
            .unwrap();
        assert_eq!(blocks[0].locations.len(), 1);
    }
}

#[test]
fn balanced_cluster_is_a_noop() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(6, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    for i in 0..6 {
        client
            .write_file(
                &format!("/even{i}"),
                &payload(MB as usize, i),
                ReplicationVector::from_replication_factor(3),
            )
            .unwrap();
    }
    cluster.pump_heartbeats();
    assert_eq!(cluster.run_balancer_round(0.20, 8).unwrap(), 0);
}
