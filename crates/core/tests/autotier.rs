//! Auto-tiering migration tests: the heat-driven planner moves files
//! between tiers through ordinary `setReplication` edits, the networked
//! monitor executes them with bounded background bandwidth, and the whole
//! path stays robust to worker deaths mid-migration.

use std::sync::Arc;
use std::time::{Duration, Instant};

use octopus_common::{
    BlockTouches, ClientLocation, ClusterConfig, DecisionKind, ReplicationVector, StorageTier,
    TierId, MB,
};
use octopus_core::net::monitor::MigrationRound;
use octopus_core::net::{faults, FaultAction};
use octopus_core::{Cluster, NetCluster};
use octopus_master::{AutoTierConfig, MigrationDirection, ReplicationTask};
use octopus_policies::EwmaThresholdClassifier;

fn net_config(n: u32) -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(n, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Polls `check` until it returns true or the deadline passes.
fn eventually(timeout: Duration, mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Memory-tier replica count of a file's first block, as the master sees it.
fn memory_replicas(cluster: &Cluster, path: &str) -> usize {
    cluster
        .master()
        .get_file_block_locations(path, 0, 1, ClientLocation::OffCluster)
        .unwrap()
        .first()
        .map(|b| b.locations.iter().filter(|l| l.tier == StorageTier::Memory.id()).count())
        .unwrap_or(0)
}

/// Marks every block of `path` as read `reads` times, as if workers had
/// reported the touches over heartbeats.
fn inject_reads(cluster: &Cluster, path: &str, reads: u32) {
    let touches: Vec<BlockTouches> = cluster
        .master()
        .get_file_block_locations(path, 0, u64::MAX, ClientLocation::OffCluster)
        .unwrap()
        .iter()
        .map(|lb| BlockTouches { block: lb.block.id, reads, writes: 0 })
        .collect();
    cluster.master().observe_touches(&touches, cluster.now_ms());
}

/// End-to-end on the in-process cluster: hot files gain a memory replica,
/// cold files lose theirs, and the audit ring records each move.
#[test]
fn autotier_round_moves_hot_up_and_cold_down() {
    let cluster = Cluster::start(ClusterConfig::test_cluster(4, 64 * MB, MB)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 11);
    client.write_file("/hot", &data, ReplicationVector::msh(0, 0, 1)).unwrap();
    client.write_file("/cold", &data, ReplicationVector::msh(1, 0, 1)).unwrap();
    inject_reads(&cluster, "/hot", 8);

    let classifier = EwmaThresholdClassifier::default();
    let decisions = cluster.run_autotier_round(&classifier, &AutoTierConfig::default()).unwrap();
    assert_eq!(decisions.len(), 2, "decisions: {decisions:?}");
    let promote = decisions.iter().find(|d| d.path == "/hot").unwrap();
    assert_eq!(promote.direction, MigrationDirection::Promote);
    let demote = decisions.iter().find(|d| d.path == "/cold").unwrap();
    assert_eq!(demote.direction, MigrationDirection::Demote);

    // The replication round realized both moves.
    assert_eq!(memory_replicas(&cluster, "/hot"), 1);
    assert_eq!(memory_replicas(&cluster, "/cold"), 0);
    // Data is intact on both paths.
    assert_eq!(client.read_file("/hot").unwrap(), data);
    assert_eq!(client.read_file("/cold").unwrap(), data);

    // Both moves are in the audit ring, promote and demote.
    let events = cluster.master().recent_migrations(10);
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| e.kind == DecisionKind::Migration));
    assert!(events.iter().any(|e| e.policy.contains("promote")));
    assert!(events.iter().any(|e| e.policy.contains("demote")));

    // A quiet follow-up round plans nothing new for /hot (it keeps its
    // replica while hot) — but /cold's heat has not changed either, and
    // it already lost its memory replica, so the round is empty.
    inject_reads(&cluster, "/hot", 8);
    let again = cluster.run_autotier_round(&classifier, &AutoTierConfig::default()).unwrap();
    assert!(again.is_empty(), "steady state must plan no migrations: {again:?}");
}

/// Satellite: an explicit `setReplication` downgrade ⟨1,1,1⟩ → ⟨0,1,1⟩
/// converges through the monitor's over-replication removal — the master
/// drops the memory location, a Removal audit event is recorded, and the
/// worker that hosted the memory replica no longer reports it.
#[test]
fn set_replication_downgrade_converges_with_removal_audit() {
    let cluster = NetCluster::start(net_config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 23);
    client.write_file("/down", &data, ReplicationVector::msh(1, 1, 1)).unwrap();
    let lb = &client.get_file_block_locations("/down", 0, u64::MAX).unwrap()[0];
    let block = lb.block;
    assert_eq!(lb.locations.len(), 3);
    let mem_loc =
        *lb.locations.iter().find(|l| l.tier == StorageTier::Memory.id()).expect("memory replica");

    let old = client.set_replication("/down", ReplicationVector::msh(0, 1, 1)).unwrap();
    assert_eq!(old, ReplicationVector::msh(1, 1, 1));

    let converged = eventually(Duration::from_secs(10), || {
        let _ = cluster.run_replication_round();
        let locs = &client.get_file_block_locations("/down", 0, u64::MAX).unwrap()[0].locations;
        locs.len() == 2 && locs.iter().all(|l| l.tier != StorageTier::Memory.id())
    });
    assert!(converged, "master view must lose the memory replica");

    // Worker-side invalidation: the hosting worker no longer reports the
    // block on its memory medium.
    let host = cluster.workers().iter().find(|w| w.id() == mem_loc.worker).unwrap();
    let still_reported = host
        .block_report()
        .iter()
        .any(|(b, media)| b.id == block.id && host.tier_of(*media).unwrap() == TierId(0));
    assert!(!still_reported, "worker must drop the invalidated memory replica");

    // The removal left an audit trail.
    let events = client.explain_placement(block.id).unwrap();
    let removal = events.iter().find(|e| e.kind == DecisionKind::Removal);
    assert!(removal.is_some(), "no Removal audit event: {events:?}");
    assert_eq!(removal.unwrap().chosen, vec![mem_loc]);

    // The file survives on the remaining tiers.
    assert_eq!(client.read_file("/down").unwrap(), data);
}

/// Drives heat into `paths` through real reads until the master's score
/// classifies them hot, then returns.
fn heat_up(client: &octopus_core::RemoteFs, paths: &[&str], data: &[Vec<u8>]) {
    for (path, d) in paths.iter().zip(data) {
        for _ in 0..8 {
            assert_eq!(&client.read_file(path).unwrap(), d);
        }
    }
    for path in paths {
        let hot = eventually(Duration::from_secs(10), || {
            client.heat(path).map(|h| h.score >= 1.0).unwrap_or(false)
        });
        assert!(hot, "{path} never became hot");
    }
}

/// Tentpole, networked: a migration round promotes hot HDD files into
/// memory with copies paced to the configured bandwidth cap, and the
/// `migrations` RPC lists the decisions.
#[test]
fn migration_round_paces_copies_to_the_bandwidth_cap() {
    let cluster = NetCluster::start(net_config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let paths = ["/p0", "/p1", "/p2", "/p3"];
    let data: Vec<Vec<u8>> = (0..4).map(|i| payload(MB as usize, 40 + i as u64)).collect();
    for (path, d) in paths.iter().zip(&data) {
        client.write_file(path, d, ReplicationVector::msh(0, 0, 1)).unwrap();
    }
    heat_up(&client, &paths, &data);

    // 4 MB of promotions under an 8 MB/s cap: the round must take at
    // least ~500 ms, entirely as deliberate pacing sleeps.
    let cfg = AutoTierConfig { max_copy_bps: 8 * MB, ..AutoTierConfig::default() };
    let classifier = EwmaThresholdClassifier::default();
    let started = Instant::now();
    let round: MigrationRound = cluster.run_migration_round(&classifier, &cfg).unwrap();
    let elapsed = started.elapsed();

    assert_eq!(round.promoted, 4, "round: {round:?}");
    assert_eq!(round.demoted, 0);
    assert_eq!(round.outcome.copies_ok, 4);
    assert_eq!(round.bytes_copied, 4 * MB);
    assert!(round.paced > Duration::ZERO, "no pacing sleep recorded");

    // The paced rate honours the cap (generous slack for scheduling).
    let rate = round.bytes_copied as f64 / elapsed.as_secs_f64();
    assert!(
        rate <= 1.25 * (8 * MB) as f64,
        "migration rate {:.0} B/s exceeds the {} B/s cap",
        rate,
        8 * MB
    );
    assert!(elapsed >= Duration::from_millis(450), "4 MB at 8 MB/s cannot take {elapsed:?}");

    // The copies really flowed through the workers' memory media
    // (media_io-guarded write path), and the master counted the bytes.
    let snap = cluster.metrics_snapshot().unwrap();
    assert!(
        snap.counter_where("worker_write_bytes_total", |l| l.tier == Some(TierId(0))) >= 4 * MB,
        "memory-tier write bytes missing"
    );
    assert!(snap.counter("master_migration_bytes_total") >= 4 * MB);
    assert!(snap.counter("master_migration_paced_ms_total") >= 1);
    assert!(
        snap.counter_where("master_migrations_total", |l| {
            l.request_type.as_deref() == Some("promote")
        }) >= 4
    );

    // All four promotions are visible over the Migrations RPC.
    let events = client.migrations(10).unwrap();
    assert_eq!(events.len(), 4, "events: {events:?}");
    assert!(events.iter().all(|e| e.kind == DecisionKind::Migration));

    // And the files now serve from memory.
    for (path, d) in paths.iter().zip(&data) {
        let locs = &client.get_file_block_locations(path, 0, u64::MAX).unwrap()[0].locations;
        assert!(
            locs.iter().any(|l| l.tier == StorageTier::Memory.id()),
            "{path} has no memory replica: {locs:?}"
        );
        assert_eq!(&client.read_file(path).unwrap(), d);
    }
}

/// Robustness: the worker hosting the *source* replica dies mid-migration.
/// The copy uses a surviving source (or fails and is re-planned), and the
/// promotion eventually lands without data loss.
#[test]
fn migration_survives_source_worker_death() {
    let mut cluster = NetCluster::start(net_config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 51);
    client.write_file("/src-death", &data, ReplicationVector::msh(0, 0, 2)).unwrap();
    heat_up(&client, &["/src-death"], &[data.clone()]);

    // Kill one of the two HDD hosts.
    let victim =
        client.get_file_block_locations("/src-death", 0, u64::MAX).unwrap()[0].locations[0].worker;
    let idx = cluster.workers().iter().position(|w| w.id() == victim).unwrap();
    cluster.kill_worker(idx);

    let cfg = AutoTierConfig::default();
    let classifier = EwmaThresholdClassifier::default();
    let promoted = eventually(Duration::from_secs(15), || {
        cluster.tick();
        let _ = cluster.run_migration_round(&classifier, &cfg);
        client.get_file_block_locations("/src-death", 0, u64::MAX).unwrap()[0]
            .locations
            .iter()
            .any(|l| l.tier == StorageTier::Memory.id())
    });
    assert!(promoted, "promotion must survive a source worker death");
    assert_eq!(client.read_file("/src-death").unwrap(), data);
}

/// Robustness: the worker chosen as the *destination* dies after the copy
/// was planned (pending replica registered) but before it executes. The
/// failure detector drops the dead worker's pending location and a later
/// round re-places the memory replica on a live worker.
#[test]
fn migration_survives_destination_worker_death() {
    let mut cluster = NetCluster::start(net_config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 57);
    client.write_file("/dst-death", &data, ReplicationVector::msh(0, 0, 2)).unwrap();
    heat_up(&client, &["/dst-death"], &[data.clone()]);

    // Plan the promotion and peek at the scheduled copy's destination,
    // then kill that worker before any round executes the copy.
    let classifier = EwmaThresholdClassifier::default();
    let decisions = cluster.master().autotier_scan(&classifier, &AutoTierConfig::default());
    assert_eq!(decisions.len(), 1, "decisions: {decisions:?}");
    let tasks = cluster.master().replication_scan();
    let ReplicationTask::Copy { target, .. } =
        tasks.iter().find(|t| matches!(t, ReplicationTask::Copy { .. })).unwrap()
    else {
        unreachable!()
    };
    let dst = target.worker;
    let idx = cluster.workers().iter().position(|w| w.id() == dst).unwrap();
    cluster.kill_worker(idx);

    // Once the master declares the worker dead its pending replica is
    // dropped, and a later round re-routes the copy to a live worker.
    let promoted = eventually(Duration::from_secs(15), || {
        cluster.tick();
        let _ = cluster.run_migration_round(&classifier, &AutoTierConfig::default());
        client.get_file_block_locations("/dst-death", 0, u64::MAX).unwrap()[0]
            .locations
            .iter()
            .any(|l| l.tier == StorageTier::Memory.id() && l.worker != dst)
    });
    assert!(promoted, "promotion must re-route around a dead destination");
    assert_eq!(client.read_file("/dst-death").unwrap(), data);
}

/// Robustness: a migration copy whose response is lost mid-flight is
/// counted as failed and aborted at the master — not leaked as pending —
/// and the next rounds converge anyway.
#[test]
fn failed_migration_copy_is_aborted_and_retried() {
    let cluster = NetCluster::start(net_config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 63);
    client.write_file("/flaky", &data, ReplicationVector::msh(0, 0, 1)).unwrap();
    heat_up(&client, &["/flaky"], &[data.clone()]);

    // Whatever destination the monitor picks, its Replicate response is
    // dropped mid-flight (the ambiguous failure: maybe executed, reply
    // lost).
    for w in cluster.workers() {
        faults::inject(cluster.worker_addr(w.id()).unwrap(), FaultAction::DropConnection);
    }
    let classifier = EwmaThresholdClassifier::default();
    let round = cluster.run_migration_round(&classifier, &AutoTierConfig::default()).unwrap();
    for w in cluster.workers() {
        faults::clear(cluster.worker_addr(w.id()).unwrap());
    }
    assert!(round.outcome.copies_failed >= 1, "round: {round:?}");

    // The abort cleared the pending replica, so later rounds re-plan and
    // the promotion lands.
    let promoted = eventually(Duration::from_secs(15), || {
        let _ = cluster.run_migration_round(&classifier, &AutoTierConfig::default());
        client.get_file_block_locations("/flaky", 0, u64::MAX).unwrap()[0]
            .locations
            .iter()
            .any(|l| l.tier == StorageTier::Memory.id())
    });
    assert!(promoted, "aborted copy must be retried to convergence");
    assert_eq!(client.read_file("/flaky").unwrap(), data);
}

/// Foreground reads stay responsive while the auto-tiering daemon
/// migrates in the background under its bandwidth cap.
#[test]
fn foreground_reads_bounded_under_background_migration() {
    let mut cluster = NetCluster::start(net_config(4)).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let fg = payload(MB as usize, 61);
    client.write_file("/fg", &fg, ReplicationVector::msh(0, 1, 1)).unwrap();
    let paths = ["/bg0", "/bg1", "/bg2", "/bg3"];
    let data: Vec<Vec<u8>> = (0..4).map(|i| payload(MB as usize, 70 + i as u64)).collect();
    for (path, d) in paths.iter().zip(&data) {
        client.write_file(path, d, ReplicationVector::msh(0, 0, 1)).unwrap();
    }
    heat_up(&client, &paths, &data);

    // Migrate in the background, capped at 4 MB/s, while timing
    // foreground reads.
    let cfg = AutoTierConfig { max_copy_bps: 4 * MB, ..AutoTierConfig::default() };
    cluster.start_autotier(Arc::new(EwmaThresholdClassifier::default()), cfg, 10);
    let mut lat = Vec::with_capacity(60);
    for _ in 0..60 {
        let t = Instant::now();
        assert_eq!(client.read_file("/fg").unwrap(), fg);
        lat.push(t.elapsed());
    }
    cluster.stop_autotier();

    lat.sort();
    let p99 = lat[lat.len() * 99 / 100];
    assert!(
        p99 < Duration::from_millis(500),
        "foreground p99 {p99:?} too slow under background migration"
    );

    // The daemon made progress: the hot files were promoted.
    let promoted = eventually(Duration::from_secs(10), || {
        let _ = {
            // One more manual round in case the daemon was stopped
            // between planning and realizing the last copy.
            let cfg = AutoTierConfig::default();
            cluster.run_migration_round(&EwmaThresholdClassifier::default(), &cfg)
        };
        paths.iter().all(|p| {
            client.get_file_block_locations(p, 0, u64::MAX).unwrap()[0]
                .locations
                .iter()
                .any(|l| l.tier == StorageTier::Memory.id())
        })
    });
    assert!(promoted, "background daemon never promoted the hot files");
    assert!(!client.migrations(20).unwrap().is_empty());
}
