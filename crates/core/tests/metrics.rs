//! Cluster-wide metrics: the merged snapshot exposes master, worker, and
//! RPC-client series; retries/failovers are counted; and the per-medium
//! I/O-connection gauge feeds the heartbeat `NrConn` the placement
//! policies consume (§3.2).

use std::time::Duration;

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, WorkerId, MB};
use octopus_core::net::{faults, FaultAction};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

#[test]
fn snapshot_exposes_master_worker_and_client_series() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize + 77, 3);
    client.mkdir("/m").unwrap();
    client.write_file("/m/f", &data, rf(2)).unwrap();
    assert_eq!(client.read_file("/m/f").unwrap(), data);

    let snap = cluster.metrics_snapshot().unwrap();
    // Master op counters/latency, per request type.
    assert!(snap.counter("master_requests_total") > 0);
    assert!(
        snap.counter_where("master_requests_total", |l| {
            l.request_type.as_deref() == Some("CreateFile")
        }) >= 1
    );
    assert!(snap.histogram_count("master_request_us") > 0);
    // Heartbeat liveness.
    assert!(snap.counter("master_heartbeats_total") > 0);
    assert_eq!(snap.gauge("master_live_workers"), 4);
    // Worker data-path counters, labeled with tier and worker.
    assert!(snap.counter("worker_requests_total") > 0);
    assert!(snap.counter("worker_write_bytes_total") >= data.len() as u64);
    assert!(snap.counter("worker_read_bytes_total") > 0);
    assert!(snap.histogram_count("worker_write_us") > 0);
    assert!(snap.counter_where("worker_write_bytes_total", |l| l.tier.is_some()) > 0);
    // RPC client instrumentation (the shared pooled client).
    assert!(snap.counter("rpc_client_requests_total") > 0);
    assert!(snap.histogram_count("rpc_client_request_us") > 0);
    // Client-path byte counters ride the servers' shared client registry
    // for default-config clients.
    assert!(snap.counter("client_write_bytes_total") >= data.len() as u64);
    assert!(snap.counter("client_read_bytes_total") >= data.len() as u64);

    // Deterministic text exposition carries the same names with labels.
    let text = snap.render_text();
    assert!(text.contains("master_requests_total{request_type=\"CreateFile\"}"));
    assert!(text.contains("worker_write_bytes_total{"));
    assert!(text.contains("rpc_client_request_us_bucket{"));
    assert!(text.contains("le=\"+Inf\""));
}

#[test]
fn rpc_retries_are_counted_in_the_cluster_snapshot() {
    let cluster = NetCluster::start(config()).unwrap();
    // Default-config client: uses the process-shared RpcClient, so its
    // retries surface in the cluster-wide snapshot.
    let client = cluster.client(ClientLocation::OffCluster);
    let before = cluster.metrics_snapshot().unwrap().counter("rpc_client_retries_total");
    faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    let st = client.status("/").expect("idempotent call retries through dropped connections");
    assert!(st.is_dir);
    let snap = cluster.metrics_snapshot().unwrap();
    // Background heartbeats share the master's fault queue, so the dropped
    // replies may hit either request type — the total is what's guaranteed.
    assert!(
        snap.counter("rpc_client_retries_total") >= before + 2,
        "two dropped replies must surface as at least two retries"
    );
    assert!(
        snap.counter_where("rpc_client_requests_total", |l| {
            l.request_type.as_deref() == Some("Status")
        }) >= 1
    );
}

#[test]
fn checksum_and_replica_failovers_are_counted() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 9);
    client.write_file("/cf", &data, rf(3)).unwrap();

    // The retrieval policy random tie-breaks replica order per request,
    // so no single faulted worker is guaranteed to be read first: corrupt
    // all holders but one and re-read until a failover is counted (each
    // round hits with probability 2/3).
    let blocks = client.get_file_block_locations("/cf", 0, u64::MAX).unwrap();
    let holders: Vec<WorkerId> = blocks[0].locations.iter().map(|l| l.worker).collect();
    let victims = &holders[..holders.len() - 1];
    let mut counted = false;
    for _ in 0..10 {
        for v in victims {
            let addr = cluster.worker_addr(*v).unwrap();
            if faults::pending(addr) == 0 {
                faults::inject(addr, FaultAction::CorruptPayload);
            }
        }
        assert_eq!(client.read_file("/cf").unwrap(), data, "read fails over past the bad replica");
        let snap = cluster.metrics_snapshot().unwrap();
        if snap.counter("client_checksum_failovers_total") >= 1
            && snap.counter("client_replica_failovers_total") >= 1
        {
            counted = true;
            break;
        }
    }
    for v in victims {
        faults::clear(cluster.worker_addr(*v).unwrap());
    }
    assert!(counted, "checksum/replica failovers must surface in the cluster snapshot");
}

#[test]
fn media_io_gauge_feeds_heartbeat_nr_conn_and_policy_snapshot() {
    let cluster = NetCluster::start(config()).unwrap();
    let w = &cluster.workers()[0];
    let medium = w.media()[0].id;

    // Hold a live I/O span on the medium, as an in-flight transfer would.
    let io = w.media_io(medium).unwrap();

    // The gauge is visible immediately in the merged snapshot…
    let snap = cluster.metrics_snapshot().unwrap();
    assert!(
        snap.gauge_where("worker_media_io_conn", |l| l.worker == Some(w.id())) >= 1,
        "live span must show in the worker's I/O-connection gauge"
    );

    // …and the next heartbeat carries it into the master's policy
    // snapshot as the medium's NrConn (§3.2 congestion input).
    let mut seen = false;
    for _ in 0..50 {
        let ps = cluster.master().snapshot();
        if ps.media_nr_conn(medium).unwrap_or(0) >= 1 {
            seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(seen, "heartbeat NrConn must reflect the live I/O span");

    // Releasing the span drains both views.
    drop(io);
    let snap = cluster.metrics_snapshot().unwrap();
    assert_eq!(snap.gauge_where("worker_media_io_conn", |l| l.worker == Some(w.id())), 0);
    let mut drained = false;
    for _ in 0..50 {
        let ps = cluster.master().snapshot();
        if ps.media_nr_conn(medium) == Some(0) {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(drained, "NrConn must fall back to zero after the span ends");
}

#[test]
fn unreachable_worker_scrapes_are_visible_in_cluster_snapshot() {
    let mut cluster = NetCluster::start(config()).unwrap();
    cluster.kill_worker(0);
    let dead = cluster.workers()[0].id();

    // The dead worker no longer silently vanishes from the merge: its
    // failed scrape is counted and its staleness gauge pinned at -1
    // (never successfully scraped).
    let snap = cluster.metrics_snapshot().unwrap();
    assert!(
        snap.counter_where("metrics_scrape_errors_total", |l| l.worker == Some(dead)) >= 1,
        "killed worker's failed scrape must be counted"
    );
    assert_eq!(
        snap.gauge_where("metrics_scrape_age_ms", |l| l.worker == Some(dead)),
        -1,
        "never-scraped worker must report age -1"
    );
    // Live workers were scraped within this snapshot: age present and
    // recent (the gauge reports milliseconds since the last success).
    for w in cluster.workers().iter().skip(1) {
        let age = snap.gauge_where("metrics_scrape_age_ms", |l| l.worker == Some(w.id()));
        assert!((0..10_000).contains(&age), "live worker {} age {age}ms", w.id());
    }

    // The error count grows on every blind snapshot, so a worker that
    // stays unreachable keeps getting louder rather than disappearing.
    let snap2 = cluster.metrics_snapshot().unwrap();
    assert!(snap2.counter_where("metrics_scrape_errors_total", |l| l.worker == Some(dead)) >= 2);
}

#[test]
fn dedicated_client_snapshot_counts_scrape_errors() {
    let mut cluster = NetCluster::start(config()).unwrap();
    let client = cluster
        .client(ClientLocation::OffCluster)
        .with_rpc_config(octopus_common::RpcConfig::fast_test());
    cluster.kill_worker(0);
    let dead = cluster.workers()[0].id();

    let snap = client.cluster_metrics_snapshot().unwrap();
    assert!(
        snap.counter_where("metrics_scrape_errors_total", |l| l.worker == Some(dead)) >= 1,
        "client-side merge must surface the unreachable worker"
    );
    assert_eq!(snap.gauge_where("metrics_scrape_age_ms", |l| l.worker == Some(dead)), -1);
}

#[test]
fn remote_fs_dedicated_client_keeps_its_own_registry() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster
        .client(ClientLocation::OffCluster)
        .with_rpc_config(octopus_common::RpcConfig::fast_test());
    client.mkdir("/own").unwrap();
    let snap = client.metrics_snapshot();
    assert!(
        snap.counter_where("rpc_client_requests_total", |l| {
            l.request_type.as_deref() == Some("Mkdir")
        }) >= 1
    );
}
