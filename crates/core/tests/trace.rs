//! Distributed-tracing integration tests: trace context must survive the
//! wire (client→master→worker), RPC retries must appear as sibling spans
//! under the original parent, and §4.1 checksum failover must keep the
//! replacement replica read inside the original request's trace.

use octopus_common::{
    ClientLocation, ClusterConfig, ReplicationVector, SpanRecord, Trace, WorkerId, MB,
};
use octopus_core::net::{faults, FaultAction};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

/// The most recent assembled trace whose root is `root_name`.
fn latest_trace(snap: &octopus_common::TraceSnapshot, root_name: &str) -> Trace {
    snap.traces()
        .into_iter()
        .find(|t| t.root().name == root_name)
        .unwrap_or_else(|| panic!("no assembled trace rooted at {root_name}"))
}

/// Faults all-but-one holders of a file's first block with `action` and
/// re-reads until the traced fan-out (≥2 same-named siblings) appears,
/// returning that read's trace. The master's retrieval policy random
/// tie-breaks replica order per request, so the client may start at the
/// one spared replica on any given read — each round re-arms the faults
/// and retries; with two of three holders faulted a round hits with
/// probability 2/3, so ten rounds are overwhelmingly sufficient.
fn read_until_fanout(
    cluster: &NetCluster,
    client: &octopus_core::net::RemoteFs,
    path: &str,
    data: &[u8],
    action: FaultAction,
    sibling_name: &str,
) -> Trace {
    let blocks = client.get_file_block_locations(path, 0, u64::MAX).unwrap();
    let holders: Vec<WorkerId> = blocks[0].locations.iter().map(|l| l.worker).collect();
    assert!(holders.len() >= 2, "need >=2 replicas to observe fan-out");
    let victims = &holders[..holders.len() - 1];

    let mut found = None;
    for _ in 0..10 {
        for v in victims {
            let addr = cluster.worker_addr(*v).unwrap();
            if faults::pending(addr) == 0 {
                faults::inject(addr, action.clone());
            }
        }
        assert_eq!(client.read_file(path).unwrap(), data);
        let snap = client.cluster_trace_snapshot().unwrap();
        let trace = latest_trace(&snap, "client.read_file");
        if sibling_groups(&trace, sibling_name).iter().any(|g| g.len() >= 2) {
            found = Some(trace);
            break;
        }
    }
    for v in victims {
        faults::clear(cluster.worker_addr(*v).unwrap());
    }
    found.unwrap_or_else(|| panic!("no read produced sibling {sibling_name} spans"))
}

/// Same-named spans sharing one parent (retry or failover fan-out).
fn sibling_groups<'a>(trace: &'a Trace, name: &str) -> Vec<Vec<&'a SpanRecord>> {
    let mut groups: Vec<Vec<&SpanRecord>> = Vec::new();
    for s in trace.spans.iter().filter(|s| s.name == name) {
        match groups.iter_mut().find(|g| g[0].parent_span == s.parent_span) {
            Some(g) => g.push(s),
            None => groups.push(vec![s]),
        }
    }
    groups
}

#[test]
fn spans_stitch_across_client_master_and_workers() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(2 * MB as usize + 99, 7);
    client.write_file("/stitch", &data, rf(3)).unwrap();
    assert_eq!(client.read_file("/stitch").unwrap(), data);

    let snap = client.cluster_trace_snapshot().unwrap();
    let write = latest_trace(&snap, "client.write_file");
    let nodes = write.nodes();
    assert!(nodes.contains("client"), "write trace missing client spans: {nodes:?}");
    assert!(nodes.contains("master"), "write trace missing master spans: {nodes:?}");
    assert!(
        nodes.iter().filter(|n| n.starts_with("worker-")).count() >= 2,
        "3-replica pipelined write must touch >=2 workers: {nodes:?}"
    );
    // Every span of the assembled tree carries the root's trace id.
    assert!(write.spans.iter().all(|s| s.trace_id == write.trace_id));

    // The critical path partitions the root exactly: attributed segment
    // time sums to the root's duration, with no gaps or double counting.
    let cp = write.critical_path();
    assert_eq!(cp.attributed_us(), write.duration_us());

    let read = latest_trace(&snap, "client.read_file");
    assert!(read.nodes().iter().any(|n| n.starts_with("worker-")));
    assert_eq!(read.critical_path().attributed_us(), read.duration_us());
}

#[test]
fn retry_spans_are_siblings_under_the_original_trace() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 3);
    client.write_file("/retry", &data, rf(3)).unwrap();

    // A dropped ReadBlock reply: the idempotent call retries the same
    // worker, so the attempts appear as sibling `rpc.ReadBlock` spans
    // under one `client.read_replica` parent.
    let trace = read_until_fanout(
        &cluster,
        &client,
        "/retry",
        &data,
        FaultAction::DropConnection,
        "rpc.ReadBlock",
    );
    let retried = sibling_groups(&trace, "rpc.ReadBlock")
        .into_iter()
        .find(|g| g.len() >= 2)
        .expect("dropped reply must produce sibling rpc.ReadBlock attempt spans");
    // Both attempts belong to the original trace, under one parent, and
    // are distinguishable by their attempt annotation.
    assert!(retried.iter().all(|s| s.trace_id == trace.trace_id));
    assert_eq!(retried[0].parent_span, retried[1].parent_span);
    let attempts: Vec<_> = retried.iter().filter_map(|s| s.annotation("attempt")).collect();
    assert!(attempts.contains(&"0") && attempts.contains(&"1"), "attempts: {attempts:?}");
}

#[test]
fn checksum_failover_spans_share_the_original_trace_and_parent() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 5);
    client.write_file("/crc", &data, rf(3)).unwrap();

    // A corrupted payload: the checksum rejects the replica and the read
    // fails over, appearing as sibling `client.read_replica` spans.
    let trace = read_until_fanout(
        &cluster,
        &client,
        "/crc",
        &data,
        FaultAction::CorruptPayload,
        "client.read_replica",
    );
    let replicas = sibling_groups(&trace, "client.read_replica")
        .into_iter()
        .find(|g| g.len() >= 2)
        .expect("checksum failover must produce sibling read_replica spans");
    assert!(replicas.iter().all(|s| s.trace_id == trace.trace_id));
    assert!(replicas.iter().all(|s| s.parent_span == trace.root().span_id));
    // The failed replica attempt is annotated; the successful one is not.
    assert!(replicas.iter().any(|s| s.annotation("error").is_some()));
    assert!(replicas.iter().any(|s| s.annotation("error").is_none()));
}

#[test]
fn trace_spans_dropped_total_is_stamped_from_the_collector() {
    use octopus_common::trace::TraceCollector;

    // Overflowing a bounded collector counts the evicted spans.
    let tc = TraceCollector::with_capacity("test", 4);
    for i in 0..10 {
        let _s = tc.root(format!("span-{i}"));
    }
    assert!(tc.dropped() > 0, "overflowing the ring must count drops");

    // The metrics scrape stamps the same counter, one series per node, so
    // span loss is visible without pulling a trace snapshot.
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 11);
    client.write_file("/drops", &data, rf(2)).unwrap();
    assert_eq!(client.read_file("/drops").unwrap(), data);
    let snap = client.cluster_metrics_snapshot().unwrap();
    let series: Vec<_> =
        snap.counters.iter().filter(|s| s.name == "trace_spans_dropped_total").collect();
    assert_eq!(
        series.len(),
        1 + cluster.workers().len(),
        "one stamped series for the master plus one per scraped worker: {series:?}"
    );
    // Dropped counts only grow; the stamped value cannot exceed what the
    // collectors report right now.
    let stamped: u64 = series.iter().map(|s| s.value).sum();
    let current: u64 = cluster.master().trace().dropped()
        + cluster.workers().iter().map(|w| w.trace().dropped()).sum::<u64>();
    assert!(stamped <= current, "stamped {stamped} > live {current}");
}

#[test]
fn untraced_requests_still_use_the_bare_wire_format() {
    // Old-format compatibility: requests issued with no active span (e.g.
    // heartbeats, background traffic) carry no envelope, and a fresh
    // cluster serves them — decode of both forms coexists on one socket.
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    // Status/mkdir have no client-side root span, so they go enveloped
    // only when nested under a traced operation — bare here.
    client.mkdir("/plain").unwrap();
    assert!(client.status("/plain").unwrap().is_dir);
    let snap = client.trace().snapshot();
    assert!(
        !snap.spans.iter().any(|s| s.name == "rpc.Mkdir"),
        "untraced requests must not record spans"
    );
}
