//! End-to-end tests of the corruption-detection (scrubber) and
//! decommissioning paths (paper §5 repair mechanisms).

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, WorkerId, MB};
use octopus_core::Cluster;
use octopus_storage::MemoryStore;

fn config() -> ClusterConfig {
    ClusterConfig::test_cluster(6, 64 * MB, MB)
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Injects silent corruption into one replica of the first block of
/// `path` (the in-memory cluster backs every medium with `MemoryStore`).
fn corrupt_first_replica(cluster: &Cluster, path: &str) -> octopus_common::Location {
    let blocks = cluster
        .master()
        .get_file_block_locations(path, 0, u64::MAX, ClientLocation::OffCluster)
        .unwrap();
    let victim = blocks[0].locations[0];
    let worker = cluster.worker(victim.worker).unwrap();
    let medium = worker.medium(victim.media).unwrap();
    let mem = medium
        .store
        .as_any()
        .downcast_ref::<MemoryStore>()
        .expect("in-memory cluster uses MemoryStore");
    mem.corrupt(blocks[0].block.id).unwrap();
    victim
}

#[test]
fn scrub_detects_and_heals_silent_corruption() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 1);
    client.write_file("/scrub", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let victim = corrupt_first_replica(&cluster, "/scrub");

    // The scrubber finds exactly the corrupt replica and deletes it.
    assert_eq!(cluster.run_scrub_round().unwrap(), 1);
    let after = cluster
        .master()
        .get_file_block_locations("/scrub", 0, u64::MAX, ClientLocation::OffCluster)
        .unwrap();
    assert_eq!(after[0].locations.len(), 2);
    assert!(!after[0].locations.contains(&victim));

    // The replication monitor restores the third replica; data verifies.
    cluster.run_replication_round().unwrap();
    let healed = client.get_file_block_locations("/scrub", 0, u64::MAX).unwrap();
    assert_eq!(healed[0].locations.len(), 3);
    assert_eq!(client.read_file("/scrub").unwrap(), data);
    // A follow-up scrub is clean.
    assert_eq!(cluster.run_scrub_round().unwrap(), 0);
}

#[test]
fn client_read_fails_over_around_corruption_before_scrub() {
    // Even before the scrubber runs, a reader hitting the corrupt replica
    // fails over to a healthy one (§4.1).
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 2);
    client.write_file("/failover", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    corrupt_first_replica(&cluster, "/failover");
    assert_eq!(client.read_file("/failover").unwrap(), data);
}

#[test]
fn vanished_replica_heals_via_block_report() {
    // Silent data loss (replica deleted behind the master's back): the
    // next block report reconciles and the monitor re-replicates.
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 3);
    client.write_file("/lost", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let blocks = client.get_file_block_locations("/lost", 0, u64::MAX).unwrap();
    let victim = blocks[0].locations[0];
    cluster.worker(victim.worker).unwrap().delete_block(victim.media, blocks[0].block.id).unwrap();

    cluster.send_block_reports().unwrap();
    cluster.run_replication_round().unwrap();
    let healed = client.get_file_block_locations("/lost", 0, u64::MAX).unwrap();
    assert_eq!(healed[0].locations.len(), 3);
    assert_eq!(client.read_file("/lost").unwrap(), data);
}

#[test]
fn decommission_drains_and_retires_a_worker() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/d").unwrap();
    for i in 0..6 {
        client
            .write_file(
                &format!("/d/f{i}"),
                &payload(MB as usize, 10 + i),
                ReplicationVector::from_replication_factor(3),
            )
            .unwrap();
    }
    let target = WorkerId(2);
    cluster.decommission_worker(target).unwrap();

    // Every file remains fully replicated without the retired worker.
    for i in 0..6 {
        let path = format!("/d/f{i}");
        let blocks = client.get_file_block_locations(&path, 0, u64::MAX).unwrap();
        for b in &blocks {
            assert_eq!(b.locations.len(), 3, "{path} under-replicated");
            assert!(b.locations.iter().all(|l| l.worker != target));
        }
        assert_eq!(client.read_file(&path).unwrap().len(), MB as usize);
    }
    // New writes avoid the retired worker too.
    client
        .write_file(
            "/after",
            &payload(MB as usize, 99),
            ReplicationVector::from_replication_factor(3),
        )
        .unwrap();
    let blocks = client.get_file_block_locations("/after", 0, u64::MAX).unwrap();
    assert!(blocks[0].locations.iter().all(|l| l.worker != target));
}

#[test]
fn decommissioning_worker_keeps_serving_reads_while_draining() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 4);
    client.write_file("/serve", &data, ReplicationVector::from_replication_factor(3)).unwrap();
    let blocks = client.get_file_block_locations("/serve", 0, u64::MAX).unwrap();
    let w = blocks[0].locations[0].worker;
    cluster.master().start_decommission(w);
    // Reads still work mid-drain (the worker is live, only barred from
    // receiving new replicas).
    assert_eq!(client.read_file("/serve").unwrap(), data);
    assert!(!cluster.master().decommission_complete(WorkerId(99)), "unknown worker");
}
