//! End-to-end concurrency test of the sharded master over real RPC
//! (ROADMAP item 1): multiple client connections drive shard-crossing
//! metadata traffic — including data writes, renames between directories
//! that hash to different shards, and deletes racing listings — against a
//! live [`NetCluster`], then the final namespace is audited for
//! consistency and data integrity through the same public surface.

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

#[test]
fn concurrent_shard_crossing_metadata_over_rpc() {
    let cluster = NetCluster::start(config()).unwrap();
    let setup = cluster.client(ClientLocation::OffCluster);
    for d in ["/a", "/b", "/c"] {
        setup.mkdir(d).unwrap();
    }

    let threads = 4usize;
    let files_per_thread = 6usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let client = cluster.client(ClientLocation::OffCluster);
            s.spawn(move || {
                let data = payload(MB as usize / 4, t as u64);
                for i in 0..files_per_thread {
                    // Write under /a, bounce a→b→c via cross-shard
                    // renames, interleaved with list/stat/delete races
                    // against the other threads' traffic.
                    let name = format!("t{t}f{i}");
                    client.write_file(&format!("/a/{name}"), &data, rf(2)).unwrap();
                    client.rename(&format!("/a/{name}"), &format!("/b/{name}")).unwrap();
                    let _ = client.list("/b");
                    client.rename(&format!("/b/{name}"), &format!("/c/{name}")).unwrap();
                    let st = client.status(&format!("/c/{name}")).unwrap();
                    assert_eq!(st.len, MB / 4, "length changed across renames");
                    if i % 2 == 0 {
                        client.delete(&format!("/c/{name}"), false).unwrap();
                    }
                    let _ = client.list("/a");
                }
            });
        }
    });

    // Survivors: odd-indexed files per thread, all at /c, readable with
    // intact contents; /a and /b drained back to empty.
    let client = cluster.client(ClientLocation::OffCluster);
    assert!(client.list("/a").unwrap().is_empty(), "/a not drained");
    assert!(client.list("/b").unwrap().is_empty(), "/b not drained");
    let listed = client.list("/c").unwrap();
    assert_eq!(listed.len(), threads * files_per_thread / 2, "survivor count wrong");
    for t in 0..threads {
        let expect = payload(MB as usize / 4, t as u64);
        for i in (1..files_per_thread).step_by(2) {
            let got = client.read_file(&format!("/c/t{t}f{i}")).unwrap();
            assert_eq!(got, expect, "data corrupted across shard-crossing renames (t{t}f{i})");
        }
    }

    // The master's own accounting agrees with the walk.
    let status = client.cluster_status().unwrap();
    assert_eq!(status.files, (threads * files_per_thread / 2) as u64, "file count diverged");
}
