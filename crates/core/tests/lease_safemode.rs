//! End-to-end tests of write leases (single-writer semantics, expiry
//! recovery) and master safe mode after restart.

use octopus_common::{ClientLocation, ClusterConfig, FsError, ReplicationVector, MB};
use octopus_core::Cluster;
use octopus_master::Master;

fn config() -> ClusterConfig {
    ClusterConfig::test_cluster(4, 64 * MB, MB)
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

#[test]
fn second_client_cannot_write_an_open_file() {
    let cluster = Cluster::start(config()).unwrap();
    let alice = cluster.client(ClientLocation::OffCluster);
    let bob = cluster.client(ClientLocation::OffCluster);

    let mut w =
        alice.create("/shared", ReplicationVector::from_replication_factor(2), None).unwrap();
    w.write(&payload(1024, 1)).unwrap();

    // Bob cannot recreate, append to, or close Alice's open file.
    let err = bob.create("/shared", ReplicationVector::from_replication_factor(2), None);
    assert!(matches!(err, Err(FsError::AlreadyExists(_)) | Err(FsError::LeaseConflict(_))));
    let err = cluster.master().add_block_as("/shared", 1024, ClientLocation::OffCluster, bob.id());
    assert!(matches!(err, Err(FsError::LeaseConflict(_))), "got {err:?}");

    // Alice closes; the lease is released and the file is readable.
    w.close().unwrap();
    assert_eq!(bob.read_file("/shared").unwrap().len(), 1024);
}

#[test]
fn lease_expiry_recovers_abandoned_file() {
    let cluster = Cluster::start(config()).unwrap();
    let alice = cluster.client(ClientLocation::OffCluster);
    let mut w =
        alice.create("/abandoned", ReplicationVector::from_replication_factor(2), None).unwrap();
    w.write(&payload(MB as usize, 2)).unwrap();
    // Alice vanishes without closing. (Leak the writer so Drop's
    // auto-close does not run.)
    std::mem::forget(w);

    assert!(!cluster.master().status("/abandoned").unwrap().complete);
    // Lease duration is 20 heartbeats (100 ms each) = 2 s of cluster time;
    // advance well past it without marking workers dead.
    for _ in 0..25 {
        cluster.pump_heartbeats();
    }
    cluster.master().tick(cluster.now_ms());

    let st = cluster.master().status("/abandoned").unwrap();
    assert!(st.complete, "lease recovery finalized the file");
    assert_eq!(st.len, MB);
    // Another client can now take over the path's data.
    let bob = cluster.client(ClientLocation::OffCluster);
    assert_eq!(bob.read_file("/abandoned").unwrap().len(), MB as usize);
}

#[test]
fn restored_master_starts_in_safe_mode_until_reports_arrive() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client
        .write_file("/sm", &payload(MB as usize, 3), ReplicationVector::from_replication_factor(2))
        .unwrap();

    let image = cluster.master().checkpoint();
    let restored = Master::restore(cluster.master().config().clone(), &image).unwrap();
    assert!(restored.in_safe_mode());

    // Mutations are rejected in safe mode; reads of metadata still work.
    assert!(matches!(restored.mkdir("/new"), Err(FsError::NotReady(_))));
    assert!(matches!(
        restored.create_file("/new2", ReplicationVector::from_replication_factor(1), None),
        Err(FsError::NotReady(_))
    ));
    assert!(matches!(
        restored.set_replication("/sm", ReplicationVector::from_replication_factor(3)),
        Err(FsError::NotReady(_))
    ));
    assert!(matches!(restored.delete("/sm", false), Err(FsError::NotReady(_))));
    assert!(restored.status("/sm").is_ok());
    assert!(restored.replication_scan().is_empty(), "no repair storms in safe mode");

    // Workers report their blocks: safe mode exits automatically.
    for w in cluster.workers() {
        restored.register_worker(w.id(), w.rack(), w.net_bps(), 0);
        let (stats, conns) = w.heartbeat_stats();
        restored.heartbeat(w.id(), stats, conns, 0).unwrap();
        restored.block_report(w.id(), &w.block_report()).unwrap();
    }
    assert!(!restored.in_safe_mode());
    restored.mkdir("/new").unwrap();
}

#[test]
fn manual_safe_mode_exit() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client
        .write_file("/x", &payload(1024, 4), ReplicationVector::from_replication_factor(2))
        .unwrap();
    let restored =
        Master::restore(cluster.master().config().clone(), &cluster.master().checkpoint()).unwrap();
    assert!(restored.in_safe_mode());
    restored.leave_safe_mode();
    assert!(!restored.in_safe_mode());
}

#[test]
fn fresh_master_never_enters_safe_mode() {
    let cluster = Cluster::start(config()).unwrap();
    assert!(!cluster.master().in_safe_mode());
    let client = cluster.client(ClientLocation::OffCluster);
    client.mkdir("/ok").unwrap();
}

#[test]
fn same_client_can_reopen_after_close_and_delete() {
    let cluster = Cluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client
        .write_file("/re", &payload(512, 5), ReplicationVector::from_replication_factor(2))
        .unwrap();
    client.delete("/re", false).unwrap();
    client
        .write_file("/re", &payload(512, 6), ReplicationVector::from_replication_factor(2))
        .unwrap();
    assert_eq!(client.read_file("/re").unwrap(), payload(512, 6));
}

#[test]
fn rename_transfers_lease() {
    let cluster = Cluster::start(config()).unwrap();
    let alice = cluster.client(ClientLocation::OffCluster);
    let bob = cluster.client(ClientLocation::OffCluster);
    let mut w =
        alice.create("/moving", ReplicationVector::from_replication_factor(2), None).unwrap();
    w.write(&payload(100, 7)).unwrap();
    cluster.master().rename("/moving", "/moved").unwrap();
    // Bob still cannot touch it under the new name.
    let err = cluster.master().add_block_as("/moved", 100, ClientLocation::OffCluster, bob.id());
    assert!(matches!(err, Err(FsError::LeaseConflict(_))));
    // NOTE: Alice's writer still targets the old path; closing it now
    // fails cleanly (path gone), which is the HDFS behaviour too.
    std::mem::forget(w);
}
