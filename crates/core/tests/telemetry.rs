//! Tiering-telemetry integration tests: access heat must flow from worker
//! touch counters over heartbeats into the master's EWMA tracker, every
//! placement must leave a reproducible MOOP audit trail (the chosen medium
//! is the argmin of the recorded Eq. 11 candidate scores), and the cluster
//! status surface must report live capacity.

use std::time::{Duration, Instant};

use octopus_common::{
    ClientLocation, ClusterConfig, DecisionKind, ReplicationVector, WorkerId, MB,
};
use octopus_core::NetCluster;

fn config() -> ClusterConfig {
    let mut c = ClusterConfig::test_cluster(4, 64 * MB, MB);
    c.heartbeat_ms = 20;
    c
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

fn rf(n: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(n)
}

/// Polls `check` until it returns true or the deadline passes.
fn eventually(timeout: Duration, mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn placement_audit_reproduces_moop_argmin() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 42);
    for i in 0..25 {
        client.write_file(&format!("/f{i}"), &data, rf(2)).unwrap();
    }

    // Every block's Placement event must carry the per-replica candidate
    // scores, with the recorded winner being the argmin of the Eq. 11
    // totals (within the policy's tie-break epsilon) — the acceptance
    // criterion that explain-placement reproduces the policy's ranking.
    let mut rounds_checked = 0usize;
    for i in 0..25 {
        let blocks = client.get_file_block_locations(&format!("/f{i}"), 0, u64::MAX).unwrap();
        for lb in &blocks {
            let events = client.explain_placement(lb.block.id).unwrap();
            let placements: Vec<_> =
                events.iter().filter(|e| e.kind == DecisionKind::Placement).collect();
            assert!(!placements.is_empty(), "block {} has no placement event", lb.block.id);
            for e in &placements {
                assert_eq!(e.chosen.len(), 2, "rf=2 placement: {e:?}");
                for round in &e.rounds {
                    let Some(winner_media) = round.chosen_media else { continue };
                    let chosen: Vec<_> = round.candidates.iter().filter(|c| c.chosen).collect();
                    assert_eq!(chosen.len(), 1, "exactly one chosen candidate: {round:?}");
                    assert_eq!(chosen[0].media, winner_media);
                    let min =
                        round.candidates.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
                    // The policy breaks ties randomly within this epsilon
                    // of the minimum (see GreedyPolicy::solve_moop); the
                    // winner must sit inside that band.
                    let eps = 1e-9 * (1.0 + min.abs().min(1e12));
                    assert!(
                        chosen[0].total <= min + eps,
                        "chosen total {} above argmin {min} (+{eps}): {round:?}",
                        chosen[0].total
                    );
                    rounds_checked += 1;
                }
                // The audited chosen vector is the placement the master
                // actually recorded for the block.
                let placed: Vec<_> = e.chosen.iter().map(|l| l.media).collect();
                for loc in &lb.locations {
                    assert!(
                        placed.contains(&loc.media),
                        "block map location {loc:?} missing from audited {placed:?}"
                    );
                }
            }
        }
    }
    assert!(rounds_checked >= 20, "only {rounds_checked} audited rounds verified");
}

#[test]
fn heat_flows_from_workers_to_master() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 7);
    client.write_file("/hot", &data, rf(2)).unwrap();
    client.write_file("/cold", &data, rf(2)).unwrap();
    for _ in 0..12 {
        assert_eq!(client.read_file("/hot").unwrap(), data);
    }

    // Touch counts ride the next heartbeats; the re-read file must end up
    // strictly hotter than its untouched sibling.
    let hotter = eventually(Duration::from_secs(10), || {
        let hot = client.heat("/hot").unwrap();
        let cold = client.heat("/cold").unwrap();
        hot.score > cold.score && hot.reads_ewma + hot.cur_reads as f64 > 0.0
    });
    assert!(hotter, "re-read file never became hotter than the untouched one");

    // The hot file leads the hottest-files ranking.
    let hot_files = client.hot_files(2).unwrap();
    assert!(!hot_files.is_empty());
    assert_eq!(hot_files[0].path, "/hot", "ranking: {hot_files:?}");
}

#[test]
fn cluster_status_reports_capacity_workers_and_decisions() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize / 2, 9);
    client.write_file("/status-probe", &data, rf(2)).unwrap();
    assert_eq!(client.read_file("/status-probe").unwrap(), data);

    let s = client.cluster_status().unwrap();
    assert!(!s.safe_mode);
    assert!(s.files >= 1, "status: {s:?}");
    assert!(s.blocks >= 1);
    assert_eq!(s.tiers.len(), 3, "test cluster configures 3 tiers");
    for t in &s.tiers {
        assert!(t.stats.capacity > 0, "tier {} reports zero capacity", t.name);
        assert!(t.stats.num_media > 0);
    }
    assert_eq!(s.workers.len(), 4);
    for w in &s.workers {
        assert!(w.live, "worker {:?} not live", w.worker);
        assert!(!w.media.is_empty());
    }
    // The write placed at least one block: decisions were recorded.
    assert!(s.decisions_recorded >= 1);
    assert!(s.decisions_retained >= 1);
}

#[test]
fn master_and_worker_series_accumulate_points() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/series-probe", &payload(MB as usize / 4, 3), rf(2)).unwrap();

    // The first heartbeat tick takes the first master sample immediately;
    // worker rings sample on their own heartbeat loops.
    let sampled = eventually(Duration::from_secs(10), || {
        let m = client.master_series().unwrap_or_default();
        let w = client.worker_series(WorkerId(0)).unwrap_or_default();
        // Wait for a master sample taken *after* the write landed, so the
        // gauge assertions below see the block.
        m.last().is_some_and(|p| p.value("blocks").unwrap_or(0) >= 1) && !w.is_empty()
    });
    assert!(sampled, "series rings never accumulated a post-write point");

    let master_points = client.master_series().unwrap();
    let last = master_points.last().unwrap();
    assert!(last.value("blocks").unwrap_or(0) >= 1, "master sample: {last:?}");
    for tier in 0..3 {
        let cap = last.value(&format!("tier{tier}_capacity_bytes"));
        assert!(cap.unwrap_or(0) > 0, "tier {tier} capacity gauge missing: {last:?}");
    }

    let worker_points = client.worker_series(WorkerId(0)).unwrap();
    let wl = worker_points.last().unwrap();
    assert!(wl.value("net_conn").is_some(), "worker sample: {wl:?}");
    assert!(wl.value("io_conn").is_some());
}

#[test]
fn scrape_stamps_ring_drop_counters() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    client.write_file("/drop-probe", &payload(MB as usize / 4, 5), rf(2)).unwrap();

    // The drop counters are pre-registered at zero and stamped from the
    // rings at scrape time, so they must be visible (not merely absent)
    // even before any ring has wrapped — a dashboard can alert on them
    // without a blind spot between boot and first eviction.
    let snap = client.cluster_metrics_snapshot().unwrap();
    for name in
        ["master_audit_dropped_total", "master_series_dropped_total", "trace_spans_dropped_total"]
    {
        assert!(snap.contains(name), "scraped snapshot lacks {name}");
    }
    assert!(
        snap.counters
            .iter()
            .any(|c| c.name == "worker_series_dropped_total" && c.labels.worker.is_some()),
        "worker series drop counter missing or unlabeled"
    );
}

#[test]
fn metadata_op_histograms_populate_through_rpc_scrape() {
    let cluster = NetCluster::start(config()).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);

    // The exp_metadata mix in miniature, driven over RPC: every op must
    // land in its own `master_meta_op_us{op=…}` histogram on the master.
    client.mkdir("/meta").unwrap();
    client.write_file("/meta/f", &payload(MB as usize / 4, 11), rf(2)).unwrap();
    client.status("/meta/f").unwrap();
    client.list("/meta").unwrap();
    client.rename("/meta/f", "/meta/g").unwrap();
    client.delete("/meta/g", false).unwrap();

    let snap = client.master_metrics_snapshot().unwrap();
    let hist = |op: &str| {
        snap.histograms
            .iter()
            .find(|h| h.name == "master_meta_op_us" && h.labels.op.as_deref() == Some(op))
            .unwrap_or_else(|| panic!("no master_meta_op_us sample for op={op}"))
    };
    for op in ["mkdir", "create", "complete", "stat", "list", "rename", "delete"] {
        let h = hist(op);
        assert!(h.count >= 1, "op={op} recorded no observations");
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count, "op={op} bucket/count mismatch");
        // Segment histograms ride the same label; their counts match the
        // total's, so per-op attribution is computable from one scrape.
        for seg in
            ["master_meta_op_lock_wait_us", "master_meta_op_work_us", "master_meta_op_log_us"]
        {
            let s = snap
                .histograms
                .iter()
                .find(|h| h.name == seg && h.labels.op.as_deref() == Some(op))
                .unwrap_or_else(|| panic!("no {seg} sample for op={op}"));
            assert_eq!(s.count, h.count, "segment {seg} count diverges for op={op}");
        }
        let counted = snap
            .counters
            .iter()
            .find(|c| c.name == "master_meta_ops_total" && c.labels.op.as_deref() == Some(op))
            .map(|c| c.value)
            .unwrap_or(0);
        assert_eq!(counted, h.count, "ops counter diverges for op={op}");
    }

    // Lockstat series surface through the same scrape, one label per
    // namespace shard. mkdir writes every mirror and list reads every
    // mirror, so shard 0 has recorded holds in both modes by now.
    for mode in ["sh", "ex"] {
        let hold = snap
            .histograms
            .iter()
            .find(|h| {
                h.name == "lock_hold_us"
                    && h.labels.op.as_deref() == Some("master.shard0")
                    && h.labels.mode.as_deref() == Some(mode)
            })
            .unwrap_or_else(|| panic!("no lock_hold_us sample for master.shard0 mode={mode}"));
        assert!(hold.count > 0, "master.shard0 {mode} lock recorded no holds");
    }
}
