//! A deterministic flow-level discrete-event simulator.
//!
//! OctopusFS's evaluation depends on the *rate behaviour* of cluster
//! hardware: device bandwidth splits among concurrent I/O connections,
//! write pipelines run at the speed of their slowest stage, and network
//! congestion grows with the degree of parallelism. This crate models that
//! world as **resources** (a device or NIC direction with a fixed capacity
//! in bytes/s) and **flows** (a transfer of N bytes traversing a path of
//! resources). Bandwidth is allocated by **max-min fairness** (progressive
//! filling), recomputed whenever a flow starts or finishes, so every flow's
//! rate is exact between events and completion times are analytic.
//!
//! Time is virtual (nanosecond integers), so simulating a 40 GB benchmark
//! takes microseconds of wall-clock time and results are reproducible
//! bit-for-bit.
//!
//! # Example
//!
//! ```
//! use octopus_simnet::{SimNet, EventKind};
//!
//! let mut net = SimNet::new();
//! let link = net.add_resource("link", 100.0); // 100 bytes/s
//! let a = net.start_flow(100.0, vec![link]);
//! let b = net.start_flow(100.0, vec![link]);
//! // The two flows share the link at 50 B/s each and, being equal-sized,
//! // finish together at t = 2 s.
//! let e1 = net.next_event().unwrap();
//! let e2 = net.next_event().unwrap();
//! assert_eq!(e1.time.as_secs_f64(), 2.0);
//! assert_eq!(e2.time.as_secs_f64(), 2.0);
//! assert!(matches!(e1.kind, EventKind::FlowDone(f) if f == a || f == b));
//! # let _ = e2;
//! ```

mod engine;
mod time;

pub use engine::{Event, EventKind, FlowId, ResourceId, SimNet};
pub use time::SimTime;
