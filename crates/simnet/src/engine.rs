//! The simulation engine: resources, flows, max-min fair allocation, and
//! the event loop.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Residual bytes below which a flow counts as finished (absorbs float
/// rounding from rate × time arithmetic).
const EPS_BYTES: f64 = 1e-6;

/// Identifier of a simulated resource (a device direction or NIC direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// Identifier of an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// What happened at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A flow transferred its last byte.
    FlowDone(FlowId),
    /// A timer scheduled with [`SimNet::schedule_at`] fired; carries the
    /// caller-supplied token.
    Timer(u64),
}

/// An event returned by [`SimNet::next_event`]. The engine's clock has been
/// advanced to `time` when the event is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event occurred.
    pub time: SimTime,
    /// What occurred.
    pub kind: EventKind,
}

#[derive(Debug)]
struct Resource {
    #[allow(dead_code)]
    name: String,
    capacity: f64,
}

#[derive(Debug)]
struct Flow {
    remaining: f64,
    path: Vec<ResourceId>,
    rate: f64,
}

/// The simulator. See the crate docs for the model.
#[derive(Debug, Default)]
pub struct SimNet {
    resources: Vec<Resource>,
    flows: BTreeMap<FlowId, Flow>,
    now: SimTime,
    next_flow: u64,
    timer_seq: u64,
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    instant_done: VecDeque<FlowId>,
}

impl SimNet {
    /// An empty simulator at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a resource with the given capacity in bytes/s.
    ///
    /// # Panics
    /// Panics if `capacity_bps` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: &str, capacity_bps: f64) -> ResourceId {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "resource {name:?} must have positive finite capacity, got {capacity_bps}"
        );
        let id = ResourceId(self.resources.len());
        self.resources.push(Resource { name: name.to_string(), capacity: capacity_bps });
        id
    }

    /// Starts a transfer of `bytes` through `path`. Duplicate resources in
    /// the path are deduplicated (traversing a resource twice in one flow is
    /// modelled as once; callers should use distinct ingress/egress
    /// resources instead). A zero-byte or empty-path flow completes
    /// immediately (its `FlowDone` is the next event).
    pub fn start_flow(&mut self, bytes: f64, mut path: Vec<ResourceId>) -> FlowId {
        assert!(bytes >= 0.0 && bytes.is_finite(), "flow size must be non-negative");
        for r in &path {
            assert!(r.0 < self.resources.len(), "unknown resource {r:?}");
        }
        path.sort_unstable();
        path.dedup();
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        if bytes <= EPS_BYTES || path.is_empty() {
            self.instant_done.push_back(id);
            return id;
        }
        self.advance_to(self.now); // no-op; keeps invariants obvious
        self.flows.insert(id, Flow { remaining: bytes, path, rate: 0.0 });
        self.reallocate();
        id
    }

    /// Cancels an active flow, returning the bytes it had left (`None` if
    /// the flow is unknown or already finished).
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<f64> {
        let f = self.flows.remove(&id)?;
        self.reallocate();
        Some(f.remaining)
    }

    /// Schedules a timer event carrying `token` at absolute time `t` (which
    /// must not be in the past).
    pub fn schedule_at(&mut self, t: SimTime, token: u64) {
        assert!(t >= self.now, "cannot schedule in the past");
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse((t, seq, token)));
    }

    /// Schedules a timer event `secs` from now.
    pub fn schedule_after(&mut self, secs: f64, token: u64) {
        self.schedule_at(self.now.plus_secs_f64(secs), token);
    }

    /// The current max-min fair rate of a flow in bytes/s (0 if unknown).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.flows.get(&id).map_or(0.0, |f| f.rate)
    }

    /// Bytes a flow still has to transfer (0 if unknown/finished).
    pub fn flow_remaining(&self, id: FlowId) -> f64 {
        self.flows.get(&id).map_or(0.0, |f| f.remaining)
    }

    /// Number of active flows traversing a resource.
    pub fn resource_flows(&self, r: ResourceId) -> usize {
        self.flows.values().filter(|f| f.path.contains(&r)).count()
    }

    /// Total rate currently allocated on a resource, bytes/s.
    pub fn resource_allocated(&self, r: ResourceId) -> f64 {
        self.flows.values().filter(|f| f.path.contains(&r)).map(|f| f.rate).sum()
    }

    /// Configured capacity of a resource, bytes/s.
    pub fn resource_capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.0].capacity
    }

    /// Number of flows currently in the system (excluding instant
    /// completions not yet delivered).
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Whether any event (flow completion or timer) is pending.
    pub fn has_pending(&self) -> bool {
        !self.flows.is_empty() || !self.timers.is_empty() || !self.instant_done.is_empty()
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// nothing is pending.
    pub fn next_event(&mut self) -> Option<Event> {
        if let Some(id) = self.instant_done.pop_front() {
            return Some(Event { time: self.now, kind: EventKind::FlowDone(id) });
        }

        let next_flow: Option<(SimTime, FlowId)> = self
            .flows
            .iter()
            .map(|(&id, f)| {
                let t = if f.remaining <= EPS_BYTES {
                    self.now
                } else {
                    debug_assert!(f.rate > 0.0, "active flow with zero rate");
                    self.now.plus_secs_f64(f.remaining / f.rate)
                };
                (t, id)
            })
            .min();

        let next_timer: Option<SimTime> = self.timers.peek().map(|Reverse((t, _, _))| *t);

        let flow_wins = match (next_flow, next_timer) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((tf, _)), Some(tt)) => tf <= tt,
        };
        if flow_wins {
            let (tf, id) = next_flow.expect("flow event vanished");
            self.advance_to(tf);
            let f = self.flows.remove(&id).expect("flow disappeared");
            debug_assert!(f.remaining <= 1.0, "flow finished with {} bytes left", f.remaining);
            self.reallocate();
            Some(Event { time: tf, kind: EventKind::FlowDone(id) })
        } else {
            let Reverse((t, _, token)) = self.timers.pop().expect("timer disappeared");
            self.advance_to(t);
            Some(Event { time: t, kind: EventKind::Timer(token) })
        }
    }

    /// Runs until no events remain, invoking `handler` for each. The handler
    /// may start new flows / timers via the `&mut SimNet` it receives.
    pub fn run<F: FnMut(&mut SimNet, Event)>(&mut self, mut handler: F) {
        while let Some(e) = self.next_event() {
            handler(self, e);
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        let dt = t.secs_since(self.now);
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.now = t;
    }

    /// Max-min fair allocation by progressive filling: repeatedly find the
    /// bottleneck resource (smallest fair share among resources with
    /// unfrozen flows), freeze its flows at that share, subtract their
    /// consumption everywhere, and repeat.
    fn reallocate(&mut self) {
        let nr = self.resources.len();
        let mut cap: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut load = vec![0usize; nr];
        // Unfrozen flows, in deterministic id order.
        let mut unfrozen: Vec<FlowId> = self.flows.keys().copied().collect();
        for id in &unfrozen {
            for r in &self.flows[id].path {
                load[r.0] += 1;
            }
        }
        while !unfrozen.is_empty() {
            let mut bottleneck: Option<(f64, usize)> = None;
            for r in 0..nr {
                if load[r] > 0 {
                    let share = cap[r].max(0.0) / load[r] as f64;
                    if bottleneck.is_none_or(|(s, _)| share < s) {
                        bottleneck = Some((share, r));
                    }
                }
            }
            let (share, r) = bottleneck.expect("unfrozen flow with no loaded resource");
            let mut still = Vec::with_capacity(unfrozen.len());
            for id in unfrozen {
                let f = self.flows.get_mut(&id).expect("flow disappeared");
                if f.path.contains(&ResourceId(r)) {
                    f.rate = share;
                    for pr in &f.path {
                        cap[pr.0] -= share;
                        load[pr.0] -= 1;
                    }
                } else {
                    still.push(id);
                }
            }
            unfrozen = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_secs(t: SimTime, secs: f64) {
        assert!(
            (t.as_secs_f64() - secs).abs() < 1e-6,
            "expected {secs}s, got {}s",
            t.as_secs_f64()
        );
    }

    #[test]
    fn single_flow_completion_time() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let f = net.start_flow(50.0, vec![link]);
        assert_eq!(net.flow_rate(f), 100.0);
        let e = net.next_event().unwrap();
        assert_eq!(e.kind, EventKind::FlowDone(f));
        assert_secs(e.time, 0.5);
        assert!(net.next_event().is_none());
    }

    #[test]
    fn fair_sharing_two_unequal_flows() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let small = net.start_flow(100.0, vec![link]);
        let big = net.start_flow(300.0, vec![link]);
        assert_eq!(net.flow_rate(small), 50.0);
        assert_eq!(net.flow_rate(big), 50.0);
        let e1 = net.next_event().unwrap();
        assert_eq!(e1.kind, EventKind::FlowDone(small));
        assert_secs(e1.time, 2.0);
        // Survivor speeds up to full capacity: 200 bytes left / 100 B/s.
        assert_eq!(net.flow_rate(big), 100.0);
        let e2 = net.next_event().unwrap();
        assert_eq!(e2.kind, EventKind::FlowDone(big));
        assert_secs(e2.time, 4.0);
    }

    #[test]
    fn pipeline_bottlenecked_by_slowest_stage() {
        let mut net = SimNet::new();
        let a = net.add_resource("a", 100.0);
        let b = net.add_resource("b", 50.0);
        let c = net.add_resource("c", 200.0);
        let f = net.start_flow(100.0, vec![a, b, c]);
        assert_eq!(net.flow_rate(f), 50.0);
        assert_secs(net.next_event().unwrap().time, 2.0);
    }

    #[test]
    fn max_min_not_just_equal_split() {
        // f1 uses only A(100); f2 uses A and B(30). f2 is bottlenecked by B
        // at 30; f1 then gets the remaining 70 on A (not 50/50).
        let mut net = SimNet::new();
        let a = net.add_resource("A", 100.0);
        let b = net.add_resource("B", 30.0);
        let f1 = net.start_flow(1000.0, vec![a]);
        let f2 = net.start_flow(1000.0, vec![a, b]);
        assert!((net.flow_rate(f2) - 30.0).abs() < 1e-9);
        assert!((net.flow_rate(f1) - 70.0).abs() < 1e-9);
        assert!((net.resource_allocated(a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn three_flows_one_link() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 90.0);
        for _ in 0..3 {
            net.start_flow(90.0, vec![link]);
        }
        // Each runs at 30 B/s; all finish at t = 3.
        for _ in 0..3 {
            assert_secs(net.next_event().unwrap().time, 3.0);
        }
    }

    #[test]
    fn rates_rebalance_when_flow_joins() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let f1 = net.start_flow(100.0, vec![link]);
        assert_eq!(net.flow_rate(f1), 100.0);
        let f2 = net.start_flow(500.0, vec![link]);
        assert_eq!(net.flow_rate(f1), 50.0);
        assert_eq!(net.flow_rate(f2), 50.0);
    }

    #[test]
    fn joining_mid_transfer_accounts_elapsed_bytes() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let f1 = net.start_flow(100.0, vec![link]);
        // Let f1 run alone for 0.5 s via a timer, then start f2.
        net.schedule_after(0.5, 7);
        let e = net.next_event().unwrap();
        assert_eq!(e.kind, EventKind::Timer(7));
        // f1 has 50 bytes left now, shared at 50 B/s → +1 s.
        let f2 = net.start_flow(200.0, vec![link]);
        let e1 = net.next_event().unwrap();
        assert_eq!(e1.kind, EventKind::FlowDone(f1));
        assert_secs(e1.time, 1.5);
        // f2 transferred 50 bytes by then; 150 left at 100 B/s → t = 3.0.
        let e2 = net.next_event().unwrap();
        assert_eq!(e2.kind, EventKind::FlowDone(f2));
        assert_secs(e2.time, 3.0);
    }

    #[test]
    fn zero_byte_and_empty_path_flows_complete_instantly() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 10.0);
        let z = net.start_flow(0.0, vec![link]);
        let ep = net.start_flow(100.0, vec![]);
        let e1 = net.next_event().unwrap();
        let e2 = net.next_event().unwrap();
        assert_eq!(e1.kind, EventKind::FlowDone(z));
        assert_eq!(e2.kind, EventKind::FlowDone(ep));
        assert_eq!(e1.time, SimTime::ZERO);
        assert_eq!(e2.time, SimTime::ZERO);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let f1 = net.start_flow(1000.0, vec![link]);
        let f2 = net.start_flow(1000.0, vec![link]);
        assert_eq!(net.flow_rate(f1), 50.0);
        let left = net.cancel_flow(f2).unwrap();
        assert_eq!(left, 1000.0);
        assert_eq!(net.flow_rate(f1), 100.0);
        assert!(net.cancel_flow(f2).is_none());
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let mut net = SimNet::new();
        net.schedule_after(2.0, 2);
        net.schedule_after(1.0, 1);
        net.schedule_after(2.0, 3);
        assert_eq!(net.next_event().unwrap().kind, EventKind::Timer(1));
        assert_eq!(net.next_event().unwrap().kind, EventKind::Timer(2));
        assert_eq!(net.next_event().unwrap().kind, EventKind::Timer(3));
    }

    #[test]
    fn flow_beats_timer_on_tie() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let f = net.start_flow(100.0, vec![link]); // done at t=1
        net.schedule_after(1.0, 9);
        let e = net.next_event().unwrap();
        assert_eq!(e.kind, EventKind::FlowDone(f));
        assert_eq!(net.next_event().unwrap().kind, EventKind::Timer(9));
    }

    #[test]
    fn run_drains_all_events() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        net.start_flow(100.0, vec![link]);
        net.schedule_after(5.0, 0);
        let mut count = 0;
        net.run(|_, _| count += 1);
        assert_eq!(count, 2);
        assert!(!net.has_pending());
    }

    #[test]
    fn handler_can_chain_flows() {
        // Sequential transfers: when one finishes, start the next; total
        // time is the sum.
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        net.start_flow(100.0, vec![link]);
        let mut started = 1;
        let mut last = SimTime::ZERO;
        net.run(|net, e| {
            last = e.time;
            if started < 3 {
                net.start_flow(100.0, vec![link]);
                started += 1;
            }
        });
        assert_secs(last, 3.0);
    }

    #[test]
    fn duplicate_path_entries_are_deduped() {
        let mut net = SimNet::new();
        let link = net.add_resource("link", 100.0);
        let f = net.start_flow(100.0, vec![link, link, link]);
        assert_eq!(net.flow_rate(f), 100.0);
        assert_eq!(net.resource_flows(link), 1);
    }

    #[test]
    fn resource_introspection() {
        let mut net = SimNet::new();
        let a = net.add_resource("a", 100.0);
        let b = net.add_resource("b", 400.0);
        net.start_flow(1e6, vec![a, b]);
        net.start_flow(1e6, vec![b]);
        assert_eq!(net.resource_flows(a), 1);
        assert_eq!(net.resource_flows(b), 2);
        assert_eq!(net.resource_capacity(b), 400.0);
        // a's flow frozen at 100; b then serves its solo flow at 300.
        assert!((net.resource_allocated(b) - 400.0).abs() < 1e-9);
        assert_eq!(net.active_flows(), 2);
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn zero_capacity_rejected() {
        SimNet::new().add_resource("bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_rejected() {
        let mut net = SimNet::new();
        net.start_flow(1.0, vec![ResourceId(3)]);
    }

    #[test]
    fn many_flows_conserve_capacity_invariant() {
        // Random-ish deterministic workload; after every event, allocation
        // on every resource must not exceed capacity (within epsilon), and
        // all flows must eventually complete.
        let mut net = SimNet::new();
        let res: Vec<_> =
            (0..5).map(|i| net.add_resource(&format!("r{i}"), 50.0 + 37.0 * i as f64)).collect();
        let mut seed = 0x12345u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let bytes = (rand() % 10_000 + 1) as f64;
            let a = res[(rand() % 5) as usize];
            let b = res[(rand() % 5) as usize];
            net.start_flow(bytes, vec![a, b]);
        }
        let mut done = 0;
        while let Some(e) = net.next_event() {
            assert!(matches!(e.kind, EventKind::FlowDone(_)));
            done += 1;
            for &r in &res {
                let alloc = net.resource_allocated(r);
                assert!(alloc <= net.resource_capacity(r) + 1e-6, "over-allocated {r:?}: {alloc}");
            }
        }
        assert_eq!(done, 40);
    }
}
