//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in integer nanoseconds since simulation start.
///
/// Integer representation makes event ordering total and reproducible; the
/// conversion helpers accept and produce `f64` seconds for rate arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from seconds, rounding up to the next nanosecond so a
    /// flow is never reported complete before its analytic finish time.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        debug_assert!(secs >= 0.0 && secs.is_finite());
        SimTime((secs * 1e9).ceil() as u64)
    }

    /// The time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time in whole milliseconds (rounded down).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration since an earlier time, in seconds.
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        debug_assert!(self >= earlier);
        (self.0 - earlier.0) as f64 / 1e9
    }

    /// Saturating addition of a duration in seconds.
    pub fn plus_secs_f64(self, secs: f64) -> SimTime {
        if !secs.is_finite() {
            return SimTime::MAX;
        }
        let nanos = (secs * 1e9).ceil();
        if nanos >= (u64::MAX - self.0) as f64 {
            SimTime::MAX
        } else {
            SimTime(self.0 + nanos as u64)
        }
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimTime> for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(t.as_millis(), 1500);
    }

    #[test]
    fn rounding_is_up() {
        // 1 ns + a hair must not round down to 1 ns.
        let t = SimTime::from_secs_f64(1.0000000005e-9);
        assert_eq!(t.0, 2);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!((a + b).0, 140);
        assert_eq!((a - b).0, 60);
        assert_eq!((b - a).0, 0); // saturating
        assert!((a.secs_since(b) - 60e-9).abs() < 1e-18);
    }

    #[test]
    fn plus_secs_saturates() {
        assert_eq!(SimTime(10).plus_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime(u64::MAX - 1).plus_secs_f64(1.0), SimTime::MAX);
        assert_eq!(SimTime(0).plus_secs_f64(2.0), SimTime(2_000_000_000));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs_f64(0.25).to_string(), "0.250000s");
    }
}
