//! Heap-backed block store (the "Memory" tier).

use parking_lot::RwLock;
use std::collections::HashMap;

use bytes::Bytes;
use octopus_common::{Block, BlockData, BlockId, FsError, Result};

use crate::store::{BlockStore, StoredBlockInfo};

struct Entry {
    block: Block,
    data: BlockData,
    checksum: u32,
}

struct Inner {
    entries: HashMap<BlockId, Entry>,
    used: u64,
}

/// An in-memory block store with capacity accounting.
///
/// Also the store used by most tests; it offers [`MemoryStore::corrupt`] to
/// inject bit-rot for failure-handling tests.
pub struct MemoryStore {
    capacity: u64,
    inner: RwLock<Inner>,
}

impl MemoryStore {
    /// Creates a store with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, inner: RwLock::new(Inner { entries: HashMap::new(), used: 0 }) }
    }

    /// Test hook: flips a byte of a stored real payload (or perturbs the
    /// recorded checksum of a synthetic one) so subsequent reads fail
    /// verification, simulating silent corruption.
    pub fn corrupt(&self, id: BlockId) -> Result<()> {
        let mut g = self.inner.write();
        let e = g.entries.get_mut(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        match &e.data {
            BlockData::Real(b) => {
                let mut v = b.to_vec();
                if v.is_empty() {
                    e.checksum ^= 0xFFFF_FFFF;
                } else {
                    v[0] ^= 0xFF;
                    e.data = BlockData::Real(Bytes::from(v));
                }
            }
            BlockData::Synthetic { .. } => {
                e.checksum ^= 0xFFFF_FFFF;
            }
        }
        Ok(())
    }
}

impl BlockStore for MemoryStore {
    fn put(&self, block: Block, data: &BlockData) -> Result<()> {
        if data.len() != block.len {
            return Err(FsError::InvalidArgument(format!(
                "block {} declares {} bytes but payload has {}",
                block.id,
                block.len,
                data.len()
            )));
        }
        let mut g = self.inner.write();
        if g.entries.contains_key(&block.id) {
            return Err(FsError::AlreadyExists(block.id.to_string()));
        }
        if g.used + block.len > self.capacity {
            return Err(FsError::OutOfCapacity(format!(
                "memory store: {} + {} > {}",
                g.used, block.len, self.capacity
            )));
        }
        let checksum = data.checksum();
        g.used += block.len;
        g.entries.insert(block.id, Entry { block, data: data.clone(), checksum });
        Ok(())
    }

    fn get(&self, id: BlockId) -> Result<BlockData> {
        let g = self.inner.read();
        let e = g.entries.get(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        let actual = e.data.checksum();
        if actual != e.checksum {
            return Err(FsError::ChecksumMismatch { expected: e.checksum, actual });
        }
        Ok(e.data.clone())
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        let mut g = self.inner.write();
        let e = g.entries.remove(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        g.used -= e.block.len;
        Ok(())
    }

    fn contains(&self, id: BlockId) -> bool {
        self.inner.read().entries.contains_key(&id)
    }

    fn blocks(&self) -> Vec<StoredBlockInfo> {
        self.inner
            .read()
            .entries
            .values()
            .map(|e| StoredBlockInfo { block: e.block, checksum: e.checksum })
            .collect()
    }

    fn used(&self) -> u64 {
        self.inner.read().used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn verify(&self, id: BlockId) -> Result<u32> {
        let g = self.inner.read();
        let e = g.entries.get(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        let actual = e.data.checksum();
        if actual != e.checksum {
            Err(FsError::ChecksumMismatch { expected: e.checksum, actual })
        } else {
            Ok(e.checksum)
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::GenStamp;

    fn blk(id: u64, len: u64) -> Block {
        Block { id: BlockId(id), gen: GenStamp(1), len }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let s = MemoryStore::new(1000);
        let data = BlockData::generate_real(100, 7);
        s.put(blk(1, 100), &data).unwrap();
        assert!(s.contains(BlockId(1)));
        assert_eq!(s.get(BlockId(1)).unwrap(), data);
        assert_eq!(s.used(), 100);
        assert_eq!(s.remaining(), 900);
        s.delete(BlockId(1)).unwrap();
        assert!(!s.contains(BlockId(1)));
        assert_eq!(s.used(), 0);
        assert!(matches!(s.get(BlockId(1)), Err(FsError::NotFound(_))));
    }

    #[test]
    fn rejects_duplicate_and_overflow() {
        let s = MemoryStore::new(150);
        let d = BlockData::generate_real(100, 1);
        s.put(blk(1, 100), &d).unwrap();
        assert!(matches!(s.put(blk(1, 100), &d), Err(FsError::AlreadyExists(_))));
        let d2 = BlockData::generate_real(100, 2);
        assert!(matches!(s.put(blk(2, 100), &d2), Err(FsError::OutOfCapacity(_))));
        // A smaller block still fits.
        let d3 = BlockData::generate_real(50, 3);
        s.put(blk(3, 50), &d3).unwrap();
    }

    #[test]
    fn rejects_length_mismatch() {
        let s = MemoryStore::new(1000);
        let d = BlockData::generate_real(100, 1);
        assert!(matches!(s.put(blk(1, 99), &d), Err(FsError::InvalidArgument(_))));
    }

    #[test]
    fn corruption_detected_on_get_and_verify() {
        let s = MemoryStore::new(1000);
        s.put(blk(1, 100), &BlockData::generate_real(100, 1)).unwrap();
        s.verify(BlockId(1)).unwrap();
        s.corrupt(BlockId(1)).unwrap();
        assert!(matches!(s.get(BlockId(1)), Err(FsError::ChecksumMismatch { .. })));
        assert!(matches!(s.verify(BlockId(1)), Err(FsError::ChecksumMismatch { .. })));
    }

    #[test]
    fn synthetic_blocks_supported() {
        let s = MemoryStore::new(u64::MAX);
        let d = BlockData::Synthetic { len: 1 << 30, seed: 9 };
        s.put(blk(1, 1 << 30), &d).unwrap();
        assert_eq!(s.get(BlockId(1)).unwrap(), d);
        assert_eq!(s.used(), 1 << 30);
        s.corrupt(BlockId(1)).unwrap();
        assert!(s.get(BlockId(1)).is_err());
    }

    #[test]
    fn block_report_lists_all() {
        let s = MemoryStore::new(1000);
        for i in 0..5u64 {
            s.put(blk(i, 10), &BlockData::generate_real(10, i)).unwrap();
        }
        let mut ids: Vec<u64> = s.blocks().iter().map(|b| b.block.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
