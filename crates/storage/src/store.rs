//! The [`BlockStore`] trait: the contract of one storage medium.

use octopus_common::{Block, BlockData, BlockId, Result};

/// Summary of one stored block, as carried by block reports (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredBlockInfo {
    /// The block's identity (id, generation stamp, length).
    pub block: Block,
    /// CRC-32 recorded at write time.
    pub checksum: u32,
}

/// One storage medium's block interface.
///
/// Implementations must be thread-safe: a worker serves concurrent reads and
/// writes against the same medium. Capacity accounting is the store's
/// responsibility — `put` must fail with [`octopus_common::FsError::OutOfCapacity`]
/// rather than over-commit.
pub trait BlockStore: Send + Sync {
    /// Stores a block. Fails if the block already exists or capacity would
    /// be exceeded.
    fn put(&self, block: Block, data: &BlockData) -> Result<()>;

    /// Retrieves a block's payload, verifying its checksum.
    fn get(&self, id: BlockId) -> Result<BlockData>;

    /// Deletes a block, releasing its capacity. Deleting an absent block is
    /// an error (the caller tracks what lives where).
    fn delete(&self, id: BlockId) -> Result<()>;

    /// Whether the block is present.
    fn contains(&self, id: BlockId) -> bool;

    /// All stored blocks (for block reports). Order is unspecified.
    fn blocks(&self) -> Vec<StoredBlockInfo>;

    /// Bytes currently stored.
    fn used(&self) -> u64;

    /// Configured capacity in bytes.
    fn capacity(&self) -> u64;

    /// Bytes still available.
    fn remaining(&self) -> u64 {
        self.capacity().saturating_sub(self.used())
    }

    /// Re-reads a block and verifies its checksum, returning the stored
    /// checksum on success. Used by the periodic scrubber.
    fn verify(&self, id: BlockId) -> Result<u32>;

    /// Reflection hook for tests and tools that need the concrete store
    /// type (e.g. to inject corruption into a [`crate::MemoryStore`]).
    fn as_any(&self) -> &dyn std::any::Any;
}
