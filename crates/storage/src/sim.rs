//! Metadata-only block store for simulation-scale experiments.
//!
//! Stores block identity and checksum but no payload, so a simulated 40 GB
//! benchmark costs a few kilobytes of heap. `get` reconstructs a
//! [`BlockData::Synthetic`] descriptor. The capacity accounting is real,
//! which is what the placement policies (and Figure 4's remaining-capacity
//! curves) observe.

use parking_lot::RwLock;
use std::collections::HashMap;

use octopus_common::{Block, BlockData, BlockId, FsError, Result};

use crate::store::{BlockStore, StoredBlockInfo};

struct Entry {
    info: StoredBlockInfo,
    seed: u64,
}

struct Inner {
    entries: HashMap<BlockId, Entry>,
    used: u64,
}

/// A block store that keeps only metadata.
pub struct SimStore {
    capacity: u64,
    inner: RwLock<Inner>,
}

impl SimStore {
    /// Creates a store with the given logical capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, inner: RwLock::new(Inner { entries: HashMap::new(), used: 0 }) }
    }
}

impl BlockStore for SimStore {
    fn put(&self, block: Block, data: &BlockData) -> Result<()> {
        if data.len() != block.len {
            return Err(FsError::InvalidArgument(format!(
                "block {} declares {} bytes but payload has {}",
                block.id,
                block.len,
                data.len()
            )));
        }
        let seed = match data {
            BlockData::Synthetic { seed, .. } => *seed,
            // Real payloads are accepted but only their identity survives.
            BlockData::Real(_) => 0,
        };
        let mut g = self.inner.write();
        if g.entries.contains_key(&block.id) {
            return Err(FsError::AlreadyExists(block.id.to_string()));
        }
        if g.used + block.len > self.capacity {
            return Err(FsError::OutOfCapacity(format!(
                "sim store: {} + {} > {}",
                g.used, block.len, self.capacity
            )));
        }
        let checksum = BlockData::Synthetic { len: block.len, seed }.checksum();
        g.used += block.len;
        g.entries.insert(block.id, Entry { info: StoredBlockInfo { block, checksum }, seed });
        Ok(())
    }

    fn get(&self, id: BlockId) -> Result<BlockData> {
        let g = self.inner.read();
        let e = g.entries.get(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        Ok(BlockData::Synthetic { len: e.info.block.len, seed: e.seed })
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        let mut g = self.inner.write();
        let e = g.entries.remove(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        g.used -= e.info.block.len;
        Ok(())
    }

    fn contains(&self, id: BlockId) -> bool {
        self.inner.read().entries.contains_key(&id)
    }

    fn blocks(&self) -> Vec<StoredBlockInfo> {
        self.inner.read().entries.values().map(|e| e.info).collect()
    }

    fn used(&self) -> u64 {
        self.inner.read().used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn verify(&self, id: BlockId) -> Result<u32> {
        let g = self.inner.read();
        let e = g.entries.get(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        Ok(e.info.checksum)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::GenStamp;

    fn blk(id: u64, len: u64) -> Block {
        Block { id: BlockId(id), gen: GenStamp(0), len }
    }

    #[test]
    fn stores_descriptor_not_bytes() {
        let s = SimStore::new(100 << 30);
        let d = BlockData::Synthetic { len: 10 << 30, seed: 42 };
        s.put(blk(1, 10 << 30), &d).unwrap();
        assert_eq!(s.get(BlockId(1)).unwrap(), d);
        assert_eq!(s.used(), 10 << 30);
        assert_eq!(s.remaining(), 90 << 30);
    }

    #[test]
    fn capacity_and_duplicates_enforced() {
        let s = SimStore::new(100);
        s.put(blk(1, 60), &BlockData::Synthetic { len: 60, seed: 0 }).unwrap();
        assert!(matches!(
            s.put(blk(1, 10), &BlockData::Synthetic { len: 10, seed: 0 }),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            s.put(blk(2, 60), &BlockData::Synthetic { len: 60, seed: 0 }),
            Err(FsError::OutOfCapacity(_))
        ));
        s.delete(BlockId(1)).unwrap();
        s.put(blk(2, 60), &BlockData::Synthetic { len: 60, seed: 0 }).unwrap();
    }

    #[test]
    fn accepts_real_payload_identity() {
        let s = SimStore::new(1000);
        let d = BlockData::generate_real(100, 5);
        s.put(blk(3, 100), &d).unwrap();
        // Round-trips as a synthetic descriptor of the same length.
        assert_eq!(s.get(BlockId(3)).unwrap().len(), 100);
        s.verify(BlockId(3)).unwrap();
    }

    #[test]
    fn block_report() {
        let s = SimStore::new(1000);
        for i in 0..3u64 {
            s.put(blk(i, 10), &BlockData::Synthetic { len: 10, seed: i }).unwrap();
        }
        assert_eq!(s.blocks().len(), 3);
    }
}
