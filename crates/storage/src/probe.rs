//! Startup throughput probe.
//!
//! When a worker launches, it performs a short I/O-intensive test against
//! each storage medium, measuring sustained write and read throughput
//! (paper §3.2). The measured values feed the throughput-maximization
//! objective and the retrieval policy's rate estimates.

use std::sync::Arc;
use std::time::Instant;

use octopus_common::{Block, BlockData, BlockId, GenStamp, Result};

use crate::store::BlockStore;

/// Result of a throughput probe, in bytes/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Sustained write throughput.
    pub write_bps: f64,
    /// Sustained read throughput.
    pub read_bps: f64,
}

/// Probes a store by writing, reading back, and deleting `chunks` blocks of
/// `chunk_bytes` each, using block ids starting at `id_base` (callers pick a
/// range that cannot collide with real blocks, e.g. near `u64::MAX`).
pub fn probe(
    store: &Arc<dyn BlockStore>,
    chunk_bytes: usize,
    chunks: u32,
    id_base: u64,
) -> Result<ProbeResult> {
    let total = (chunk_bytes as u64) * (chunks as u64);
    let payloads: Vec<BlockData> =
        (0..chunks).map(|i| BlockData::generate_real(chunk_bytes, 0xBEEF + i as u64)).collect();

    let wt = Instant::now();
    for (i, p) in payloads.iter().enumerate() {
        let block =
            Block { id: BlockId(id_base + i as u64), gen: GenStamp(0), len: chunk_bytes as u64 };
        store.put(block, p)?;
    }
    let write_secs = wt.elapsed().as_secs_f64().max(1e-9);

    let rt = Instant::now();
    for i in 0..chunks {
        let _ = store.get(BlockId(id_base + i as u64))?;
    }
    let read_secs = rt.elapsed().as_secs_f64().max(1e-9);

    for i in 0..chunks {
        store.delete(BlockId(id_base + i as u64))?;
    }

    Ok(ProbeResult { write_bps: total as f64 / write_secs, read_bps: total as f64 / read_secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;

    #[test]
    fn probe_leaves_store_clean_and_measures_positive_rates() {
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::new(64 << 20));
        let r = probe(&store, 64 << 10, 8, u64::MAX - 100).unwrap();
        assert!(r.write_bps > 0.0);
        assert!(r.read_bps > 0.0);
        assert_eq!(store.used(), 0);
        assert!(store.blocks().is_empty());
    }

    #[test]
    fn probe_respects_capacity() {
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::new(10));
        assert!(probe(&store, 1 << 10, 4, 0).is_err());
    }
}
